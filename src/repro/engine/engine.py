"""The unified engine: configured, cached, batch and streaming derivations.

:class:`Engine` is the stable request/response surface of the library (the
role Olivetti's Round Eliminator server plays for its implementation).  It
owns

* an :class:`~repro.engine.config.EngineConfig` (derivation limits, simplify
  mode, pipeline policy, cache policy),
* a :class:`~repro.engine.cache.SpeedupCache` (content-addressed memoisation
  keyed on canonical problem hashes, optionally persisted as JSON),
* batch fan-out over a pluggable execution backend -- serial loop, thread
  pool, or process pool (:mod:`repro.engine.executor`) -- behind
  :meth:`Engine.speedup_many`, :meth:`Engine.run_many`, and
  :meth:`Engine.execute_batch`,
* a lazy, streaming round-elimination pipeline
  (:meth:`Engine.iter_elimination`) that the classic
  ``run_round_elimination`` is a thin wrapper over.

The module-level functions ``repro.speedup`` / ``repro.iterate_speedup`` /
``repro.run_round_elimination`` remain as compatibility shims delegating to
the process-wide default engine (:func:`get_default_engine`).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Generator, Sequence
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.core.sequence import EliminationResult, Relaxer, SequenceStep
    from repro.search.classify import ClassifyResult
    from repro.search.driver import SearchResult
    from repro.search.upper import ChaseResult

from repro.core.isomorphism import find_isomorphism
from repro.core.problem import Problem
from repro.core.relaxation import certify_relaxation
from repro.core.speedup import (
    EngineLimitError,
    HalfStepResult,
    SpeedupResult,
    compute_speedup,
)
from repro.core.speedup import half_step as _half_step
from repro.core.zero_round import (
    ZeroRoundMemo,
    ZeroRoundWitness,
    is_zero_round_solvable,
    zero_round_no_input,
    zero_round_with_orientations,
)
from repro.engine import faultinject
from repro.engine.cache import SpeedupCache
from repro.engine.config import EngineConfig
from repro.engine.executor import (
    BatchStats,
    Task,
    run_batch,
    run_task_batch,
    speedup_batch,
)
from repro.engine.resilience import TaskFailure

# Callback invoked with each freshly produced SequenceStep (progress hook for
# long pipelines: logging, UI updates, early metrics).
ProgressCallback = Callable[["SequenceStep"], None]


class Engine:
    """A configured round-elimination engine with a shared derivation cache.

    Engines are cheap facades: :meth:`with_config` derives a re-configured
    engine *sharing* the same cache (unless the override changes the cache
    policy itself), which is how the compatibility shims apply per-call flags
    without losing warm state.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        cache: SpeedupCache | None = None,
        zero_round_memo: ZeroRoundMemo | None = None,
    ):
        self._config = config if config is not None else EngineConfig()
        if cache is not None:
            self._cache = cache
        else:
            self._cache = SpeedupCache(
                maxsize=self._config.cache_size,
                directory=self._config.cache_dir,
                max_weight=self._config.cache_max_weight,
            )
        if zero_round_memo is not None:
            self._zero_round_memo: ZeroRoundMemo | None = zero_round_memo
        elif self._config.zero_round_memo:
            memo_dir = (
                None
                if self._config.cache_dir is None
                else Path(self._config.cache_dir) / "zero_round"
            )
            self._zero_round_memo = ZeroRoundMemo(
                maxsize=self._config.zero_round_memo_size, directory=memo_dir
            )
        else:
            self._zero_round_memo = None
        self._batch_lock = threading.Lock()
        self._last_batch_stats: BatchStats | None = None
        # Parse once; a config carrying a plan activates scripted fault
        # injection process-wide (cache writes included) -- chaos tests
        # build one engine and everything downstream misbehaves on script.
        self._fault_plan = faultinject.parse_fault_plan(self._config.fault_plan)
        if self._fault_plan is not None:
            faultinject.activate(self._fault_plan)

    # -- configuration -------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def cache(self) -> SpeedupCache:
        return self._cache

    @property
    def zero_round_memo(self) -> ZeroRoundMemo | None:
        return self._zero_round_memo

    @property
    def fault_plan(self) -> "faultinject.FaultPlan | None":
        """The parsed fault-injection plan, or None when running fault-free."""
        return self._fault_plan

    def with_config(self, **overrides: Any) -> "Engine":
        """A re-configured engine; shares this engine's caches when possible.

        Each cache is rebuilt only when a knob *governing that cache*
        actually changes value: the speedup cache on ``cache_size`` /
        ``cache_dir`` / ``cache_max_weight``, the 0-round memo on
        ``zero_round_memo`` / ``zero_round_memo_size`` / ``cache_dir`` (the
        memo's directory nests under the cache directory).  Everything else
        -- including restating a knob at its current value -- shares the
        live caches, so e.g. overriding a cache knob no longer silently
        drops the warm 0-round memo.  Old caches keep serving engines
        already holding them.
        """
        config = self._config.replace(**overrides)
        changed = {
            name
            for name in overrides
            if getattr(config, name) != getattr(self._config, name)
        }
        share_cache = not (changed & {"cache_size", "cache_dir", "cache_max_weight"})
        share_memo = not (
            changed & {"zero_round_memo", "zero_round_memo_size", "cache_dir"}
        )
        return Engine(
            config,
            cache=self._cache if share_cache else None,
            zero_round_memo=self._zero_round_memo if share_memo else None,
        )

    def cache_stats(self) -> dict[str, int]:
        return self._cache.stats()

    def zero_round_stats(self) -> dict[str, int]:
        """Hit/miss/entry counts of the 0-round memo (all zero when disabled)."""
        if self._zero_round_memo is None:
            return {"hits": 0, "misses": 0, "entries": 0, "store_failures": 0}
        return self._zero_round_memo.stats()

    def clear_cache(self) -> None:
        self._cache.clear()
        if self._zero_round_memo is not None:
            self._zero_round_memo.clear()

    # -- single derivations --------------------------------------------------

    def half_step(self, problem: Problem, simplify: bool | None = None) -> HalfStepResult:
        """Derive ``Pi_{1/2}`` under this engine's size limits (uncached)."""
        cfg = self._config
        return _half_step(
            problem,
            simplify=cfg.simplify if simplify is None else simplify,
            max_derived_labels=cfg.max_derived_labels,
            max_candidate_configs=cfg.max_candidate_configs,
            kernel=cfg.kernel,
        )

    def speedup(self, problem: Problem, simplify: bool | None = None) -> SpeedupResult:
        """One full speedup step ``Pi -> Pi_1``, memoised content-addressed.

        A cache hit fires for any problem identical to a previously derived
        one up to label renaming; the stored result is translated into the
        request's label space (see :mod:`repro.engine.cache`).
        """
        cfg = self._config
        use_simplify = cfg.simplify if simplify is None else simplify
        if not cfg.cache:
            return compute_speedup(
                problem,
                simplify=use_simplify,
                max_derived_labels=cfg.max_derived_labels,
                max_candidate_configs=cfg.max_candidate_configs,
                max_live_configs=cfg.max_live_configs,
                kernel=cfg.kernel,
            )
        # Single-flight: a miss makes this call the canonical key's leader
        # (concurrent requests for the same key -- renamed twins included --
        # block in acquire() and get the stored result), so exactly one
        # derivation runs per key no matter how many threads race it.
        cached, form, key = self._cache.acquire(problem, use_simplify)
        if cached is not None:
            return cached
        try:
            result = compute_speedup(
                problem,
                simplify=use_simplify,
                max_derived_labels=cfg.max_derived_labels,
                max_candidate_configs=cfg.max_candidate_configs,
                max_live_configs=cfg.max_live_configs,
                kernel=cfg.kernel,
            )
        except BaseException:
            # Leadership must not outlive a failed derivation: wake the
            # waiters so one of them takes over (and fails the same way for
            # deterministic limit errors).
            self._cache.abandon(key)
            raise
        # store() returns the frozen shared copy (read-only meaning maps),
        # so hits and the original call observe the same object.  The
        # out-of-band per-fold timing counters describe the derivation that
        # produced the entry, so they ride along: the cold caller (and any
        # later hit on the same stored object) can read them.
        stored = self._cache.store(key, form, result)
        if result.kernel_stats is not None:
            stored.__dict__["_kernel_stats"] = result.kernel_stats
        return stored

    def iterate_speedup(
        self, problem: Problem, steps: int, simplify: bool | None = None
    ) -> list[SpeedupResult]:
        """Apply the speedup ``steps`` times, returning every intermediate result."""
        results: list[SpeedupResult] = []
        current = problem
        for _ in range(steps):
            result = self.speedup(current, simplify=simplify)
            results.append(result)
            current = result.full
        return results

    # -- batch fan-out -------------------------------------------------------

    def _resolve_workers(self, job_count: int) -> int:
        if self._config.max_workers is not None:
            return min(self._config.max_workers, max(job_count, 1))
        import os

        return min(8, os.cpu_count() or 2, max(job_count, 1))

    def speedup_many(
        self, problems: Sequence[Problem], simplify: bool | None = None
    ) -> list["SpeedupResult | TaskFailure"]:
        """Derive ``Pi_1`` for each problem over the configured backend.

        Results are returned in input order; each is a correct derivation of
        its input, and every backend ends the batch with the same warm cache
        state.  Concurrent misses on one canonical key -- label-renamed
        twins included -- are single-flighted: exactly one derivation runs
        per key and the other requests receive the stored result translated
        into their own label space, matching what a sequential loop caches.
        (The derived alphabet's arbitrary short names may still depend on
        *which* twin led the flight; canonical hashes and meanings never
        do.)  Batch metering lands in :meth:`last_batch_stats`.

        Execution is fault-tolerant (:mod:`repro.engine.resilience`): a
        slot holds a :class:`~repro.engine.resilience.TaskFailure` when
        that problem's derivation kept failing transiently (worker crashes,
        deadline kills) past the configured
        :class:`~repro.engine.resilience.RetryPolicy` -- the rest of the
        batch still returns results.  Deterministic
        :class:`EngineLimitError`\\ s propagate as always.
        """
        cfg = self._config
        use_simplify = cfg.simplify if simplify is None else simplify
        results, stats = speedup_batch(self, list(problems), use_simplify)
        with self._batch_lock:
            self._last_batch_stats = stats
        return results

    def run_many(
        self,
        problems: Sequence[Problem],
        max_steps: int,
        relaxer: Relaxer | None = None,
    ) -> list["EliminationResult | TaskFailure"]:
        """Run the elimination pipeline for each problem over the backend.

        Returns :class:`~repro.core.sequence.EliminationResult` objects in
        input order, equal to the sequential runs.  Under the ``process``
        backend ``relaxer`` must be picklable (a module-level function).
        A slot holds a :class:`~repro.engine.resilience.TaskFailure` when
        that pipeline was quarantined by the retry policy.  Batch metering
        lands in :meth:`last_batch_stats`.
        """
        results, stats = run_batch(self, list(problems), max_steps, relaxer)
        with self._batch_lock:
            self._last_batch_stats = stats
        return results

    def execute_batch(self, tasks: Sequence[Task]) -> list[object]:
        """Run executor tasks on the configured backend, in task order.

        The generic entry point backing the search driver's beam expansion;
        see :mod:`repro.engine.executor` for the task shapes.  Batch
        metering lands in :meth:`last_batch_stats`.
        """
        values, stats = run_task_batch(self, list(tasks))
        with self._batch_lock:
            self._last_batch_stats = stats
        return values

    def last_batch_stats(self) -> BatchStats | None:
        """Metering of the most recent batch call, or None before the first.

        Covers :meth:`speedup_many`, :meth:`run_many`, and
        :meth:`execute_batch` (the search driver's expansions); see
        :class:`~repro.engine.executor.BatchStats` for the fields and the
        measured serial fraction.
        """
        with self._batch_lock:
            return self._last_batch_stats

    # -- pipelines -----------------------------------------------------------

    def zero_round_solvable(self, problem: Problem, *, key: str | None = None) -> bool:
        """0-round solvability in the engine's input setting, memoised.

        Verdicts are shared through the engine's :class:`ZeroRoundMemo`
        (canonical-hash keyed, so renamed twins hit) across calls, search
        branches, and worker threads; ``key`` lets callers that already
        computed the memo key skip the canonical hashing.  Falls back to the
        uncached decision procedures when the memo is disabled.
        """
        orientations = self._config.orientations
        if self._zero_round_memo is None:
            return is_zero_round_solvable(problem, orientations=orientations)
        return self._zero_round_memo.check(problem, orientations, key=key)

    def _witness_for(self, problem: Problem) -> ZeroRoundWitness | None:
        # Deliberately unmemoised: a pipeline sees each problem once, so the
        # canonical hashing the memo keys on would cost more than the witness
        # search it skips.  The memo earns its keep in the search driver,
        # where branches revisit renamed twins constantly.
        if self._config.orientations:
            return zero_round_with_orientations(problem)
        return zero_round_no_input(problem)

    def iter_elimination(
        self,
        problem: Problem,
        max_steps: int,
        relaxer: Relaxer | None = None,
        progress: ProgressCallback | None = None,
    ) -> Generator[SequenceStep, None, bool]:
        """Stream the iterated speedup pipeline as it is computed.

        Yields :class:`~repro.core.sequence.SequenceStep` objects lazily --
        step 0 is the initial problem -- honoring the engine's pipeline
        policy (``stop_at_zero_round``, ``detect_fixed_points``,
        ``orientations``, ``simplify``).  ``progress`` is invoked with each
        step before it is yielded.  The generator's return value (available
        as ``StopIteration.value``) is True iff the description-size guards
        stopped the pipeline (Section 2.1's explosion).

        Fixed-point detection caches the compressed form of every step, so
        each new problem is compressed once -- not once per earlier step per
        iteration.
        """
        from repro.core.sequence import SequenceStep

        cfg = self._config

        def emit(step: SequenceStep) -> SequenceStep:
            if progress is not None:
                progress(step)
            return step

        steps: list[SequenceStep] = []
        compressed: list[Problem] = []
        current = problem
        first = SequenceStep(
            index=0,
            problem=current,
            relaxation=None,
            zero_round_witness=self._witness_for(current),
            isomorphic_to_step=None,
        )
        steps.append(first)
        compressed.append(current.compressed())
        yield emit(first)

        for index in range(1, max_steps + 1):
            if cfg.stop_at_zero_round and steps[-1].zero_round_solvable:
                return False
            if steps[-1].isomorphic_to_step is not None:
                return False
            try:
                derived = self.speedup(current).full
            except EngineLimitError:
                return True
            certificate = None
            if relaxer is not None:
                relaxed = relaxer(derived, index)
                if relaxed is not None:
                    target, mapping = relaxed
                    certificate = certify_relaxation(derived, target, mapping)
                    derived = target
            derived_compressed = derived.compressed()
            iso_index = None
            if cfg.detect_fixed_points:
                for earlier, earlier_compressed in zip(steps, compressed):
                    if find_isomorphism(derived_compressed, earlier_compressed):
                        iso_index = earlier.index
                        break
            step = SequenceStep(
                index=index,
                problem=derived,
                relaxation=certificate,
                zero_round_witness=self._witness_for(derived),
                isomorphic_to_step=iso_index,
            )
            steps.append(step)
            compressed.append(derived_compressed)
            yield emit(step)
            current = derived
        return False

    # -- automated lower-bound search ----------------------------------------

    def search_lower_bound(
        self,
        problem: Problem,
        max_steps: int = 8,
        *,
        beam_width: int | None = None,
        max_moves: int | None = None,
        budget: int | None = None,
        checkpoint: bool = False,
        resume: bool = False,
    ) -> SearchResult:
        """Search for a lower-bound certificate (see :mod:`repro.search`).

        Beam search over speedup steps interleaved with certified relaxation
        moves, run under this engine's size guards, memo cache and worker
        pool.  ``beam_width`` / ``max_moves`` / ``budget`` default to the
        ``search_*`` knobs of :class:`~repro.engine.config.EngineConfig`.
        Returns a :class:`~repro.search.driver.SearchResult` whose
        certificate (when found) re-verifies independently of this engine.

        With ``checkpoint=True`` (requires a ``cache_dir``) the driver
        serializes its full state to ``cache_dir/checkpoints/`` after every
        completed depth; ``resume=True`` restarts a killed run from that
        state and continues to the identical certificate an uninterrupted
        run produces.
        """
        from repro.search.driver import search_lower_bound

        return search_lower_bound(
            problem,
            engine=self,
            max_steps=max_steps,
            beam_width=beam_width,
            max_moves=max_moves,
            budget=budget,
            checkpoint=checkpoint,
            resume=resume,
        )

    def search_upper_bound(
        self,
        problem: Problem,
        max_steps: int = 8,
        *,
        beam_width: int | None = None,
        max_hardenings: int | None = None,
        budget: int | None = None,
        checkpoint: bool = False,
        resume: bool = False,
    ) -> ChaseResult:
        """Chase an upper-bound certificate (see :mod:`repro.search.upper`).

        Beam search driving speedup steps (interleaved with certified
        hardening restrictions) toward a 0-round-solvable problem, run
        under this engine's size guards, memo cache and worker pool.
        ``beam_width`` / ``max_hardenings`` / ``budget`` default to the
        ``chase_*`` knobs of :class:`~repro.engine.config.EngineConfig`.
        Returns a :class:`~repro.search.upper.ChaseResult` whose certificate
        (when found) re-verifies independently of this engine.  The
        checkpoint/resume contract matches :meth:`search_lower_bound`.
        """
        from repro.search.upper import search_upper_bound

        return search_upper_bound(
            problem,
            engine=self,
            max_steps=max_steps,
            beam_width=beam_width,
            max_hardenings=max_hardenings,
            budget=budget,
            checkpoint=checkpoint,
            resume=resume,
        )

    def classify(
        self,
        problem: Problem,
        max_steps: int = 8,
        *,
        beam_width: int | None = None,
        max_moves: int | None = None,
        budget: int | None = None,
        chase_beam_width: int | None = None,
        chase_max_hardenings: int | None = None,
        chase_budget: int | None = None,
        checkpoint: bool = False,
        resume: bool = False,
    ) -> ClassifyResult:
        """Bracket ``problem``'s round complexity from both sides.

        Runs :meth:`search_lower_bound` then :meth:`search_upper_bound` on
        this engine (sharing its caches) and folds both certificates into a
        :class:`~repro.search.classify.ComplexityBracket`; see
        :mod:`repro.search.classify` for the bound semantics and the
        ``tight`` / ``gap`` / ``open`` verdicts.
        """
        from repro.search.classify import classify

        return classify(
            problem,
            engine=self,
            max_steps=max_steps,
            beam_width=beam_width,
            max_moves=max_moves,
            budget=budget,
            chase_beam_width=chase_beam_width,
            chase_max_hardenings=chase_max_hardenings,
            chase_budget=chase_budget,
            checkpoint=checkpoint,
            resume=resume,
        )

    def run(
        self,
        problem: Problem,
        max_steps: int,
        relaxer: Relaxer | None = None,
        progress: ProgressCallback | None = None,
    ) -> EliminationResult:
        """Run the pipeline to completion, collecting an EliminationResult."""
        from repro.core.sequence import EliminationResult

        generator = self.iter_elimination(
            problem, max_steps, relaxer=relaxer, progress=progress
        )
        steps: list[SequenceStep] = []
        stopped_by_limit = False
        while True:
            try:
                steps.append(next(generator))
            except StopIteration as stop:
                stopped_by_limit = bool(stop.value)
                break
        return EliminationResult(steps=steps, stopped_by_limit=stopped_by_limit)


# -- the process-wide default engine ----------------------------------------

_default_lock = threading.Lock()
_default_engine: Engine | None = None


def get_default_engine() -> Engine:
    """The engine behind the compatibility shims (created on first use)."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            _default_engine = Engine()
        return _default_engine


def set_default_engine(engine: Engine | None) -> None:
    """Replace the process-wide default engine (None resets to a fresh one)."""
    global _default_engine
    with _default_lock:
        _default_engine = engine
