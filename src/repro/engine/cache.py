"""The engine's content-addressed speedup cache.

Entries are keyed on the canonical problem hash
(:func:`repro.core.canonical.canonical_form`), so a hit fires for any problem
that is the stored one up to label renaming.  On a hit the stored
:class:`~repro.core.speedup.SpeedupResult` is *translated* into the
requesting problem's label space: the derivation is equivariant under
renaming, so mapping the stored meanings through the label bijection induced
by the two canonical orderings yields exactly the result the derivation
would have produced (up to the arbitrary short names of the derived
alphabet, which are kept as stored).

The cache is thread-safe (the batch APIs share it across a worker pool) and
optionally persistent: with a ``directory``, every stored entry is written as
one JSON file named by the key's digest, and misses consult the directory
before recomputing, so warm starts survive process boundaries.  Opening a
persistent cache sweeps temp files abandoned by crashed writers
(:func:`repro.utils.jsonio.sweep_stale_tmp_files`); temp names never collide
with entry names, so leaked temps are never loadable as entries.

Concurrent misses on one canonical key are *single-flighted*: the first
caller of :meth:`SpeedupCache.acquire` becomes the key's leader and
derives; every other caller blocks on the key's in-flight latch and, once
the leader stores, retries the lookup and receives the stored result
translated into its own label space.  Without this, two threads missing on
renamed twins both ran the full derivation -- the thundering herd that made
``speedup_many`` nondeterministic about *which* twin's derivation got
cached.

Keys are computed by the bitmask kernel's canonical-form pass
(:mod:`repro.core.canonical` over :mod:`repro.core.alphabet`), which is
byte-compatible with the pre-kernel string path -- existing on-disk caches
stay valid.  Hit translation renames set-valued labels with the kernel's
collision-safe :func:`~repro.core.alphabet.set_label_name`, the same naming
a fresh derivation would use, so translated and freshly derived results
agree even for problems whose user labels contain braces or commas.

For the Amdahl accounting the process-pool backend needs
(:mod:`repro.engine.executor`), the cache meters its serial components:
time spent canonicalising requests, waiting for the cache lock, and waiting
on in-flight latches (:meth:`SpeedupCache.concurrency_stats`).  Worker
processes run with :meth:`start_recording` enabled so every store is
captured as a ``(key, form, result)`` delta the parent merges back with
:meth:`merge`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from pathlib import Path
from types import MappingProxyType

from repro.core.alphabet import set_label_name
from repro.core.canonical import CanonicalForm, canonical_form
from repro.core.problem import Problem
from repro.core.speedup import SpeedupResult
from repro.engine.resilience import LATCH_PROBE_S
from repro.utils.jsonio import atomic_write_json, load_json, sweep_stale_tmp_files


class _InFlight:
    """One key's in-flight derivation: the latch and the thread deriving it.

    Tracking the leader *thread object* (never its reusable ident) lets
    waiters detect a leader that died without calling ``store``/``abandon``
    -- a killed worker thread, an ``os._exit`` mid-derivation -- and take
    over instead of blocking forever on an Event nobody will ever set.
    """

    __slots__ = ("event", "leader")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.leader = threading.current_thread()


class CacheEntry:
    """One stored derivation plus the canonical form it was keyed under."""

    __slots__ = ("form", "result", "weight")

    def __init__(self, form: CanonicalForm, result: SpeedupResult):
        self.form = form
        self.result = result
        # Approximate footprint: the description sizes of the three problems
        # dominate the meaning dicts; used by the weight-aware LRU bound.
        self.weight = (
            result.original.description_size
            + result.half.description_size
            + result.full.description_size
        )


def _freeze(result: SpeedupResult) -> SpeedupResult:
    """Make the meaning dicts read-only before a result is shared.

    Cache hits hand the same object to every caller; read-only views turn a
    would-be silent cache poisoning (a caller mutating ``full_meaning``)
    into an immediate TypeError at the mutation site.  Equality with plain
    dicts is unaffected.
    """
    return dataclasses.replace(
        result,
        half_meaning=MappingProxyType(dict(result.half_meaning)),
        full_meaning=MappingProxyType(dict(result.full_meaning)),
    )


def _translate(
    entry: CacheEntry,
    problem: Problem,
    form: CanonicalForm,
    simplify: bool,
) -> SpeedupResult:
    """Re-express a stored result in the requesting problem's label space."""
    stored = entry.result
    # ordering[i] of the stored form corresponds to ordering[i] of the
    # request's form; compose to map stored original labels to request labels.
    to_request = {
        stored_label: form.ordering[i]
        for i, stored_label in enumerate(entry.form.ordering)
    }
    if stored.original == problem:
        return stored

    suffix = "" if simplify else "|raw"
    half_rename = {
        name: set_label_name(to_request[member] for member in members)
        for name, members in stored.half_meaning.items()
    }
    half = stored.half.renamed(half_rename, name=f"{problem.name}|half{suffix}")
    half_meaning = {
        half_rename[name]: frozenset(to_request[member] for member in members)
        for name, members in stored.half_meaning.items()
    }
    full_meaning = {
        label: frozenset(half_rename[h] for h in members)
        for label, members in stored.full_meaning.items()
    }
    full = dataclasses.replace(stored.full, name=f"{problem.name}+1")
    return SpeedupResult(
        original=problem,
        half=half,
        half_meaning=half_meaning,
        full=full,
        full_meaning=full_meaning,
        simplified=stored.simplified,
    )


class SpeedupCache:
    """Thread-safe LRU memo cache for speedup derivations.

    ``lookup`` returns ``(result, form, key)`` -- the translated result on a
    hit, else ``None`` plus the canonical form and key to pass back to
    ``store`` after computing (so canonicalisation runs once per call).
    ``acquire`` is the single-flight variant the engine's hot path uses: a
    ``None`` result makes the caller the key's leader, obliged to call
    ``store`` (on success) or ``abandon`` (on failure) so waiters wake.
    """

    def __init__(
        self,
        maxsize: int = 512,
        directory: str | Path | None = None,
        max_weight: int | None = 5_000_000,
    ):
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()
        self._maxsize = maxsize
        self._max_weight = max_weight
        self._total_weight = 0
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            # Reclaim temp files a crashed writer left behind; live writes
            # (young files of running pids) are never touched, and temp
            # names can never be loaded as entries.
            sweep_stale_tmp_files(self._directory)
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.store_failures = 0
        self.latch_recoveries = 0
        self._inflight: dict[str, _InFlight] = {}
        self._recorded: list[tuple[str, CanonicalForm, SpeedupResult]] | None = None
        self._canonical_s = 0.0
        self._lock_wait_s = 0.0
        self._coalesce_wait_s = 0.0

    def _insert(self, key: str, entry: CacheEntry) -> None:
        """Insert under the lock, evicting LRU entries beyond the bounds.

        Bounds are entry count *and* aggregate description weight (derived
        problems can be enormous, so counting entries alone could pin
        gigabytes).  The newest entry always survives, even when it alone
        exceeds the weight bound -- evicting it immediately would make the
        most expensive derivations the only uncached ones.
        """
        with self._lock:
            old = self._memory.pop(key, None)
            if old is not None:
                self._total_weight -= old.weight
            self._memory[key] = entry
            self._total_weight += entry.weight
            if self._recorded is not None:
                self._recorded.append((key, entry.form, entry.result))
            while len(self._memory) > 1 and (
                len(self._memory) > self._maxsize
                or (
                    self._max_weight is not None
                    and self._total_weight > self._max_weight
                )
            ):
                _, evicted = self._memory.popitem(last=False)
                self._total_weight -= evicted.weight

    # -- keying --------------------------------------------------------------

    @staticmethod
    def _key(form: CanonicalForm, simplify: bool) -> str:
        return ("simplified:" if simplify else "raw:") + form.key

    def _path_for(self, key: str) -> Path:
        assert self._directory is not None
        # Keys embed sha256 digests already; flatten the prefix into the name.
        return self._directory / (key.replace(":", "_") + ".json")

    # -- public API ----------------------------------------------------------

    def _canonicalize(self, problem: Problem, simplify: bool) -> tuple[CanonicalForm, str]:
        """Compute the canonical form and key, metering the serial cost."""
        start = time.perf_counter()
        form = canonical_form(problem)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._canonical_s += elapsed
        return form, self._key(form, simplify)

    def probe(
        self, problem: Problem, simplify: bool
    ) -> tuple[SpeedupResult | None, CanonicalForm, str]:
        """Like ``lookup`` but without miss accounting (hits still count).

        Batch dispatchers resolve misses through a worker pool themselves
        and account them via :meth:`note_dispatched_miss` /
        :meth:`note_coalesced`, so a probe that misses must not inflate the
        miss counter a sequential run would report.
        """
        form, key = self._canonicalize(problem, simplify)
        entry = self._entry_for(key)
        if entry is None:
            return None, form, key
        with self._lock:
            self.hits += 1
        return _translate(entry, problem, form, simplify), form, key

    def _entry_for(self, key: str) -> CacheEntry | None:
        """The live entry for ``key`` from memory or disk, without stats."""
        start = time.perf_counter()
        with self._lock:
            self._lock_wait_s += time.perf_counter() - start
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
        if entry is None and self._directory is not None:
            entry = self._load(key)
        return entry

    def lookup(
        self, problem: Problem, simplify: bool
    ) -> tuple[SpeedupResult | None, CanonicalForm, str]:
        result, form, key = self.probe(problem, simplify)
        if result is None:
            with self._lock:
                self.misses += 1
        return result, form, key

    def acquire(
        self, problem: Problem, simplify: bool
    ) -> tuple[SpeedupResult | None, CanonicalForm, str]:
        """Single-flight lookup: miss means *this caller derives*.

        On a hit, behaves like :meth:`lookup`.  On a miss with no derivation
        of the key in flight, registers the caller as the key's leader
        (counted as the one true miss) and returns ``None`` -- the caller
        MUST then call :meth:`store` on success or :meth:`abandon` on
        failure.  If another caller is already deriving the key, blocks on
        the in-flight latch (counted as ``coalesced``), then retries: the
        usual outcome is a translated hit on the leader's stored result; if
        the leader abandoned, the waiter inherits leadership.

        Waiting is crash-safe: a waiter re-probes the latch every
        ``LATCH_PROBE_S`` seconds and, when the leader thread has died
        without ever releasing (a killed worker thread -- the one way
        ``store``/``abandon`` can be skipped), clears the dead flight
        (counted as a ``latch_recovery``) and retries -- inheriting
        leadership instead of blocking forever.
        """
        form, key = self._canonicalize(problem, simplify)
        while True:
            entry = self._entry_for(key)
            wait_on: _InFlight | None = None
            start = time.perf_counter()
            with self._lock:
                self._lock_wait_s += time.perf_counter() - start
                if entry is not None:
                    self.hits += 1
                else:
                    flight = self._inflight.get(key)
                    if flight is None:
                        self._inflight[key] = _InFlight()
                        self.misses += 1
                        return None, form, key
                    wait_on = flight
                    self.coalesced += 1
            if wait_on is None:
                assert entry is not None
                return _translate(entry, problem, form, simplify), form, key
            start = time.perf_counter()
            while not wait_on.event.wait(timeout=LATCH_PROBE_S):
                if wait_on.leader.is_alive():
                    continue  # leader still deriving, keep waiting
                with self._lock:
                    # First detector clears the dead flight; every other
                    # waiter falls through and retries against whatever
                    # state (new leader, stored entry) exists by then.
                    if self._inflight.get(key) is wait_on:
                        del self._inflight[key]
                        self.latch_recoveries += 1
                break
            waited = time.perf_counter() - start
            with self._lock:
                self._coalesce_wait_s += waited

    def _release(self, key: str) -> None:
        """Wake every waiter on ``key``'s in-flight latch, if any."""
        with self._lock:
            flight = self._inflight.pop(key, None)
        if flight is not None:
            flight.event.set()

    def abandon(self, key: str) -> None:
        """Give up leadership of ``key`` (the derivation failed).

        Waiters wake, find neither an entry nor a flight, and take over as
        leaders -- for the deterministic failures the engine raises
        (:class:`~repro.core.limits.EngineLimitError`), each then fails the
        same way, which is exactly the sequential behaviour.
        """
        self._release(key)

    def store(
        self, key: str, form: CanonicalForm, result: SpeedupResult
    ) -> SpeedupResult:
        """Store a freshly computed result; returns the frozen shared copy.

        Also releases the key's in-flight latch when the caller held one
        (``store`` doubles as the leader's success path), so waiters
        coalesced on :meth:`acquire` wake into a hit.
        """
        frozen = _freeze(result)
        self._insert(key, CacheEntry(form, frozen))
        self._release(key)
        if self._directory is not None:
            self._dump(key, result)
        return frozen

    def merge(self, key: str, form: CanonicalForm, result: SpeedupResult) -> SpeedupResult:
        """Adopt an entry computed elsewhere (a worker process).

        No hit/miss accounting and no disk write: when a cache directory is
        configured the worker shares it and has already persisted the entry.
        Returns the frozen shared copy now serving hits.  Releases any
        in-flight latch on the key, so thread-side waiters coalesce onto
        merged process results too.
        """
        frozen = _freeze(result)
        self._insert(key, CacheEntry(form, frozen))
        self._release(key)
        return frozen

    def note_dispatched_miss(self) -> None:
        """Count a miss resolved by dispatching to an external worker."""
        with self._lock:
            self.misses += 1

    def note_coalesced(self) -> None:
        """Count a request coalesced onto another's pending derivation."""
        with self._lock:
            self.coalesced += 1

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self._total_weight = 0
            self.hits = 0
            self.misses = 0
            self.coalesced = 0
            self.store_failures = 0
            self.latch_recoveries = 0
            self._canonical_s = 0.0
            self._lock_wait_s = 0.0
            self._coalesce_wait_s = 0.0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "store_failures": self.store_failures,
            }

    def concurrency_stats(self) -> dict[str, float]:
        """Single-flight counters and the metered serial components.

        ``coalesced`` counts requests that waited on another caller's
        in-flight derivation; the ``*_s`` figures are cumulative seconds of
        canonicalisation, cache-lock waiting, and latch waiting -- the
        serial fraction the Amdahl accounting in
        :mod:`repro.engine.executor` reports per batch.
        """
        with self._lock:
            return {
                "coalesced": float(self.coalesced),
                "latch_recoveries": float(self.latch_recoveries),
                "canonical_s": self._canonical_s,
                "lock_wait_s": self._lock_wait_s,
                "coalesce_wait_s": self._coalesce_wait_s,
            }

    # -- worker-delta recording ----------------------------------------------

    def start_recording(self) -> None:
        """Capture every subsequent insert as a mergeable delta.

        Worker processes enable this so the parent can merge their stores
        back (:meth:`drain_recorded` / :meth:`merge`); disk loads recorded
        along the way merge harmlessly (idempotent inserts).
        """
        with self._lock:
            self._recorded = []

    def drain_recorded(self) -> tuple[tuple[str, CanonicalForm, SpeedupResult], ...]:
        """Return and reset the recorded inserts (empty when not recording)."""
        with self._lock:
            if self._recorded is None:
                return ()
            drained = tuple(self._recorded)
            self._recorded = []
            return drained

    # -- persistence ---------------------------------------------------------

    def _load(self, key: str) -> CacheEntry | None:
        """Load one on-disk entry; any corruption means a plain miss.

        Truncated writes, emptied files, non-JSON bytes, and
        structurally-wrong payloads (wrong JSON types anywhere in the nested
        result) must all behave exactly like an absent entry -- the caller
        recomputes and ``store`` overwrites the bad file -- so the exception
        net below is deliberately wide: ``ValueError`` covers JSON/Unicode
        decoding and ``ProblemError``, ``TypeError``/``KeyError``/
        ``AttributeError`` cover payloads whose shape lies (e.g. a list
        where the meaning dict should be).
        """
        payload = load_json(self._path_for(key))
        if not isinstance(payload, dict):
            return None
        try:
            result = SpeedupResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        form = canonical_form(result.original)
        # A structurally valid result for the *wrong* problem (a mangled or
        # collided file) would crash the renaming translation downstream;
        # re-keying the stored original catches it here and degrades to a miss.
        if self._key(form, key.startswith("simplified:")) != key:
            return None
        entry = CacheEntry(form, _freeze(result))
        self._insert(key, entry)
        return entry

    def _dump(self, key: str, result: SpeedupResult) -> None:
        # A read-only or full cache directory must never fail a derivation:
        # atomic_write_json is best-effort by contract, leaves any prior
        # entry file intact on failure, and reports the failure so it can
        # be counted instead of silently vanishing.
        ok = atomic_write_json(
            self._path_for(key),
            {"version": 1, "key": key, "result": result.to_dict()},
        )
        if not ok:
            with self._lock:
                self.store_failures += 1
