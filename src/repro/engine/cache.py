"""The engine's content-addressed speedup cache.

Entries are keyed on the canonical problem hash
(:func:`repro.core.canonical.canonical_form`), so a hit fires for any problem
that is the stored one up to label renaming.  On a hit the stored
:class:`~repro.core.speedup.SpeedupResult` is *translated* into the
requesting problem's label space: the derivation is equivariant under
renaming, so mapping the stored meanings through the label bijection induced
by the two canonical orderings yields exactly the result the derivation
would have produced (up to the arbitrary short names of the derived
alphabet, which are kept as stored).

The cache is thread-safe (the batch APIs share it across a worker pool) and
optionally persistent: with a ``directory``, every stored entry is written as
one JSON file named by the key's digest, and misses consult the directory
before recomputing, so warm starts survive process boundaries.

Keys are computed by the bitmask kernel's canonical-form pass
(:mod:`repro.core.canonical` over :mod:`repro.core.alphabet`), which is
byte-compatible with the pre-kernel string path -- existing on-disk caches
stay valid.  Hit translation renames set-valued labels with the kernel's
collision-safe :func:`~repro.core.alphabet.set_label_name`, the same naming
a fresh derivation would use, so translated and freshly derived results
agree even for problems whose user labels contain braces or commas.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from pathlib import Path
from types import MappingProxyType

from repro.core.alphabet import set_label_name
from repro.core.canonical import CanonicalForm, canonical_form
from repro.core.problem import Problem
from repro.core.speedup import SpeedupResult
from repro.utils.jsonio import atomic_write_json, load_json


class CacheEntry:
    """One stored derivation plus the canonical form it was keyed under."""

    __slots__ = ("form", "result", "weight")

    def __init__(self, form: CanonicalForm, result: SpeedupResult):
        self.form = form
        self.result = result
        # Approximate footprint: the description sizes of the three problems
        # dominate the meaning dicts; used by the weight-aware LRU bound.
        self.weight = (
            result.original.description_size
            + result.half.description_size
            + result.full.description_size
        )


def _freeze(result: SpeedupResult) -> SpeedupResult:
    """Make the meaning dicts read-only before a result is shared.

    Cache hits hand the same object to every caller; read-only views turn a
    would-be silent cache poisoning (a caller mutating ``full_meaning``)
    into an immediate TypeError at the mutation site.  Equality with plain
    dicts is unaffected.
    """
    return dataclasses.replace(
        result,
        half_meaning=MappingProxyType(dict(result.half_meaning)),
        full_meaning=MappingProxyType(dict(result.full_meaning)),
    )


def _translate(
    entry: CacheEntry,
    problem: Problem,
    form: CanonicalForm,
    simplify: bool,
) -> SpeedupResult:
    """Re-express a stored result in the requesting problem's label space."""
    stored = entry.result
    # ordering[i] of the stored form corresponds to ordering[i] of the
    # request's form; compose to map stored original labels to request labels.
    to_request = {
        stored_label: form.ordering[i]
        for i, stored_label in enumerate(entry.form.ordering)
    }
    if stored.original == problem:
        return stored

    suffix = "" if simplify else "|raw"
    half_rename = {
        name: set_label_name(to_request[member] for member in members)
        for name, members in stored.half_meaning.items()
    }
    half = stored.half.renamed(half_rename, name=f"{problem.name}|half{suffix}")
    half_meaning = {
        half_rename[name]: frozenset(to_request[member] for member in members)
        for name, members in stored.half_meaning.items()
    }
    full_meaning = {
        label: frozenset(half_rename[h] for h in members)
        for label, members in stored.full_meaning.items()
    }
    full = dataclasses.replace(stored.full, name=f"{problem.name}+1")
    return SpeedupResult(
        original=problem,
        half=half,
        half_meaning=half_meaning,
        full=full,
        full_meaning=full_meaning,
        simplified=stored.simplified,
    )


class SpeedupCache:
    """Thread-safe LRU memo cache for speedup derivations.

    ``lookup`` returns ``(result, form, key)`` -- the translated result on a
    hit, else ``None`` plus the canonical form and key to pass back to
    ``store`` after computing (so canonicalisation runs once per call).
    """

    def __init__(
        self,
        maxsize: int = 512,
        directory: str | Path | None = None,
        max_weight: int | None = 5_000_000,
    ):
        self._lock = threading.RLock()
        self._memory: OrderedDict[str, CacheEntry] = OrderedDict()
        self._maxsize = maxsize
        self._max_weight = max_weight
        self._total_weight = 0
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _insert(self, key: str, entry: CacheEntry) -> None:
        """Insert under the lock, evicting LRU entries beyond the bounds.

        Bounds are entry count *and* aggregate description weight (derived
        problems can be enormous, so counting entries alone could pin
        gigabytes).  The newest entry always survives, even when it alone
        exceeds the weight bound -- evicting it immediately would make the
        most expensive derivations the only uncached ones.
        """
        with self._lock:
            old = self._memory.pop(key, None)
            if old is not None:
                self._total_weight -= old.weight
            self._memory[key] = entry
            self._total_weight += entry.weight
            while len(self._memory) > 1 and (
                len(self._memory) > self._maxsize
                or (
                    self._max_weight is not None
                    and self._total_weight > self._max_weight
                )
            ):
                _, evicted = self._memory.popitem(last=False)
                self._total_weight -= evicted.weight

    # -- keying --------------------------------------------------------------

    @staticmethod
    def _key(form: CanonicalForm, simplify: bool) -> str:
        return ("simplified:" if simplify else "raw:") + form.key

    def _path_for(self, key: str) -> Path:
        assert self._directory is not None
        # Keys embed sha256 digests already; flatten the prefix into the name.
        return self._directory / (key.replace(":", "_") + ".json")

    # -- public API ----------------------------------------------------------

    def lookup(
        self, problem: Problem, simplify: bool
    ) -> tuple[SpeedupResult | None, CanonicalForm, str]:
        form = canonical_form(problem)
        key = self._key(form, simplify)
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
        if entry is None and self._directory is not None:
            entry = self._load(key)
        if entry is None:
            with self._lock:
                self.misses += 1
            return None, form, key
        with self._lock:
            self.hits += 1
        return _translate(entry, problem, form, simplify), form, key

    def store(
        self, key: str, form: CanonicalForm, result: SpeedupResult
    ) -> SpeedupResult:
        """Store a freshly computed result; returns the frozen shared copy."""
        frozen = _freeze(result)
        self._insert(key, CacheEntry(form, frozen))
        if self._directory is not None:
            self._dump(key, result)
        return frozen

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self._total_weight = 0
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
            }

    # -- persistence ---------------------------------------------------------

    def _load(self, key: str) -> CacheEntry | None:
        """Load one on-disk entry; any corruption means a plain miss.

        Truncated writes, emptied files, non-JSON bytes, and
        structurally-wrong payloads (wrong JSON types anywhere in the nested
        result) must all behave exactly like an absent entry -- the caller
        recomputes and ``store`` overwrites the bad file -- so the exception
        net below is deliberately wide: ``ValueError`` covers JSON/Unicode
        decoding and ``ProblemError``, ``TypeError``/``KeyError``/
        ``AttributeError`` cover payloads whose shape lies (e.g. a list
        where the meaning dict should be).
        """
        payload = load_json(self._path_for(key))
        if not isinstance(payload, dict):
            return None
        try:
            result = SpeedupResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            return None
        form = canonical_form(result.original)
        # A structurally valid result for the *wrong* problem (a mangled or
        # collided file) would crash the renaming translation downstream;
        # re-keying the stored original catches it here and degrades to a miss.
        if self._key(form, key.startswith("simplified:")) != key:
            return None
        entry = CacheEntry(form, _freeze(result))
        self._insert(key, entry)
        return entry

    def _dump(self, key: str, result: SpeedupResult) -> None:
        # A read-only or full cache directory must never fail a derivation:
        # atomic_write_json is best-effort by contract.
        atomic_write_json(
            self._path_for(key),
            {"version": 1, "key": key, "result": result.to_dict()},
        )
