"""Engine configuration: every knob the derivations and pipelines honor.

Historically the derivation limits were module constants in
:mod:`repro.core.speedup` and the pipeline flags were per-call keyword
arguments of ``run_round_elimination``.  :class:`EngineConfig` gathers all of
them in one immutable object so an :class:`repro.engine.Engine` can be
configured once and reused across calls, batches, and worker threads.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.speedup import MAX_CANDIDATE_CONFIGS, MAX_DERIVED_LABELS, MAX_LIVE_CONFIGS
from repro.core.vectorkernel import KERNEL_NAMES
from repro.engine.faultinject import parse_fault_plan
from repro.engine.resilience import RetryPolicy

#: Execution backends the batch APIs accept (see :mod:`repro.engine.executor`).
EXECUTOR_NAMES: tuple[str, ...] = ("serial", "thread", "process")


def _default_executor() -> str:
    """The default backend: ``REPRO_EXECUTOR`` when set, else ``thread``.

    The environment hook exists so whole test matrices (CI runs every
    backend over the engine suites) and deployments can switch backends
    without threading a flag through every construction site.
    """
    return os.environ.get("REPRO_EXECUTOR", "thread")


def _default_fault_plan() -> str | None:
    """The default fault plan: ``REPRO_FAULT_PLAN`` when set, else none.

    The environment hook lets the chaos-test matrix (and one-off debugging
    of the recovery paths) inject scripted faults into any entry point
    without threading a flag through construction sites.  An unset or empty
    variable means fault-free execution.
    """
    return os.environ.get("REPRO_FAULT_PLAN") or None


def _default_kernel() -> str:
    """The default kernel tier: ``REPRO_KERNEL`` when set, else ``auto``.

    Mirrors ``REPRO_EXECUTOR``: CI matrices flip the whole suite between
    the scalar big-int and the vectorized numpy tiers without touching any
    construction site.
    """
    return os.environ.get("REPRO_KERNEL", "auto")


@dataclass(frozen=True)
class EngineConfig:
    """Immutable configuration for :class:`repro.engine.Engine`.

    Attributes
    ----------
    simplify:
        Use the maximality-simplified derivation (Theorem 2) by default.
    orientations:
        Test 0-round solvability in the orientation-input setting (the
        Theorem 2 setting) rather than with no input at all.
    detect_fixed_points:
        Test each pipeline step for isomorphism against all previous steps.
    stop_at_zero_round:
        Stop a pipeline as soon as a 0-round solvable problem appears.
    max_derived_labels / max_candidate_configs / max_live_configs:
        Size guards of the derivation (previously the hard-coded
        ``MAX_DERIVED_LABELS`` / ``MAX_CANDIDATE_CONFIGS`` constants),
        stated in bitmask-kernel terms: ``max_derived_labels`` bounds the
        interned derived-label masks materialised (filters of the half-label
        poset in the simplified path, raw subset masks in the Theorem 1
        path).  ``max_candidate_configs`` bounds the enumeration *work* of
        the streaming simplified full step (one unit per prefix extension
        and per completion) and remains the a-priori grid bound
        ``C(candidates + delta - 1, delta)`` on the half step and the
        unsimplified Theorem 1 path.  ``max_live_configs`` caps the
        undominated candidate frontier the streaming full step holds in
        memory -- the retired grid refusal's replacement: huge-Pi_1
        derivations are attempted, and refused only when the *surviving*
        frontier (hence the derived node constraint) would actually exceed
        the cap.  Within the guards the kernel's pruned prefix search does
        orders of magnitude less work than the old exhaustive walk
        (superweak-3 / weak-3 coloring at delta=2 went from days of wall
        clock to seconds under the same defaults).
    kernel:
        Evaluation tier of the derivation hot paths
        (:mod:`repro.core.vectorkernel`): ``"mask"`` forces the scalar
        big-int kernel, ``"vector"`` requests the bit-packed numpy tier
        (falling back to ``"mask"`` when numpy is unavailable), and
        ``"auto"`` -- the default -- picks ``"vector"`` whenever numpy is
        usable.  Results are identical on every tier; the default honors
        the ``REPRO_KERNEL`` environment variable.
    cache:
        Memoise speedup derivations in a content-addressed cache keyed on the
        canonical problem hash (:mod:`repro.core.canonical`), so repeated --
        or label-renamed -- derivations are O(1) hits.
    cache_size:
        Maximum number of in-memory cache entries (LRU eviction).
    cache_max_weight:
        Aggregate bound on the cached problems' description sizes (derived
        problems can be enormous, so an entry count alone could pin
        gigabytes); ``None`` disables the weight bound.  The newest entry
        always survives eviction.
    cache_dir:
        Optional directory for a persistent JSON cache shared across
        processes; entries are loaded lazily on miss and written on store.
        Also the parent of the 0-round memo's ``zero_round/`` subdirectory
        when the memo is enabled.
    zero_round_memo:
        Memoise 0-round solvability verdicts in a cross-branch table keyed
        on canonical problem hashes (:class:`repro.core.zero_round.
        ZeroRoundMemo`) -- the search re-decides 0-round solvability for
        every candidate of every branch, and renamed twins are ubiquitous.
    zero_round_memo_size:
        Maximum number of memoised verdicts (LRU eviction; entries are
        single booleans, so no weight bound is needed).
    max_workers:
        Worker-pool width for the batch APIs (``speedup_many`` /
        ``run_many``) and the lower-bound search.  ``None`` picks
        ``min(8, cpu_count)``.
    executor:
        Execution backend the batch APIs fan out over
        (:mod:`repro.engine.executor`): ``"serial"`` (in-order, no pool),
        ``"thread"`` (shared-memory thread pool -- cheap, but the
        derivations are CPU-bound pure Python, so the GIL serialises them),
        or ``"process"`` (a ``ProcessPoolExecutor`` that ships problem
        pickles to workers and merges the returned results into this
        engine's content-addressed cache and 0-round memo -- true
        parallelism for CPU-heavy batches).  The default honors the
        ``REPRO_EXECUTOR`` environment variable, else ``"thread"``.
    retry_policy:
        Fault-tolerance policy of the batch APIs
        (:class:`repro.engine.resilience.RetryPolicy`): bounded retries
        with deterministic backoff for transient faults (worker crashes,
        deadline kills, OS-level I/O errors), per-task deadlines under the
        process backend, and the quarantine/degradation thresholds.
        Deterministic :class:`~repro.core.limits.EngineLimitError`\\ s are
        never retried.
    fault_plan:
        Scripted fault injection for chaos testing
        (:mod:`repro.engine.faultinject`): a plan string like
        ``"crash@2,hang@5,enospc@0"`` makes worker crashes, task hangs, and
        cache-write failures fire at fixed, reproducible coordinates.
        ``None`` (the default, unless ``REPRO_FAULT_PLAN`` is set) runs
        fault-free; building an engine with a plan activates it
        process-wide, including in pool workers.
    search_beam_width:
        How many chain states the lower-bound search
        (:meth:`repro.engine.Engine.search_lower_bound`) keeps per depth.
    search_max_moves:
        Cap on relaxation moves generated per derived problem during the
        search.
    search_budget:
        Cap on speedup derivations attempted by one search run.
    chase_beam_width:
        How many chain states the upper-bound chase
        (:meth:`repro.engine.Engine.search_upper_bound`) keeps per depth.
    chase_max_hardenings:
        Cap on hardening restriction moves generated per chain state during
        the chase.
    chase_budget:
        Cap on speedup derivations attempted by one chase run (each
        expansion costs ``1 + #hardenings`` derivations).
    """

    simplify: bool = True
    orientations: bool = True
    detect_fixed_points: bool = True
    stop_at_zero_round: bool = True
    max_derived_labels: int = MAX_DERIVED_LABELS
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS
    max_live_configs: int = MAX_LIVE_CONFIGS
    kernel: str = field(default_factory=_default_kernel)
    cache: bool = True
    cache_size: int = 512
    cache_max_weight: int | None = 5_000_000
    cache_dir: str | Path | None = None
    zero_round_memo: bool = True
    zero_round_memo_size: int = 4096
    max_workers: int | None = None
    executor: str = field(default_factory=_default_executor)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: str | None = field(default_factory=_default_fault_plan)
    search_beam_width: int = 4
    search_max_moves: int = 24
    search_budget: int = 256
    chase_beam_width: int = 4
    chase_max_hardenings: int = 8
    chase_budget: int = 128

    def __post_init__(self) -> None:
        if self.max_derived_labels < 1:
            raise ValueError("max_derived_labels must be positive")
        if self.max_candidate_configs < 1:
            raise ValueError("max_candidate_configs must be positive")
        if self.max_live_configs < 1:
            raise ValueError("max_live_configs must be positive")
        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"kernel must be one of {KERNEL_NAMES}, got {self.kernel!r}"
            )
        if self.cache_size < 1:
            raise ValueError("cache_size must be positive")
        if self.cache_max_weight is not None and self.cache_max_weight < 1:
            raise ValueError("cache_max_weight must be positive when given")
        if self.zero_round_memo_size < 1:
            raise ValueError("zero_round_memo_size must be positive")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_NAMES}, got {self.executor!r}"
            )
        if not isinstance(self.retry_policy, RetryPolicy):
            raise ValueError("retry_policy must be a RetryPolicy")
        # A typo'd plan must fail construction loudly, not run a silently
        # fault-free "chaos" test; parsing validates the whole grammar.
        parse_fault_plan(self.fault_plan)
        if self.search_beam_width < 1:
            raise ValueError("search_beam_width must be positive")
        if self.search_max_moves < 0:
            raise ValueError("search_max_moves must be non-negative")
        if self.search_budget < 1:
            raise ValueError("search_budget must be positive")
        if self.chase_beam_width < 1:
            raise ValueError("chase_beam_width must be positive")
        if self.chase_max_hardenings < 0:
            raise ValueError("chase_max_hardenings must be non-negative")
        if self.chase_budget < 1:
            raise ValueError("chase_budget must be positive")

    def replace(self, **overrides: object) -> "EngineConfig":
        """A copy of this configuration with the given fields changed."""
        return dataclasses.replace(self, **overrides)
