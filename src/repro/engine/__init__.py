"""The unified engine API: configurable, cached, batch/streaming derivations.

Quickstart::

    from repro.engine import Engine, EngineConfig

    engine = Engine(EngineConfig(executor="process", max_workers=4))
    result = engine.speedup(problem)          # content-addressed memo cache
    results = engine.speedup_many(problems)   # batch fan-out, chosen backend
    print(engine.last_batch_stats())          # measured serial fraction
    for step in engine.iter_elimination(problem, max_steps=10):
        print(step.index, step.problem.name)  # streaming pipeline

The classic module-level functions (``repro.speedup``,
``repro.iterate_speedup``, ``repro.run_round_elimination``) are thin shims
over the process-wide default engine, so old call sites transparently share
the cache.
"""

from repro.core.canonical import CanonicalForm, canonical_form, canonical_hash
from repro.core.speedup import EngineLimitError
from repro.engine.cache import SpeedupCache
from repro.core.vectorkernel import KERNEL_NAMES
from repro.engine.config import EXECUTOR_NAMES, EngineConfig
from repro.engine.engine import (
    Engine,
    get_default_engine,
    set_default_engine,
)
from repro.engine.executor import (
    BatchStats,
    ExpandTask,
    RunTask,
    SpeedupTask,
)
from repro.engine.faultinject import FaultPlan, InjectedFault, parse_fault_plan
from repro.engine.resilience import RetryPolicy, TaskFailure

__all__ = [
    "BatchStats",
    "CanonicalForm",
    "EXECUTOR_NAMES",
    "Engine",
    "EngineConfig",
    "EngineLimitError",
    "ExpandTask",
    "FaultPlan",
    "InjectedFault",
    "KERNEL_NAMES",
    "RetryPolicy",
    "RunTask",
    "SpeedupCache",
    "SpeedupTask",
    "TaskFailure",
    "canonical_form",
    "canonical_hash",
    "get_default_engine",
    "parse_fault_plan",
    "set_default_engine",
]
