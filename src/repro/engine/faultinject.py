"""Deterministic fault injection for chaos-testing the execution tier.

Fault-tolerance code is exactly the code that never runs in a healthy test
suite.  This module makes the failure paths *scriptable*: a fault plan names
which faults fire where, and every trigger is a pure function of
deterministic coordinates -- the batch index and attempt number of a task,
the ordinal of a cache write, the depth of a search checkpoint -- so a chaos
test reproduces the same crash in the same place on every run, instead of
relying on timing races.

A plan is a comma/semicolon-separated list of entries::

    kind@n        fire once at coordinate n
    kind@n*c      fire at coordinates n, for the first c attempts/ordinals

with kinds

``crash@i[*c]``
    The worker process executing batch-task ``i`` calls ``os._exit`` on its
    first ``c`` attempts (default 1).  Only fires inside process-pool
    workers -- crashing the parent would be self-defeating.
``hang@i[*c]``
    The worker executing task ``i`` sleeps far past any sane deadline on its
    first ``c`` attempts.  Only fires inside process-pool workers (a hung
    thread cannot be reclaimed).
``flake@i[*c]``
    Executing task ``i`` raises :class:`InjectedFault` (an ``OSError``, so
    classified transient/retryable) on its first ``c`` attempts.  Fires on
    every backend.
``enospc@k[*c]``
    The ``k``-th .. ``(k+c-1)``-th JSON cache write in this process fails
    like a full disk (the entry file is left untouched).
``corrupt@k[*c]``
    The ``k``-th .. ``(k+c-1)``-th JSON cache write writes syntactically
    invalid JSON instead of the payload (a torn write that completed its
    rename).
``interrupt@i``
    The parent batch loop raises ``KeyboardInterrupt`` just before
    dispatching task ``i`` (consumed once).
``searchabort@d``
    The search driver raises ``KeyboardInterrupt`` immediately after writing
    the checkpoint for depth ``d`` (consumed once) -- the deterministic
    stand-in for kill -9 in checkpoint/resume tests.

Plans activate through ``EngineConfig(fault_plan=...)`` or the
``REPRO_FAULT_PLAN`` environment variable; building an :class:`~repro.
engine.engine.Engine` whose config carries a plan activates it for the
whole process (including cache writes), and process-pool workers inherit the
plan through the pickled worker config, so scripted worker crashes fire
inside real workers.  Task-level triggers (crash/hang/flake) are stateless
-- the parent passes each dispatch's ``(index, attempt)`` -- so a worker
that dies takes no trigger bookkeeping with it.  Only the write ordinal and
the one-shot interrupt entries hold (locked) state, in the process that
fires them.

Production code never imports the trigger helpers; the executor and driver
call them only when a plan is active, and ``parse_fault_plan(None)`` is
``None``, so the fault-free hot path costs one ``is None`` check.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.utils import jsonio

#: Exit status of an injected worker crash (distinguishable from a real
#: signal or interpreter error in pool post-mortems).
CRASH_EXIT_CODE = 77

#: Upper bound on an injected hang.  Deadlines are expected to reclaim the
#: worker long before this; the bound only caps the damage when a test
#: forgets to configure one.
HANG_S = 60.0

#: Fault kinds keyed by task ``(index, attempt)``.
TASK_KINDS = ("crash", "hang", "flake")
#: Fault kinds keyed by the process-wide cache-write ordinal.
WRITE_KINDS = ("enospc", "corrupt")
#: One-shot fault kinds consumed in the process that fires them.
ONESHOT_KINDS = ("interrupt", "searchabort")

FAULT_KINDS = TASK_KINDS + WRITE_KINDS + ONESHOT_KINDS


class InjectedFault(OSError):
    """A scripted transient fault (``OSError``, hence retryable)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed plan entry: ``kind`` fires at ``index`` for ``count`` hits."""

    kind: str
    index: int
    count: int = 1


class FaultPlan:
    """A parsed fault plan: stateless task triggers, stateful ordinals.

    Task faults are decided purely from ``(index, attempt)``; write faults
    consume a per-process write ordinal; ``interrupt``/``searchabort`` are
    consumed once.  The instance is picklable (the mutable counters reset in
    the unpickled copy, which is exactly right: a worker process starts its
    own write ordinal at zero).
    """

    def __init__(self, specs: tuple[FaultSpec, ...], source: str):
        self.specs = specs
        self.source = source
        self._lock = threading.Lock()
        self._write_ordinal = 0
        self._consumed: set[tuple[str, int]] = set()

    def __reduce__(self) -> tuple[object, ...]:
        return (FaultPlan, (self.specs, self.source))

    def __repr__(self) -> str:
        return f"FaultPlan({self.source!r})"

    # -- stateless task triggers ----------------------------------------------

    def task_fault(self, index: int, attempt: int) -> str | None:
        """The fault kind scripted for this task dispatch, if any.

        Pure in ``(index, attempt)``: a re-dispatch with the same attempt
        number re-fires (the parent owns attempt accounting, so worker death
        cannot lose a scripted fault), and a later attempt runs clean.
        """
        for spec in self.specs:
            if spec.kind in TASK_KINDS and spec.index == index and attempt < spec.count:
                return spec.kind
        return None

    # -- stateful triggers ----------------------------------------------------

    def write_fault(self, path: Path) -> str | None:
        """Consume one write ordinal; the scripted write fault, if any."""
        del path  # faults are keyed by ordinal, not destination
        with self._lock:
            ordinal = self._write_ordinal
            self._write_ordinal += 1
        for spec in self.specs:
            if (
                spec.kind in WRITE_KINDS
                and spec.index <= ordinal < spec.index + spec.count
            ):
                return spec.kind
        return None

    def _consume_oneshot(self, kind: str, index: int) -> bool:
        for spec in self.specs:
            if spec.kind == kind and spec.index == index:
                with self._lock:
                    if (kind, index) in self._consumed:
                        return False
                    self._consumed.add((kind, index))
                return True
        return False

    def should_interrupt(self, index: int) -> bool:
        """True exactly once when dispatch of task ``index`` is scripted to die."""
        return self._consume_oneshot("interrupt", index)

    def should_abort_search(self, depth: int) -> bool:
        """True exactly once after the checkpoint for ``depth`` is written."""
        return self._consume_oneshot("searchabort", depth)


def parse_fault_plan(spec: str | None) -> FaultPlan | None:
    """Parse the plan grammar; ``None``/blank means no plan.

    Raises ``ValueError`` on malformed entries, so a typo in
    ``REPRO_FAULT_PLAN`` fails engine construction loudly instead of
    silently running a fault-free "chaos" test.
    """
    if spec is None or not spec.strip():
        return None
    entries: list[FaultSpec] = []
    for raw in spec.replace(";", ",").split(","):
        entry = raw.strip()
        if not entry:
            continue
        kind, _, coords = entry.partition("@")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {entry!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        if not coords:
            raise ValueError(f"fault entry {entry!r} is missing '@index'")
        index_text, _, count_text = coords.partition("*")
        try:
            index = int(index_text)
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(f"malformed fault coordinates in {entry!r}") from None
        if index < 0 or count < 1:
            raise ValueError(
                f"fault entry {entry!r} needs index >= 0 and count >= 1"
            )
        entries.append(FaultSpec(kind=kind, index=index, count=count))
    if not entries:
        return None
    return FaultPlan(tuple(entries), spec)


# -- process-wide activation --------------------------------------------------

_active_lock = threading.Lock()
_ACTIVE: FaultPlan | None = None
_IN_WORKER = False


def activate(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active plan (None deactivates).

    Engine construction calls this when its config carries a plan; the
    write-fault hook reaches the JSON layer through
    :func:`repro.utils.jsonio.set_write_fault_hook`, keeping ``utils``
    ignorant of the engine package.
    """
    global _ACTIVE
    with _active_lock:
        _ACTIVE = plan
        jsonio.set_write_fault_hook(None if plan is None else plan.write_fault)


def active_plan() -> FaultPlan | None:
    with _active_lock:
        return _ACTIVE


def mark_worker() -> None:
    """Flag this process as a pool worker (enables crash/hang injection)."""
    global _IN_WORKER
    _IN_WORKER = True


def fire_task_fault(plan: FaultPlan, index: int, attempt: int) -> None:
    """Execute the scripted fault for this task dispatch, if any.

    ``crash`` and ``hang`` fire only inside process-pool workers (see
    :func:`mark_worker`): in the parent they would kill or wedge the very
    process whose recovery is under test.  ``flake`` raises everywhere.
    """
    kind = plan.task_fault(index, attempt)
    if kind is None:
        return
    if kind == "flake":
        raise InjectedFault(
            f"injected transient fault (task {index}, attempt {attempt})"
        )
    if not _IN_WORKER:
        return
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    # hang: sleep in slices so an interrupted worker still dies promptly.
    deadline = time.monotonic() + HANG_S
    while time.monotonic() < deadline:
        time.sleep(0.05)
