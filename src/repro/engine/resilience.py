"""Fault-tolerant execution: retry policy, fault taxonomy, pool recovery.

PR 8's process backend had the classic distributed-systems failure mode: one
worker crash raised ``BrokenProcessPool`` in the parent and the *whole batch*
died, finished results included.  This module is the recovery layer under
:mod:`repro.engine.executor`:

* :class:`RetryPolicy` -- bounded retries with deterministic exponential
  backoff, per-task deadlines, and the quarantine/degradation thresholds.
  Backoff is deliberately jitter-free: two runs of the same batch with the
  same fault plan must behave identically, and the herd-thundering that
  jitter exists to break cannot happen inside one parent process.
* A fault taxonomy (:func:`is_transient_fault`): infrastructure faults --
  worker crashes (``BrokenProcessPool``), deadline kills, ``OSError``/pipe
  failures -- are *transient* and retried; deterministic engine outcomes,
  above all :class:`~repro.core.limits.EngineLimitError`, are not (retrying
  a size-guard trip re-trips it, so the error propagates exactly as the
  serial backend would).
* :class:`TaskFailure` -- the structured per-task failure that replaces
  batch death: a task whose transient faults exhaust the policy is
  *quarantined* and reported in its result slot while its batch neighbours
  complete normally.
* :func:`run_resilient_process_batch` -- the recovery loop proper: on a
  pool crash it identifies the tasks that had actually started (workers
  announce task starts over a context-shared queue, written synchronously
  so even an ``os._exit`` cannot lose the announcement), rebuilds the pool,
  and re-dispatches only the incomplete tasks.  When exactly one started
  task is unfinished the blame is definitive and its attempt budget is
  charged; when several are (the crasher and its innocent co-residents,
  indistinguishable from the parent), all become *suspects* and are re-run
  in solo isolation rounds, so the next crash convicts exactly one task and
  an innocent neighbour of a poison task is never quarantined for it.
  Hung tasks are detected against the policy deadline (always definitive)
  and the stuck workers reclaimed by terminating the pool; when pool
  rebuilding itself keeps failing the batch *degrades*
  ``process -> thread -> serial`` rather than dying.

This module is the one sanctioned home for broad infrastructure-exception
handling (see the ``broad-fault-swallow`` relint rule): everywhere else a
``BrokenProcessPool`` or a swallowed ``OSError`` is a bug, here it is the
input.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.limits import EngineLimitError
from repro.engine.faultinject import FaultPlan

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor

#: How long a waiter on a single-flight cache latch sleeps before probing
#: whether the latch's leader thread is still alive (see
#: :meth:`repro.engine.cache.SpeedupCache.acquire`).  Long enough that legal
#: multi-minute derivations never pay more than bookkeeping, short enough
#: that a dead leader's waiters recover promptly in tests and services.
LATCH_PROBE_S = 5.0

#: Poll granularity of the deadline monitor (seconds).  Deadlines are
#: wall-clock bounds on runaway tasks, not precise timers; 50ms keeps the
#: monitor cheap while detecting hangs promptly.
_DEADLINE_POLL_S = 0.05

#: The fault kinds a :class:`TaskFailure` can carry.
FAILURE_KINDS = ("crash", "deadline", "error")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with deterministic backoff and deadlines.

    Attributes
    ----------
    max_retries:
        Transient faults tolerated per task before it is quarantined.  The
        task runs at most ``max_retries + 1`` times.
    backoff_base_s / backoff_factor / backoff_max_s:
        Deterministic exponential backoff between retry rounds:
        ``min(backoff_max_s, backoff_base_s * backoff_factor**attempt)``.
        No jitter, by design -- chaos tests must reproduce byte-identically.
    task_timeout_s:
        Per-task execution deadline.  Enforced only under the ``process``
        backend (a hung worker is terminated and its task retried); threads
        cannot be preempted, so thread/serial execution ignores it.
        ``None`` disables deadlines.
    max_pool_rebuilds:
        Pool crashes plus deadline kills tolerated per batch before the
        executor stops trusting process isolation and degrades the rest of
        the batch down the ``process -> thread -> serial`` ladder.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    task_timeout_s: float | None = None
    max_pool_rebuilds: int = 5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")
        if self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be non-negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive when given")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")

    def backoff_s(self, attempt: int) -> float:
        """Seconds to wait before re-running a task's ``attempt``-th retry."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt),
        )

    def replace(self, **overrides: object) -> "RetryPolicy":
        """A copy of this policy with the given fields changed."""
        return dataclasses.replace(self, **overrides)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task the batch gave up on.

    Occupies the task's result slot, so batch neighbours still return their
    values: the whole point of quarantine is that a poison task costs one
    slot, not the batch.  ``kind`` is ``"crash"`` (worker death),
    ``"deadline"`` (hung past the policy deadline), or ``"error"`` (a
    transient exception that kept recurring).
    """

    index: int
    kind: str
    message: str
    attempts: int
    quarantined: bool = True

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
        }


class FaultCounters:
    """Mutable per-batch fault bookkeeping, folded into ``BatchStats``."""

    __slots__ = (
        "retries",
        "requeues",
        "pool_rebuilds",
        "deadline_hits",
        "quarantined",
        "degradations",
    )

    def __init__(self) -> None:
        self.retries = 0
        self.requeues = 0
        self.pool_rebuilds = 0
        self.deadline_hits = 0
        self.quarantined = 0
        self.degradations = 0


def is_transient_fault(exc: BaseException) -> bool:
    """Whether retrying the task could plausibly change the outcome.

    Deterministic engine outcomes -- :class:`EngineLimitError` above all --
    are never transient: the derivation that tripped a size guard trips it
    again, so retrying only burns budget and hides the real answer.
    Infrastructure faults (worker death, deadline/timeouts, OS-level I/O
    failures) are transient: the task itself may be fine.
    """
    if isinstance(exc, EngineLimitError):
        return False
    return isinstance(
        exc,
        (BrokenExecutor, OSError, EOFError, TimeoutError, FuturesTimeoutError),
    )


def execute_with_retry(
    run: Callable[[int], object],
    *,
    index: int,
    policy: RetryPolicy,
    counters: FaultCounters,
) -> object:
    """Run one task locally (serial/thread tier) under the retry policy.

    ``run`` receives the attempt number (fault plans key on it, so the
    caller's closure owns any injection).
    Transient faults are retried after deterministic backoff until the
    policy is exhausted, then reported as a :class:`TaskFailure`;
    non-transient exceptions propagate immediately, preserving the
    pre-resilience serial semantics for deterministic errors.
    """
    attempt = 0
    while True:
        try:
            return run(attempt)
        except Exception as exc:
            if not is_transient_fault(exc):
                raise
            attempt += 1
            counters.retries += 1
            if attempt > policy.max_retries:
                counters.quarantined += 1
                return TaskFailure(
                    index=index,
                    kind="error",
                    message=f"{type(exc).__name__}: {exc}",
                    attempts=attempt,
                    quarantined=True,
                )
            time.sleep(policy.backoff_s(attempt - 1))


# -- the resilient process-pool loop ------------------------------------------


def _kill_pool(pool: "ProcessPoolExecutor") -> None:
    """Reclaim a pool whose workers may be hung or dying.

    Terminating the worker processes first is what makes this safe for hung
    workers: ``shutdown`` alone would block forever on a worker stuck in a
    loop (and the executor's management thread is non-daemonic, so even
    interpreter exit would hang).  The private ``_processes`` access is the
    sanctioned escape hatch -- ``ProcessPoolExecutor`` exposes no supported
    way to preempt a running task.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError, AttributeError):
                continue  # already reaped, or a non-process stand-in
    pool.shutdown(wait=False, cancel_futures=True)
    if processes:
        for process in list(processes.values()):
            try:
                process.join(timeout=1.0)
            except (OSError, ValueError, AssertionError):
                continue  # join raced the executor's own reaping


def _drain_starts(queue: object, started_at: dict[int, float]) -> None:
    """Record task-start announcements workers have written so far.

    The single consumer makes the ``empty()`` / ``get()`` pair safe; a
    worker that crashed immediately after announcing is exactly the case
    the announcement exists for (synchronous pipe write, no feeder thread),
    so the parent can blame precisely the tasks that were executing.
    """
    while not queue.empty():  # type: ignore[attr-defined]
        try:
            index, _attempt = queue.get()  # type: ignore[attr-defined]
        except (OSError, EOFError, ValueError):
            return  # queue torn down under us mid-recovery
        if index not in started_at:
            started_at[index] = time.monotonic()


def run_resilient_process_batch(
    tasks: Sequence[object],
    *,
    workers: int,
    policy: RetryPolicy,
    plan: FaultPlan | None,
    counters: FaultCounters,
    make_pool: Callable[[int], tuple["ProcessPoolExecutor", object]],
    submit: Callable[["ProcessPoolExecutor", int, int, object], "Future[object]"],
    run_local: Callable[[int, object], object],
) -> list[object]:
    """Execute ``tasks`` on a crash-surviving process pool.

    Returns one slot per task: the worker's value, or a
    :class:`TaskFailure` for quarantined tasks.  Deterministic task
    exceptions are re-raised (lowest task index first) after the batch
    drains, matching the serial loop's behaviour for the same inputs.

    The recovery loop: dispatch every incomplete task, monitor with the
    policy deadline, and on each fault either retry the blamed task
    (transient, budget permitting), quarantine it (budget exhausted), or --
    when pool rebuilding itself keeps failing -- fall back to ``run_local``
    for the remainder of the batch (the thread/serial rungs of the
    degradation ladder, which ``run_local`` implements).
    """
    total = len(tasks)
    attempts = [0] * total
    values: dict[int, object] = {}
    errors: dict[int, BaseException] = {}
    # Tasks implicated in a multi-casualty pool crash.  Until cleared by a
    # clean solo run (or quarantined), each is re-dispatched alone so the
    # next crash convicts exactly one task.
    suspects: set[int] = set()
    rebuilds = 0
    pool: "ProcessPoolExecutor | None" = None
    queue: object | None = None

    def pending_indices() -> list[int]:
        return [i for i in range(total) if i not in values and i not in errors]

    def quarantine(index: int, kind: str, message: str) -> None:
        counters.quarantined += 1
        values[index] = TaskFailure(
            index=index,
            kind=kind,
            message=message,
            attempts=attempts[index],
            quarantined=True,
        )

    def degrade_to_local(reason: str) -> None:
        counters.degradations += 1
        for index in pending_indices():
            values[index] = run_local(index, tasks[index])
        del reason

    try:
        while True:
            pending = pending_indices()
            if not pending:
                break
            if pool is None:
                try:
                    pool, queue = make_pool(workers)
                except (OSError, RuntimeError):
                    # Cannot even build a pool (fork failures, fd/pid
                    # exhaustion): process isolation is gone, use the ladder.
                    pool = queue = None
                    degrade_to_local("pool construction failed")
                    break
            # Innocent-until-isolated: run every non-suspect together; once
            # only suspects remain, try them one per round so a crash has a
            # single possible culprit.
            cleared = [i for i in pending if i not in suspects]
            round_indices = cleared if cleared else [min(suspects)]
            futures: dict["Future[object]", int] = {}
            for index in round_indices:
                if plan is not None and plan.should_interrupt(index):
                    raise KeyboardInterrupt(
                        f"injected interrupt before dispatch of task {index}"
                    )
                futures[submit(pool, index, attempts[index], tasks[index])] = index
            started_at: dict[int, float] = {}
            crashed = False
            hung: int | None = None
            backoff = 0.0
            not_done = set(futures)
            while not_done:
                poll = None if policy.task_timeout_s is None else _DEADLINE_POLL_S
                done, not_done = wait(
                    not_done, timeout=poll, return_when=FIRST_COMPLETED
                )
                assert queue is not None
                _drain_starts(queue, started_at)
                for future in done:
                    index = futures[future]
                    try:
                        values[index] = future.result()
                    except BrokenExecutor:
                        crashed = True
                    except Exception as exc:
                        if not is_transient_fault(exc):
                            errors[index] = exc
                            continue
                        # The pool survived (the task raised, the worker
                        # lives): retry just this task.
                        attempts[index] += 1
                        counters.retries += 1
                        if attempts[index] > policy.max_retries:
                            quarantine(
                                index, "error", f"{type(exc).__name__}: {exc}"
                            )
                        else:
                            backoff = max(
                                backoff, policy.backoff_s(attempts[index] - 1)
                            )
                if crashed:
                    break
                if policy.task_timeout_s is not None:
                    now = time.monotonic()
                    live = {futures[future] for future in not_done}
                    for index, started in started_at.items():
                        if index in live and now - started > policy.task_timeout_s:
                            hung = index
                            break
                    if hung is not None:
                        break

            if crashed:
                assert pool is not None and queue is not None
                counters.pool_rebuilds += 1
                rebuilds += 1
                _drain_starts(queue, started_at)
                _kill_pool(pool)
                pool = queue = None
                unfinished = [i for i in futures.values() if i in pending_indices()]
                counters.requeues += len(unfinished)
                # A task that never announced a start was still queued when
                # the pool died: innocent, re-dispatched with its attempt
                # count (and hence its scripted faults) intact.  Of the
                # tasks that DID start, the crasher is certain only when it
                # is the sole one unfinished; otherwise all of them become
                # suspects for solo isolation rounds -- charging every
                # co-resident would eventually quarantine an innocent
                # neighbour of a poison task.
                blamable = [i for i in unfinished if i in started_at]
                if len(blamable) == 1:
                    (index,) = blamable
                    attempts[index] += 1
                    if attempts[index] > policy.max_retries:
                        quarantine(
                            index,
                            "crash",
                            "worker process died while executing this task",
                        )
                suspects.update(i for i in blamable if i not in values)
            elif hung is not None:
                assert pool is not None
                counters.deadline_hits += 1
                counters.pool_rebuilds += 1
                rebuilds += 1
                attempts[hung] += 1
                _kill_pool(pool)
                pool = queue = None
                unfinished = [i for i in futures.values() if i in pending_indices()]
                counters.requeues += len(unfinished)
                if attempts[hung] > policy.max_retries:
                    quarantine(
                        hung,
                        "deadline",
                        f"task exceeded its {policy.task_timeout_s}s deadline "
                        f"on every attempt",
                    )
            elif backoff > 0.0:
                time.sleep(backoff)

            # A suspect that completed, quarantined, or errored is resolved.
            suspects &= set(pending_indices())

            if rebuilds > policy.max_pool_rebuilds and pending_indices():
                if pool is not None:
                    _kill_pool(pool)
                    pool = queue = None
                degrade_to_local("pool rebuild budget exhausted")
                break
    except BaseException:
        # Interrupted (KeyboardInterrupt included) or a non-retryable
        # failure below: reclaim the workers so abandoned temp files become
        # dead-pid stale and the caller's sweep can collect them.
        if pool is not None:
            _kill_pool(pool)
            pool = None
        raise
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    if errors:
        raise errors[min(errors)]
    return [values[index] for index in range(total)]
