"""Pluggable execution backends for the engine's batch fan-out.

``EngineConfig(executor=...)`` selects how ``Engine.speedup_many``,
``Engine.run_many``, and the search driver's beam expansion distribute their
per-item work:

* ``"serial"`` -- an in-order loop, no pool.  The reference semantics every
  other backend is differentially tested against, and the fastest choice for
  tiny batches (pool startup costs more than the work).
* ``"thread"`` -- a ``ThreadPoolExecutor`` sharing the engine's caches
  in-memory.  The derivations are CPU-bound pure Python, so the GIL
  serialises the compute; threads still win when most items resolve to
  cache hits or coalesce onto one derivation (single-flight, see
  :meth:`repro.engine.cache.SpeedupCache.acquire`).
* ``"process"`` -- a ``ProcessPoolExecutor`` shipping pickled tasks to
  worker processes, each owning a private serial :class:`~repro.engine.
  engine.Engine` built from the parent's configuration -- including the
  ``kernel`` tier and the streaming limits, so every worker resolves
  ``"auto"`` against its own numpy availability and derives with the same
  caps as the parent would.  Workers record
  every speedup-cache insert and 0-round-memo verdict as deltas
  (:meth:`~repro.engine.cache.SpeedupCache.drain_recorded`); the parent
  merges them back so its caches end a batch as warm as a serial run's.
  True parallelism for CPU-heavy batches, at the price of pickling and of
  workers not seeing entries the parent learns mid-batch.

The dispatch is task-shaped, not method-shaped: the three frozen task types
(:class:`SpeedupTask`, :class:`RunTask`, :class:`ExpandTask`) are the unit
of shipping, and :func:`execute_task` maps any of them onto any engine --
the same function runs in the parent (serial/thread backends) and inside
workers (process backend), which is what makes the backends differentially
comparable.

Every batch is metered (:class:`BatchStats`): wall clock, summed per-task
compute, and the parent-side serial components -- canonical hashing, cache
lock waits, coalesce waits, result-merge time -- whose ratio to wall clock
is the measured Amdahl serial fraction the ``--backend`` rows of
``benchmarks/run_speedup_bench.py`` publish.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.core.problem import Problem
from repro.core.speedup import SpeedupResult
from repro.engine import faultinject
from repro.engine.config import EngineConfig
from repro.engine.resilience import (
    FaultCounters,
    TaskFailure,
    execute_with_retry,
    run_resilient_process_batch,
)
from repro.utils.jsonio import sweep_stale_tmp_files

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

    from repro.core.canonical import CanonicalForm
    from repro.core.sequence import EliminationResult, Relaxer
    from repro.engine.engine import Engine
    from repro.search.moves import RelaxationMove


# -- task shapes --------------------------------------------------------------


@dataclass(frozen=True)
class SpeedupTask:
    """One speedup derivation: ``problem -> SpeedupResult``."""

    problem: Problem
    simplify: bool


@dataclass(frozen=True)
class RunTask:
    """One full elimination pipeline: ``problem -> EliminationResult``.

    ``relaxer`` crosses the process boundary by pickle, so under the
    ``process`` backend it must be a module-level callable (lambdas and
    closures raise at submission time).
    """

    problem: Problem
    max_steps: int
    relaxer: "Relaxer | None" = None


@dataclass(frozen=True)
class ExpandTask:
    """One beam-search expansion: speedup + moves + candidate evaluation.

    Executed by :func:`repro.search.driver.execute_expand_task`; the
    payload carries everything the driver's consumption loop needs so the
    CPU-heavy parts (derivation, move generation, compression, canonical
    hashing, 0-round decisions) all happen backend-side.
    """

    problem: Problem
    max_moves: int
    beam_width: int


@dataclass(frozen=True)
class ChaseTask:
    """One upper-bound chase expansion: hardenings + speedups + 0-round checks.

    Executed by :func:`repro.search.upper.execute_chase_task`: the state's
    problem and each of its hardening restrictions get one speedup
    derivation, and every *derived* problem gets a memoised 0-round decision
    (hardened problems themselves never do -- a restriction cannot become
    0-round solvable when its source is not, see ``search/upper.py``).
    """

    problem: Problem
    max_hardenings: int


Task = Union[SpeedupTask, RunTask, ExpandTask, ChaseTask]


@dataclass(frozen=True)
class ExpandOption:
    """One evaluated candidate of an expansion.

    ``move`` is ``None`` for the derived problem itself, else the relaxation
    move that produced ``compressed``.  ``solvable`` is the memoised 0-round
    verdict; ``memo_hit`` records whether the executing engine's memo
    already held it (the driver's local stats consume this).
    """

    move: "RelaxationMove | None"
    compressed: Problem
    key: str
    solvable: bool
    memo_hit: bool


@dataclass(frozen=True)
class ExpandPayload:
    """What one :class:`ExpandTask` produced.

    ``options[0]`` is always the derived problem's own option; move options
    follow in move order, and are *absent* when the derived problem is
    0-round solvable (its relaxations all are too -- the driver prunes the
    whole branch, so evaluating them would be wasted work).
    ``moves_generated`` still records how many moves existed, which the
    driver's prune accounting needs.  ``limit_hit`` marks a derivation that
    tripped the engine's size guards (``result`` is then ``None``).
    """

    result: SpeedupResult | None
    limit_hit: bool
    options: tuple[ExpandOption, ...]
    moves_generated: int


@dataclass(frozen=True)
class ChaseOption:
    """One evaluated candidate of a chase expansion.

    ``move`` is ``None`` for the speedup of the state's own problem, else
    the hardening move whose target was sped up.  ``result`` is the
    derivation (``None`` with ``limit_hit`` set when it tripped the engine's
    size guards).  ``key``/``solvable``/``memo_hit`` describe the derived
    problem's memoised 0-round verdict, exactly as in
    :class:`ExpandOption`.
    """

    move: "RelaxationMove | None"
    result: SpeedupResult | None
    limit_hit: bool
    key: str
    solvable: bool
    memo_hit: bool


@dataclass(frozen=True)
class ChasePayload:
    """What one :class:`ChaseTask` produced.

    ``options[0]`` always describes the state problem's own speedup; the
    hardening options follow in move-generation order.
    ``hardenings_generated`` records how many restriction moves existed
    (equal to ``len(options) - 1`` -- unlike the lower-bound expansion, no
    prune drops options backend-side).
    """

    options: tuple[ChaseOption, ...]
    hardenings_generated: int


@dataclass(frozen=True)
class TaskResult:
    """A task's value plus the cache deltas a worker process accumulated."""

    value: object
    cache_entries: tuple[tuple[str, "CanonicalForm", SpeedupResult], ...]
    memo_entries: tuple[tuple[str, bool], ...]
    compute_s: float


@dataclass(frozen=True)
class BatchStats:
    """Measured execution profile of one batch.

    The ``*_s`` component fields are deltas over the batch of the owning
    engine's cache meters (:meth:`~repro.engine.cache.SpeedupCache.
    concurrency_stats`) plus the batch's own merge timer; under the
    ``process`` backend they cover exactly the parent-side serial work, and
    :attr:`serial_fraction` is their share of the batch wall clock -- the
    Amdahl ceiling on what more workers can buy.
    """

    backend: str
    tasks: int
    workers: int
    wall_s: float
    compute_s: float
    canonical_s: float
    lock_wait_s: float
    coalesce_wait_s: float
    merge_s: float
    coalesced: int
    cache_hits: int
    cache_misses: int
    cache_entries_added: int
    memo_entries_added: int
    # Fault-recovery counters (see :mod:`repro.engine.resilience`): retries
    # of transiently-failed tasks, re-dispatches of innocent tasks after a
    # pool crash, pool rebuilds (crashes + deadline kills), deadline hits,
    # tasks quarantined as TaskFailure, and backend degradations.
    retries: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0
    deadline_hits: int = 0
    quarantined: int = 0
    degradations: int = 0

    @property
    def serial_fraction(self) -> float:
        """Parent-side serial seconds over wall seconds, clamped to [0, 1]."""
        if self.wall_s <= 0:
            return 0.0
        serial = self.canonical_s + self.lock_wait_s + self.merge_s
        return max(0.0, min(1.0, serial / self.wall_s))

    def to_dict(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "tasks": self.tasks,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "compute_s": self.compute_s,
            "canonical_s": self.canonical_s,
            "lock_wait_s": self.lock_wait_s,
            "coalesce_wait_s": self.coalesce_wait_s,
            "merge_s": self.merge_s,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries_added": self.cache_entries_added,
            "memo_entries_added": self.memo_entries_added,
            "retries": self.retries,
            "requeues": self.requeues,
            "pool_rebuilds": self.pool_rebuilds,
            "deadline_hits": self.deadline_hits,
            "quarantined": self.quarantined,
            "degradations": self.degradations,
            "serial_fraction": self.serial_fraction,
        }


# -- task execution (runs in the parent OR inside a worker) -------------------


def execute_task(engine: "Engine", task: Task) -> object:
    """Run one task on one engine; the single dispatch every backend shares."""
    if isinstance(task, SpeedupTask):
        return engine.speedup(task.problem, simplify=task.simplify)
    if isinstance(task, RunTask):
        return engine.run(task.problem, task.max_steps, relaxer=task.relaxer)
    # Lazy imports: the search drivers import this module for the task types.
    if isinstance(task, ExpandTask):
        from repro.search.driver import execute_expand_task

        return execute_expand_task(engine, task)
    from repro.search.upper import execute_chase_task

    return execute_chase_task(engine, task)


# -- the process-pool worker side ---------------------------------------------

_WORKER_ENGINE: "Engine | None" = None
_START_QUEUE: object | None = None


def _initialize_worker(config: EngineConfig, start_queue: object = None) -> None:
    """Build the per-process engine (called once per worker by the pool).

    The worker engine is serial (a worker must never spawn its own pool)
    and records its cache inserts and memo verdicts so
    :func:`_execute_in_worker` can return them as mergeable deltas.
    Building the engine also (re)activates the config's fault plan in this
    process, so scripted worker faults fire here; ``start_queue`` is the
    pool-shared channel workers announce task starts on (the crash-blame
    evidence the resilient dispatcher needs).
    """
    global _WORKER_ENGINE, _START_QUEUE
    from repro.engine.engine import Engine

    engine = Engine(config)
    engine.cache.start_recording()
    if engine.zero_round_memo is not None:
        engine.zero_round_memo.start_recording()
    _WORKER_ENGINE = engine
    _START_QUEUE = start_queue
    faultinject.mark_worker()


def _execute_in_worker(task: Task) -> TaskResult:
    """Run one task on the worker's engine, draining the recorded deltas."""
    engine = _WORKER_ENGINE
    if engine is None:  # pool used without the initializer -- a bug
        raise RuntimeError("worker engine not initialised")
    start = time.perf_counter()
    value = execute_task(engine, task)
    compute_s = time.perf_counter() - start
    memo = engine.zero_round_memo
    return TaskResult(
        value=value,
        cache_entries=engine.cache.drain_recorded(),
        memo_entries=memo.drain_recorded() if memo is not None else (),
        compute_s=compute_s,
    )


def _execute_in_worker_at(index: int, attempt: int, task: Task) -> TaskResult:
    """Worker entry point of the resilient dispatcher.

    Announces the task start *before* doing anything that can fail -- the
    announcement is a synchronous pipe write, so even an immediate
    ``os._exit`` cannot lose it, and the parent can blame crashes on
    exactly the tasks that were executing.  Then fires any scripted fault
    for this ``(index, attempt)`` coordinate and runs the task normally.
    """
    queue = _START_QUEUE
    if queue is not None:
        queue.put((index, attempt))  # type: ignore[attr-defined]
    plan = faultinject.active_plan()
    if plan is not None:
        faultinject.fire_task_fault(plan, index, attempt)
    return _execute_in_worker(task)


def _process_context() -> "BaseContext | None":
    """Prefer ``fork`` (cheap start, inherited imports); None = default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _sweep_cache_tmp_files(engine: "Engine") -> None:
    """Reclaim temp files killed workers abandoned in the shared cache dirs.

    Called when a process batch dies (KeyboardInterrupt included): the
    dispatcher has already terminated the workers, so any temp file they
    were writing carries a dead pid and sweeps cleanly; live files from
    unrelated processes are untouched.
    """
    cache_dir = engine.config.cache_dir
    if cache_dir is None:
        return
    root = Path(cache_dir)
    sweep_stale_tmp_files(root)
    sweep_stale_tmp_files(root / "zero_round")


def _run_process_pool(
    engine: "Engine", tasks: list[Task], workers: int
) -> tuple[list[object], float, float, FaultCounters]:
    """Execute tasks on a crash-surviving process pool.

    Returns ``(values, compute_s, merge_s, counters)``; value slots hold
    the task's result, or a :class:`~repro.engine.resilience.TaskFailure`
    for tasks the retry policy quarantined.  Worker engines are serial
    single-worker clones of the parent's configuration (sharing any
    ``cache_dir``); their recorded cache/memo deltas are merged into the
    parent's caches here, so a process batch leaves the parent exactly as
    warm as a serial one.  A task raising a deterministic error (an
    :class:`~repro.core.limits.EngineLimitError` above all) propagates it,
    like the serial loop; transient infrastructure faults are retried and
    recovered per the engine's :class:`~repro.engine.resilience.
    RetryPolicy`, degrading to in-parent execution when process isolation
    itself keeps failing.
    """
    worker_config = engine.config.replace(executor="serial", max_workers=1)
    policy = engine.config.retry_policy
    plan = engine.fault_plan
    counters = FaultCounters()

    def make_pool(pool_workers: int) -> tuple[ProcessPoolExecutor, object]:
        context = _process_context() or multiprocessing.get_context()
        queue = context.SimpleQueue()
        pool = ProcessPoolExecutor(
            max_workers=pool_workers,
            mp_context=context,
            initializer=_initialize_worker,
            initargs=(worker_config, queue),
        )
        return pool, queue

    def submit(
        pool: ProcessPoolExecutor, index: int, attempt: int, task: object
    ) -> "Future[object]":
        assert isinstance(task, (SpeedupTask, RunTask, ExpandTask, ChaseTask))
        return pool.submit(_execute_in_worker_at, index, attempt, task)

    def run_local(index: int, task: object) -> object:
        # The degraded (thread/serial) rung: execute on the parent engine,
        # still under the retry policy, so the batch completes even when
        # process pools cannot be built at all.
        assert isinstance(task, (SpeedupTask, RunTask, ExpandTask, ChaseTask))
        value, _elapsed = _timed_execute(engine, index, task, counters)
        return value

    try:
        slots = run_resilient_process_batch(
            tasks,
            workers=workers,
            policy=policy,
            plan=plan,
            counters=counters,
            make_pool=make_pool,
            submit=submit,
            run_local=run_local,
        )
    except BaseException:
        # The dispatcher already reclaimed the workers; their abandoned
        # temp files now carry dead pids and must not outlive the batch.
        _sweep_cache_tmp_files(engine)
        raise
    merge_start = time.perf_counter()
    memo = engine.zero_round_memo
    values: list[object] = []
    compute_s = 0.0
    for slot in slots:
        if isinstance(slot, TaskResult):
            for key, form, stored in slot.cache_entries:
                engine.cache.merge(key, form, stored)
            if memo is not None:
                for memo_key, solvable in slot.memo_entries:
                    memo.merge(memo_key, solvable)
            values.append(slot.value)
            compute_s += slot.compute_s
        else:
            # A TaskFailure, or a value computed in-parent by the degraded
            # path (whose cache effects landed directly on the engine).
            values.append(slot)
    merge_s = time.perf_counter() - merge_start
    return values, compute_s, merge_s, counters


# -- batch orchestration (runs in the parent) ---------------------------------


def _timed_execute(
    engine: "Engine", index: int, task: Task, counters: FaultCounters
) -> tuple[object, float]:
    """One in-parent task execution under the retry policy, timed.

    The serial and thread backends run every task through this; transient
    faults (an injected flake, an OS-level I/O error mid-derivation) retry
    with deterministic backoff, and a task that exhausts the policy comes
    back as a :class:`TaskFailure` value instead of killing the batch.
    """
    policy = engine.config.retry_policy
    plan = engine.fault_plan
    start = time.perf_counter()

    def attempt_run(attempt: int) -> object:
        if plan is not None:
            faultinject.fire_task_fault(plan, index, attempt)
        return execute_task(engine, task)

    value = execute_with_retry(
        attempt_run, index=index, policy=policy, counters=counters
    )
    return value, time.perf_counter() - start


class _BatchMeter:
    """Snapshot-and-delta wrapper producing one :class:`BatchStats`."""

    def __init__(self, engine: "Engine", backend: str, tasks: int, workers: int):
        self._engine = engine
        self._backend = backend
        self._tasks = tasks
        self._workers = workers
        self._cache_before = engine.cache.stats()
        self._conc_before = engine.cache.concurrency_stats()
        self._memo_before = engine.zero_round_stats()
        self._start = time.perf_counter()

    def finish(
        self,
        compute_s: float,
        merge_s: float,
        counters: FaultCounters | None = None,
    ) -> BatchStats:
        wall_s = time.perf_counter() - self._start
        cache_after = self._engine.cache.stats()
        conc_after = self._engine.cache.concurrency_stats()
        memo_after = self._engine.zero_round_stats()
        faults = counters if counters is not None else FaultCounters()
        return BatchStats(
            backend=self._backend,
            tasks=self._tasks,
            workers=self._workers,
            wall_s=wall_s,
            compute_s=compute_s,
            canonical_s=conc_after["canonical_s"] - self._conc_before["canonical_s"],
            lock_wait_s=conc_after["lock_wait_s"] - self._conc_before["lock_wait_s"],
            coalesce_wait_s=(
                conc_after["coalesce_wait_s"] - self._conc_before["coalesce_wait_s"]
            ),
            merge_s=merge_s,
            coalesced=int(conc_after["coalesced"] - self._conc_before["coalesced"]),
            cache_hits=cache_after["hits"] - self._cache_before["hits"],
            cache_misses=cache_after["misses"] - self._cache_before["misses"],
            cache_entries_added=cache_after["entries"] - self._cache_before["entries"],
            memo_entries_added=memo_after["entries"] - self._memo_before["entries"],
            retries=faults.retries,
            requeues=faults.requeues,
            pool_rebuilds=faults.pool_rebuilds,
            deadline_hits=faults.deadline_hits,
            quarantined=faults.quarantined,
            degradations=faults.degradations,
        )


def run_task_batch(
    engine: "Engine", tasks: list[Task]
) -> tuple[list[object], BatchStats]:
    """Execute a batch of tasks on the engine's configured backend.

    Values come back in task order.  Batches of one task (or one worker)
    run serially whatever the configured backend -- pools only ever cost
    there.
    """
    backend = engine.config.executor
    workers = engine._resolve_workers(len(tasks))
    pooled = len(tasks) > 1 and workers > 1
    meter = _BatchMeter(engine, backend, len(tasks), workers if pooled else 1)
    merge_s = 0.0
    counters = FaultCounters()
    if backend == "process" and pooled:
        values, compute_s, merge_s, counters = _run_process_pool(
            engine, tasks, workers
        )
    elif backend == "thread" and pooled:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            timed = list(
                pool.map(
                    lambda item: _timed_execute(engine, item[0], item[1], counters),
                    enumerate(tasks),
                )
            )
        values = [value for value, _ in timed]
        compute_s = sum(elapsed for _, elapsed in timed)
    else:
        values = []
        compute_s = 0.0
        for index, task in enumerate(tasks):
            value, elapsed = _timed_execute(engine, index, task, counters)
            values.append(value)
            compute_s += elapsed
    return values, meter.finish(compute_s, merge_s, counters)


def speedup_batch(
    engine: "Engine", problems: list[Problem], simplify: bool
) -> tuple[list["SpeedupResult | TaskFailure"], BatchStats]:
    """Batch speedup derivation with cross-backend-consistent accounting.

    Serial and thread backends route through ``engine.speedup`` (whose
    single-flight cache already coalesces concurrent twins).  The process
    backend cannot share in-memory latches with its workers, so coalescing
    happens here in the parent: probe every problem, dispatch exactly one
    leader task per missed canonical key (counted as the one true miss),
    count the other requests of that key as coalesced, and resolve them
    after the merge as translated hits -- the same hit/miss/coalesce totals
    a serial run of the same batch reports.

    A slot holds a :class:`~repro.engine.resilience.TaskFailure` when the
    retry policy quarantined that problem's derivation; followers coalesced
    onto a quarantined leader inherit the failure (re-indexed) rather than
    re-deriving a task the policy just gave up on.
    """
    backend = engine.config.executor
    workers = engine._resolve_workers(len(problems))
    pooled = backend == "process" and len(problems) > 1 and workers > 1
    if not (pooled and engine.config.cache):
        # Serial/thread (and degenerate process) batches: per-item speedup
        # through the shared cache; single-flight does the coalescing.
        tasks: list[Task] = [SpeedupTask(problem, simplify) for problem in problems]
        values, stats = run_task_batch(engine, tasks)
        return [_as_speedup_value(value) for value in values], stats

    meter = _BatchMeter(engine, backend, len(problems), workers)
    cache = engine.cache
    resolved: dict[int, "SpeedupResult | TaskFailure"] = {}
    leaders: dict[str, tuple[int, "CanonicalForm"]] = {}
    followers: list[tuple[int, str]] = []
    for index, problem in enumerate(problems):
        hit, form, key = cache.probe(problem, simplify)
        if hit is not None:
            resolved[index] = hit
            continue
        if key in leaders:
            cache.note_coalesced()
            followers.append((index, key))
        else:
            cache.note_dispatched_miss()
            leaders[key] = (index, form)
    leader_items = list(leaders.items())
    pool_tasks: list[Task] = [
        SpeedupTask(problems[index], simplify) for _key, (index, _form) in leader_items
    ]
    merge_s = 0.0
    compute_s = 0.0
    counters = FaultCounters()
    failed_keys: dict[str, TaskFailure] = {}
    if pool_tasks:
        values, compute_s, merge_s, counters = _run_process_pool(
            engine, pool_tasks, workers
        )
        merge_start = time.perf_counter()
        for (key, (index, form)), value in zip(leader_items, values):
            if isinstance(value, TaskFailure):
                failure = dataclasses.replace(value, index=index)
                resolved[index] = failure
                failed_keys[key] = failure
                continue
            result = _as_speedup_value(value)
            assert isinstance(result, SpeedupResult)
            # Re-merge under the leader's own key: the worker recorded the
            # entry too, but its batch may have evicted it before draining.
            resolved[index] = cache.merge(key, form, result)
        merge_s += time.perf_counter() - merge_start
    for index, key in followers:
        if key in failed_keys:
            resolved[index] = dataclasses.replace(failed_keys[key], index=index)
            continue
        hit, _form, _key = cache.probe(problems[index], simplify)
        if hit is None:
            # The merged entry was evicted before this follower resolved
            # (weight pressure from other entries); fall back to a direct
            # derivation rather than returning nothing.
            resolved[index] = engine.speedup(problems[index], simplify=simplify)
        else:
            resolved[index] = hit
    ordered = [resolved[index] for index in range(len(problems))]
    return ordered, meter.finish(compute_s, merge_s, counters)


def _as_speedup_value(value: object) -> "SpeedupResult | TaskFailure":
    assert isinstance(value, (SpeedupResult, TaskFailure))
    return value


def run_batch(
    engine: "Engine",
    problems: list[Problem],
    max_steps: int,
    relaxer: "Relaxer | None",
) -> tuple[list["EliminationResult | TaskFailure"], BatchStats]:
    """Batch elimination pipelines on the engine's configured backend."""
    from repro.core.sequence import EliminationResult

    tasks: list[Task] = [
        RunTask(problem, max_steps, relaxer) for problem in problems
    ]
    values, stats = run_task_batch(engine, tasks)
    results: list["EliminationResult | TaskFailure"] = []
    for value in values:
        assert isinstance(value, (EliminationResult, TaskFailure))
        results.append(value)
    return results, stats
