"""Theorem 1, executed: the A -> A_{1/2} -> A_1 transformations on real graphs.

The proof of Theorem 1 is constructive in both directions.  This module runs
those constructions on finite, exhaustively enumerable graph classes (rings
with input colorings and port numberings), making the theorem an *executable
statement*:

* forward: given a ``t``-round algorithm ``A`` for ``Pi``, build ``A_{1/2}``
  (each node answers from the edge view ``N^t(e)``, collecting ``A``'s
  outputs over all class-consistent extensions) and ``A_1`` (answers from
  ``N^{t-1}(v)``, collecting ``A_{1/2}``'s outputs over extensions), then
  *verify on every instance of the class* that the outputs satisfy
  Properties 1-4 of Section 4.1;

* backward: given the 0-round ``A_1``-style algorithm, reconstruct a
  ``t``-round algorithm for ``Pi`` by the existential choices of the
  (2) => (1) direction, and verify it solves ``Pi`` everywhere.

Extension enumeration, the only step that quantifies over "all graphs of the
class", is realised by scanning the finite class once and indexing node views
by the partial views they extend.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import product

import networkx as nx

from repro.core.problem import Label, Problem, node_config
from repro.sim.graphs import ring
from repro.sim.ports import InputLabeling, Node, Port, PortGraph
from repro.sim.simulator import ViewAlgorithm
from repro.sim.views import EdgeViewSides, edge_view_from, full_node_view, node_view

Instance = tuple[PortGraph, InputLabeling]


@dataclass(frozen=True)
class ColoredRingClass:
    """All rings on ``n`` nodes with proper ``num_colors``-colorings as input.

    Every proper coloring and (optionally) every port numbering is included,
    which makes the class exactly enumerable; rings have girth ``n``, so any
    ``t`` with ``2t + 2 <= n`` satisfies the theorem's girth condition, and
    input colorings provide the required symmetry breaking without unique
    identifiers (so t-independence holds, cf. Section 3).
    """

    n: int
    num_colors: int
    all_port_numberings: bool = True

    def proper_colorings(self) -> Iterator[tuple[int, ...]]:
        """All proper colorings of the n-cycle with colors ``1..num_colors``."""

        def extend(prefix: list[int]) -> Iterator[tuple[int, ...]]:
            if len(prefix) == self.n:
                if prefix[-1] != prefix[0]:
                    yield tuple(prefix)
                return
            for color in range(1, self.num_colors + 1):
                if color != prefix[-1]:
                    prefix.append(color)
                    yield from extend(prefix)
                    prefix.pop()

        for first in range(1, self.num_colors + 1):
            yield from extend([first])

    def port_numberings(self, graph: nx.Graph) -> Iterator[dict[Node, list[Node]]]:
        """All assignments of {port 0, port 1} to each node's two neighbors."""
        nodes = sorted(graph.nodes)
        base = {v: sorted(graph.neighbors(v)) for v in nodes}
        if not self.all_port_numberings:
            yield base
            return
        for flips in product((False, True), repeat=len(nodes)):
            yield {
                v: list(reversed(base[v])) if flip else list(base[v])
                for v, flip in zip(nodes, flips)
            }

    def instances(self) -> Iterator[Instance]:
        graph = ring(self.n)
        for coloring in self.proper_colorings():
            inputs_template = {v: coloring[v] for v in range(self.n)}
            for numbering in self.port_numberings(graph):
                pg = PortGraph(graph, numbering)
                yield pg, InputLabeling(node_color=dict(inputs_template))


# -- forward direction: A -> A_{1/2} -> A_1 ---------------------------------


@dataclass
class SpeedupExecution:
    """The executable transformations for one (class, problem, algorithm) triple.

    ``algorithm`` must be a ``t``-round :class:`ViewAlgorithm` solving
    ``problem`` on the class.  Construction scans the class once to build the
    extension indexes; the per-instance output maps then evaluate
    ``A_{1/2}`` and ``A_1`` exactly as defined in Section 4.1.
    """

    ring_class: ColoredRingClass
    problem: Problem
    algorithm: ViewAlgorithm

    def __post_init__(self) -> None:
        self._t = self.algorithm.radius
        if 2 * self._t + 2 > self.ring_class.n:
            raise ValueError("girth condition 2t + 2 <= n violated")
        # edge key  -> set of outputs A gives at (v, e) over all extensions
        self._half_outputs: dict[tuple, set[Label]] = defaultdict(set)
        # (node (t-1)-view, port) -> set of half outputs over all extensions
        self._full_outputs: dict[tuple, set[frozenset[Label]]] = defaultdict(set)
        self._index_class()

    @staticmethod
    def _edge_key(sides: EdgeViewSides) -> tuple:
        return (sides.view, sides.my_port, sides.my_side_view)

    def _index_class(self) -> None:
        t = self._t
        # Pass 1: index A's outputs by the edge view each (v, e) extends.
        for pg, inputs in self.ring_class.instances():
            for v in pg.nodes():
                view = full_node_view(pg, inputs, v, t)
                labels = self.algorithm.outputs(view, pg.degree(v))
                for port in range(pg.degree(v)):
                    sides = edge_view_from(pg, inputs, v, port, t)
                    self._half_outputs[self._edge_key(sides)].add(labels[port])
        # Pass 2: index A_{1/2}'s outputs by the (t-1) node view they extend.
        for pg, inputs in self.ring_class.instances():
            for v in pg.nodes():
                base = node_view(pg, inputs, v, t - 1)
                for port in range(pg.degree(v)):
                    sides = edge_view_from(pg, inputs, v, port, t)
                    half = frozenset(self._half_outputs[self._edge_key(sides)])
                    self._full_outputs[(base, port)].add(half)

    # -- evaluate the derived algorithms on an instance --------------------

    def run_half(self, pg: PortGraph, inputs: InputLabeling) -> dict[tuple[Node, Port], frozenset[Label]]:
        """``A_{1/2}``: at ``(v, e)`` output all labels A produces over extensions."""
        outputs = {}
        for v in pg.nodes():
            for port in range(pg.degree(v)):
                sides = edge_view_from(pg, inputs, v, port, self._t)
                outputs[(v, port)] = frozenset(self._half_outputs[self._edge_key(sides)])
        return outputs

    def run_full(
        self, pg: PortGraph, inputs: InputLabeling
    ) -> dict[tuple[Node, Port], frozenset[frozenset[Label]]]:
        """``A_1``: at ``(v, e)`` output all of ``A_{1/2}``'s outputs over extensions.

        Reads only ``N^{t-1}(v)`` -- one round faster than ``A``.
        """
        outputs = {}
        for v in pg.nodes():
            base = node_view(pg, inputs, v, self._t - 1)
            for port in range(pg.degree(v)):
                outputs[(v, port)] = frozenset(self._full_outputs[(base, port)])
        return outputs

    # -- verify the derived problems' constraints directly ------------------

    def verify_half_instance(self, pg: PortGraph, inputs: InputLabeling) -> bool:
        """Properties 1 and 2 of ``Pi_{1/2}`` hold for ``A_{1/2}``'s outputs."""
        half = self.run_half(pg, inputs)
        for u, pu, v, pv in pg.edges_with_ports():
            for y in half[(u, pu)]:
                for z in half[(v, pv)]:
                    if not self.problem.allows_edge(y, z):
                        return False
        for v in pg.nodes():
            sets = [half[(v, port)] for port in range(pg.degree(v))]
            if not _exists_choice_in(self.problem, sets):
                return False
        return True

    def verify_full_instance(self, pg: PortGraph, inputs: InputLabeling) -> bool:
        """Properties 3 and 4 of ``Pi_1`` hold for ``A_1``'s outputs."""
        full = self.run_full(pg, inputs)
        for u, pu, v, pv in pg.edges_with_ports():
            if not any(
                _universal_pair(self.problem, y_set, z_set)
                for y_set in full[(u, pu)]
                for z_set in full[(v, pv)]
            ):
                return False
        for v in pg.nodes():
            choices = [sorted(full[(v, port)], key=sorted) for port in range(pg.degree(v))]
            for combo in product(*choices):
                if not _exists_choice_in(self.problem, list(combo)):
                    return False
        return True

    def verify_class(self) -> "TheoremOneReport":
        """Run both verifications over every instance of the class."""
        half_ok = True
        full_ok = True
        count = 0
        for pg, inputs in self.ring_class.instances():
            count += 1
            half_ok = half_ok and self.verify_half_instance(pg, inputs)
            full_ok = full_ok and self.verify_full_instance(pg, inputs)
            if not (half_ok and full_ok):
                break
        return TheoremOneReport(
            instances=count, half_ok=half_ok, full_ok=full_ok, reconstructed_ok=None
        )

    # -- backward direction: reconstruct a t-round algorithm ----------------

    def reconstruct_and_verify(self) -> "TheoremOneReport":
        """The (2) => (1) direction of Theorem 1, executed and verified.

        From ``A_1`` (a ``t-1``-round algorithm), build ``A*_{-1/2}``
        (deterministic existential pick on each edge, Property 3) and then
        ``A*_{-1}`` (deterministic existential pick at each node, Property 2)
        and check that the reconstruction solves ``Pi`` on every instance.
        """
        base_report = self.verify_class()
        if not (base_report.half_ok and base_report.full_ok):
            return base_report

        reconstructed_ok = True
        for pg, inputs in self.ring_class.instances():
            full = self.run_full(pg, inputs)
            # A*_{-1/2}: on each edge pick the canonically first universal pair.
            half_choice: dict[tuple[Node, Port], frozenset[Label]] = {}
            for u, pu, v, pv in pg.edges_with_ports():
                pair = _first_universal_pair(
                    self.problem, full[(u, pu)], full[(v, pv)]
                )
                if pair is None:
                    reconstructed_ok = False
                    break
                half_choice[(u, pu)], half_choice[(v, pv)] = pair
            if not reconstructed_ok:
                break
            # A*_{-1}: per node pick the canonically first realizable choice.
            outputs: dict[tuple[Node, Port], Label] = {}
            for v in pg.nodes():
                sets = [half_choice[(v, port)] for port in range(pg.degree(v))]
                chosen = _first_choice_in(self.problem, sets)
                if chosen is None:
                    reconstructed_ok = False
                    break
                for port, label in enumerate(chosen):
                    outputs[(v, port)] = label
            if not reconstructed_ok:
                break
            # The reconstruction must solve Pi outright.
            from repro.sim.verifier import solves

            if not solves(self.problem, pg, outputs):
                reconstructed_ok = False
                break
        return TheoremOneReport(
            instances=base_report.instances,
            half_ok=base_report.half_ok,
            full_ok=base_report.full_ok,
            reconstructed_ok=reconstructed_ok,
        )


@dataclass(frozen=True)
class TheoremOneReport:
    """Verification summary of the executable Theorem 1."""

    instances: int
    half_ok: bool
    full_ok: bool
    reconstructed_ok: bool | None

    @property
    def all_ok(self) -> bool:
        return bool(self.half_ok and self.full_ok and self.reconstructed_ok)


# -- helpers -----------------------------------------------------------------


def _universal_pair(
    problem: Problem, y_set: frozenset[Label], z_set: frozenset[Label]
) -> bool:
    """Property 1: every pair of choices is edge-allowed."""
    return all(problem.allows_edge(y, z) for y in y_set for z in z_set)


def _first_universal_pair(
    problem: Problem,
    w_set: frozenset[frozenset[Label]],
    x_set: frozenset[frozenset[Label]],
) -> tuple[frozenset[Label], frozenset[Label]] | None:
    """The canonically first (Y, Z) with Y in W, Z in X forming a universal pair."""
    for y_set in sorted(w_set, key=sorted):
        for z_set in sorted(x_set, key=sorted):
            if _universal_pair(problem, y_set, z_set):
                return (y_set, z_set)
    return None


def _exists_choice_in(problem: Problem, sets: list[frozenset[Label]]) -> bool:
    """Property 2: some choice from the sets forms an allowed node configuration."""
    return _first_choice_in(problem, sets) is not None


def _first_choice_in(
    problem: Problem, sets: list[frozenset[Label]]
) -> tuple[Label, ...] | None:
    """The canonically first per-port choice whose multiset lies in ``h``."""
    for combo in product(*(sorted(s) for s in sets)):
        if node_config(combo) in problem.node_constraint:
            return combo
    return None


# -- a concrete t = 1 algorithm: one-round color reduction on rings ----------


@dataclass(frozen=True)
class ColorReductionAlgorithm:
    """The classical 1-round (c -> c-1) color reduction on rings.

    Input: a proper ``c``-coloring (c >= 4).  Nodes of the top color class
    recolor to the smallest color unused by their neighbors (top-class nodes
    are never adjacent, so this is a proper coloring with ``c - 1`` colors,
    indeed with max(3, c-1) colors).  Output encoding: the node's color on
    both ports, per the Section 4.5 problem encoding.
    """

    num_colors: int
    radius: int = 1

    def outputs(self, view: tuple, degree: int) -> tuple[str, ...]:
        _tag, own, _degree, branches = view
        own_color = own[1]
        neighbor_colors = {
            sub[1][1] for _port, _edge, _back, sub in branches if sub is not None
        }
        if own_color < self.num_colors:
            final = own_color
        else:
            final = next(
                c for c in range(1, self.num_colors) if c not in neighbor_colors
            )
        width = len(str(self.num_colors - 1))
        label = f"c{final:0{width}d}"
        return (label,) * degree
