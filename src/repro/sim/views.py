"""Radius-t neighborhoods ``N^t(v)`` and ``N^t(e)`` as canonical view trees.

On graph classes of girth at least ``2t + 2`` the radius-t neighborhood of a
node unfolds into a tree (the paper's footnote 5), so the information a node
can gather in ``t`` rounds is exactly a rooted, port-labelled, input-labelled
tree of depth ``t``.  This module materialises those trees as canonical
nested tuples (hashable; equal iff the neighborhoods are isomorphic in the
paper's sense), implements edge views ``N^t(e) = N^t(u) cap N^t(v)``, and
computes the *extension* decompositions ``Ext^t_v(e)`` and ``Ext^t_e(v)``
used by the algorithm transformations of Theorem 1.

Views deliberately contain no raw node identities -- only inputs (ids,
colors, orientations) and port structure -- because that is all a
port-numbering algorithm may depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.ports import InputLabeling, Node, Port, PortGraph

# A node view of depth t:
#   ("node", own_inputs, degree, ((edge_inputs, back_port, subview), ...per port))
# where subview is a node view of depth t - 1 or None when t == 0.
View = tuple


def _own_inputs(inputs: InputLabeling, v: Node) -> tuple:
    return (
        inputs.ids.get(v),
        inputs.node_color.get(v),
    )


def _edge_inputs(pg: PortGraph, inputs: InputLabeling, v: Node, port: Port) -> tuple:
    return (
        inputs.orientation_at(pg, v, port),
        inputs.edge_color_at(pg, v, port),
    )


def node_view(
    pg: PortGraph,
    inputs: InputLabeling,
    v: Node,
    t: int,
    exclude_port: Port | None = None,
) -> View:
    """The canonical radius-``t`` view of ``v``.

    ``exclude_port`` omits one branch -- used internally to unfold the tree
    (children never look back through their parent edge) and externally to
    build edge views.  Requires girth > 2t for the tree unfolding to be
    faithful; the callers in this library always arrange that.
    """
    branches = []
    for port in range(pg.degree(v)):
        if port == exclude_port:
            continue
        edge_info = _edge_inputs(pg, inputs, v, port)
        if t <= 0:
            # Zero remaining rounds: the neighbor is not visited, so neither
            # its port for the connecting edge (the back port) nor anything
            # beyond is visible -- only the local edge inputs.
            branches.append((port, edge_info, None, None))
            continue
        u = pg.neighbor(v, port)
        back_port = pg.port_toward(u, v)
        subview = node_view(pg, inputs, u, t - 1, exclude_port=back_port)
        branches.append((port, edge_info, back_port, subview))
    return ("node", _own_inputs(inputs, v), pg.degree(v), tuple(branches))


def full_node_view(pg: PortGraph, inputs: InputLabeling, v: Node, t: int) -> View:
    """The radius-``t`` view with all branches (what ``t`` rounds gather).

    At ``t = 0`` a node still sees its own inputs, its degree and the input
    labels on its incident half-edges (one label per port, per Section 3).
    """
    return node_view(pg, inputs, v, t)


def edge_view(
    pg: PortGraph, inputs: InputLabeling, u: Node, v: Node, t: int
) -> View:
    """The radius-``t`` view ``N^t(e)`` of the edge ``e = {u, v}``.

    Per Section 3 this is the information both endpoints can gather in ``t``
    rounds: the edge itself plus, from each endpoint, everything at distance
    ``t - 1`` on its own side.  Canonicalised so the two endpoint roles are
    ordered by their (port, subview) encoding -- the encoding of an
    unordered edge.
    """
    port_uv = pg.port_toward(u, v)
    port_vu = pg.port_toward(v, u)
    edge_info = _edge_inputs(pg, inputs, u, port_uv)
    side_u = (port_uv, node_view(pg, inputs, u, t - 1, exclude_port=port_uv))
    side_v = (port_vu, node_view(pg, inputs, v, t - 1, exclude_port=port_vu))
    oriented = inputs.orientation_at(pg, u, port_uv)
    if oriented == "out":
        sides = (side_u, side_v)
    elif oriented == "in":
        sides = (side_v, side_u)
    else:
        sides = tuple(sorted((side_u, side_v), key=repr))
    return ("edge", edge_info, sides)


@dataclass(frozen=True)
class EdgeViewSides:
    """The two directed readings of an edge view (who is 'me')."""

    view: View
    my_port: Port
    my_side_view: View
    other_port: Port
    other_side_view: View


def edge_view_from(
    pg: PortGraph, inputs: InputLabeling, v: Node, port: Port, t: int
) -> EdgeViewSides:
    """``N^t(e)`` for the edge at ``(v, port)``, remembering which side is ``v``."""
    u = pg.neighbor(v, port)
    back = pg.port_toward(u, v)
    return EdgeViewSides(
        view=edge_view(pg, inputs, v, u, t),
        my_port=port,
        my_side_view=node_view(pg, inputs, v, t - 1, exclude_port=port),
        other_port=back,
        other_side_view=node_view(pg, inputs, u, t - 1, exclude_port=back),
    )


def relabel_ids_by_rank(view: View) -> View:
    """Replace identifier values in a view by their ranks (order-invariance).

    Two views agree after this transformation iff an order-invariant
    algorithm (Section 4.3) must answer them identically.
    """
    ids: list[int] = []

    def collect(v: View) -> None:
        if v is None:
            return
        kind = v[0]
        if kind == "node":
            _tag, own, _degree, branches = v
            if own[0] is not None:
                ids.append(own[0])
            for _port, _edge_info, _back, sub in branches:
                collect(sub)
        elif kind == "edge":
            _tag, _edge_info, sides = v
            for _port, side in sides:
                collect(side)

    collect(view)
    rank = {value: index for index, value in enumerate(sorted(set(ids)))}

    def rewrite(v: View) -> View:
        if v is None:
            return None
        kind = v[0]
        if kind == "node":
            _tag, own, degree, branches = v
            new_own = (rank.get(own[0]) if own[0] is not None else None, own[1])
            new_branches = tuple(
                (port, edge_info, back, rewrite(sub))
                for port, edge_info, back, sub in branches
            )
            return ("node", new_own, degree, new_branches)
        _tag, edge_info, sides = v
        return ("edge", edge_info, tuple((port, rewrite(side)) for port, side in sides))

    return rewrite(view)
