"""The simulation substrate: port-numbered graphs, views, executors, verifiers.

This package makes the paper's model (Section 3) executable:

* :mod:`repro.sim.graphs` -- generators (rings, trees, cages, high-girth);
* :mod:`repro.sim.ports` -- the port numbering model and input labelings;
* :mod:`repro.sim.views` -- radius-t neighborhoods as canonical trees;
* :mod:`repro.sim.simulator` -- view-based and message-passing executors;
* :mod:`repro.sim.verifier` -- locally checkable output verification;
* :mod:`repro.sim.independence` -- executable t-independence checks;
* :mod:`repro.sim.speedup_exec` -- Theorem 1 run on real graph classes;
* :mod:`repro.sim.reconstruct` -- decode concrete ``Pi_1`` solutions back
  into ``Pi`` solutions (the executable (2) => (1) direction);
* :mod:`repro.sim.algorithms` -- Cole-Vishkin, Linial, weak 2-coloring, and
  centralized reference solvers.
"""

from repro.sim.graphs import (
    cage,
    complete_regular_tree,
    girth,
    heawood,
    mcgee,
    odd_regular_graph,
    path,
    petersen,
    random_regular_with_girth,
    ring,
    torus_grid,
    tutte_coxeter,
)
from repro.sim.independence import IndependenceReport, check_t_independence
from repro.sim.ports import (
    InputLabeling,
    PortGraph,
    assign_unique_ids,
    greedy_edge_coloring,
    greedy_node_coloring,
    id_orientation,
    random_orientation,
)
from repro.sim.reconstruct import reconstruct_original_outputs
from repro.sim.simulator import (
    FunctionAlgorithm,
    GatherProtocol,
    run_message_passing,
    run_view_algorithm,
)
from repro.sim.speedup_exec import (
    ColoredRingClass,
    ColorReductionAlgorithm,
    SpeedupExecution,
    TheoremOneReport,
)
from repro.sim.verifier import (
    ConstraintViolation,
    solves,
    verify_matching,
    verify_mis,
    verify_outputs,
    verify_proper_coloring,
    verify_sinkless_orientation,
    verify_superweak_coloring,
    verify_weak_coloring,
)
from repro.sim.views import (
    edge_view,
    edge_view_from,
    full_node_view,
    node_view,
    relabel_ids_by_rank,
)

__all__ = [
    "ColorReductionAlgorithm",
    "ColoredRingClass",
    "ConstraintViolation",
    "FunctionAlgorithm",
    "GatherProtocol",
    "IndependenceReport",
    "InputLabeling",
    "PortGraph",
    "SpeedupExecution",
    "TheoremOneReport",
    "assign_unique_ids",
    "cage",
    "check_t_independence",
    "complete_regular_tree",
    "edge_view",
    "edge_view_from",
    "full_node_view",
    "girth",
    "greedy_edge_coloring",
    "greedy_node_coloring",
    "heawood",
    "id_orientation",
    "mcgee",
    "node_view",
    "odd_regular_graph",
    "path",
    "petersen",
    "random_orientation",
    "random_regular_with_girth",
    "reconstruct_original_outputs",
    "relabel_ids_by_rank",
    "ring",
    "run_message_passing",
    "run_view_algorithm",
    "solves",
    "torus_grid",
    "tutte_coxeter",
    "verify_matching",
    "verify_mis",
    "verify_outputs",
    "verify_proper_coloring",
    "verify_sinkless_orientation",
    "verify_superweak_coloring",
    "verify_weak_coloring",
]
