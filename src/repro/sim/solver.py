"""A centralized constraint solver: find *some* valid output on a given graph.

Round elimination reasons about problems abstractly; the simulation layer
sometimes needs a concrete witness solution on a concrete graph -- e.g. a
valid ``Pi'_1`` output to feed the Lemma 3 transformation, or evidence that
a derived problem is satisfiable on a given instance at all.  This is a
plain backtracking search over nodes: each node picks an allowed
configuration and an assignment of its labels to ports, pruned against the
edge constraint toward already-assigned neighbors.

This solver is intentionally centralized and exhaustive; it is a test/demo
utility, not a distributed algorithm.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.problem import Problem
from repro.sim.ports import Node, Port, PortGraph

Outputs = dict[tuple[Node, Port], str]


class SolverBudgetExceeded(RuntimeError):
    """Raised when the backtracking budget runs out before a decision."""


def solve_problem_on_graph(
    problem: Problem, pg: PortGraph, budget: int = 2_000_000
) -> Outputs | None:
    """Find a correct output assignment on ``B(G)``, or prove none exists.

    Returns None when the instance is unsatisfiable.  Raises
    :class:`SolverBudgetExceeded` if the search exceeds ``budget`` extension
    steps (so callers can distinguish "no" from "gave up").
    """
    # BFS order from an arbitrary root: every node after the first has an
    # already-assigned neighbor, so the edge constraint prunes immediately.
    all_nodes = sorted(pg.nodes())
    seen: set[Node] = set()
    nodes: list[Node] = []
    for root in all_nodes:
        if root in seen:
            continue
        seen.add(root)
        queue = [root]
        while queue:
            current = queue.pop(0)
            nodes.append(current)
            for port in range(pg.degree(current)):
                neighbor = pg.neighbor(current, port)
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    # Precompute, per degree, the distinct port assignments of each allowed
    # configuration (permutations of a multiset, deduplicated).
    assignments_by_degree: dict[int, list[tuple[str, ...]]] = {}
    for degree in {pg.degree(v) for v in nodes}:
        options: set[tuple[str, ...]] = set()
        for config in problem.node_constraint:
            if len(config) == degree:
                options.update(permutations(config))
        assignments_by_degree[degree] = sorted(options)

    outputs: Outputs = {}
    assigned: set[Node] = set()
    steps = 0

    def consistent(v: Node, assignment: tuple[str, ...]) -> bool:
        for port, label in enumerate(assignment):
            u = pg.neighbor(v, port)
            if u in assigned:
                other = outputs[(u, pg.port_toward(u, v))]
                if not problem.allows_edge(label, other):
                    return False
        return True

    def backtrack(index: int) -> bool:
        nonlocal steps
        if index == len(nodes):
            return True
        v = nodes[index]
        for assignment in assignments_by_degree[pg.degree(v)]:
            steps += 1
            if steps > budget:
                raise SolverBudgetExceeded(
                    f"solver exceeded {budget} steps on {problem.name}"
                )
            if not consistent(v, assignment):
                continue
            for port, label in enumerate(assignment):
                outputs[(v, port)] = label
            assigned.add(v)
            if backtrack(index + 1):
                return True
            assigned.discard(v)
            for port in range(pg.degree(v)):
                del outputs[(v, port)]
        return False

    if backtrack(0):
        return dict(outputs)
    return None
