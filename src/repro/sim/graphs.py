"""Graph generators for the simulation substrate.

The speedup theorem quantifies over graph classes of girth at least
``2t + 2``.  The paper leans on Bollobas' (non-constructive) existence of
high-girth regular graphs; for the executable substrate we provide the
constructive pieces that matter at simulation scale:

* rings and paths (girth = n; the color-reduction experiments live here);
* complete regular trees (infinite girth locally);
* the classical small cages for Delta = 3 (Petersen, Heawood, McGee,
  Tutte-Coxeter: girths 5-8);
* random regular graphs with rejection sampling on girth;
* torus grids.

All generators return :class:`networkx.Graph` objects with nodes relabelled
to ``0..n-1``; the port-numbering wrapper lives in :mod:`repro.sim.ports`.
"""

from __future__ import annotations

import random

import networkx as nx


def ring(n: int) -> nx.Graph:
    """The cycle on ``n >= 3`` nodes (2-regular, girth ``n``)."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    return nx.cycle_graph(n)


def path(n: int) -> nx.Graph:
    """The path on ``n >= 2`` nodes (acyclic: infinite girth)."""
    if n < 2:
        raise ValueError("a path needs at least 2 nodes")
    return nx.path_graph(n)


def complete_regular_tree(delta: int, depth: int) -> nx.Graph:
    """A tree whose internal nodes have degree ``delta``, to the given depth.

    The root has ``delta`` children; every other internal node has
    ``delta - 1`` children; leaves sit at distance ``depth`` from the root.
    """
    if delta < 2:
        raise ValueError("degree must be at least 2")
    graph = nx.Graph()
    graph.add_node(0)
    next_id = 1
    frontier = [0]
    for level in range(depth):
        new_frontier = []
        for node in frontier:
            fanout = delta if level == 0 else delta - 1
            for _ in range(fanout):
                graph.add_edge(node, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return graph


def petersen() -> nx.Graph:
    """The Petersen graph: the (3, 5)-cage (3-regular, girth 5, n=10)."""
    return nx.petersen_graph()

def heawood() -> nx.Graph:
    """The Heawood graph: the (3, 6)-cage (3-regular, girth 6, n=14)."""
    return nx.heawood_graph()


def mcgee() -> nx.Graph:
    """The McGee graph: the (3, 7)-cage (3-regular, girth 7, n=24)."""
    edges = []
    n = 24
    for i in range(n):
        edges.append((i, (i + 1) % n))  # outer cycle
    # Chords of the standard McGee construction: i -> i + 12 for i = 0 mod 3,
    # i -> i + 7 for i = 1 mod 3, i -> i - 7 (i.e. +17) for i = 2 mod 3.
    for i in range(0, n, 3):
        edges.append((i, (i + 12) % n))
    for i in range(1, n, 3):
        edges.append((i, (i + 7) % n))
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return graph


def tutte_coxeter() -> nx.Graph:
    """The Tutte-Coxeter (Levi) graph: the (3, 8)-cage (3-regular, girth 8, n=30)."""
    return nx.LCF_graph(30, [-13, -9, 7, -7, 9, 13], 5)


def cage(delta: int, girth: int) -> nx.Graph:
    """A known (delta, girth)-cage, when this library ships one."""
    known = {
        (3, 5): petersen,
        (3, 6): heawood,
        (3, 7): mcgee,
        (3, 8): tutte_coxeter,
    }
    if (delta, girth) not in known:
        raise KeyError(f"no cage for (delta={delta}, girth={girth}) is bundled")
    return known[(delta, girth)]()


def torus_grid(rows: int, cols: int) -> nx.Graph:
    """The ``rows x cols`` torus (4-regular when both dimensions >= 3)."""
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            graph.add_edge(node, r * cols + (c + 1) % cols)
            graph.add_edge(node, ((r + 1) % rows) * cols + c)
    return graph


def girth(graph: nx.Graph) -> float:
    """The length of a shortest cycle (``inf`` for forests).

    BFS from every node; a cross/back edge at depths ``d1, d2`` witnesses a
    cycle of length ``d1 + d2 + 1``.  Exact, O(n * m), fine at our sizes.
    """
    best = float("inf")
    for source in graph.nodes:
        depth = {source: 0}
        parent = {source: None}
        queue = [source]
        while queue:
            current = queue.pop(0)
            for neighbor in graph.neighbors(current):
                if neighbor not in depth:
                    depth[neighbor] = depth[current] + 1
                    parent[neighbor] = current
                    queue.append(neighbor)
                elif parent[current] != neighbor:
                    best = min(best, depth[current] + depth[neighbor] + 1)
        if best == 3:
            return 3
    return best


def random_regular_with_girth(
    delta: int, n: int, min_girth: int, seed: int, max_tries: int = 500
) -> nx.Graph:
    """Rejection-sample a connected ``delta``-regular graph of girth >= ``min_girth``.

    This replaces the paper's non-constructive existence argument at
    simulation scale; raises RuntimeError when the sampler gives up (small
    ``n`` simply cannot reach large girth).
    """
    rng = random.Random(seed)
    for _ in range(max_tries):
        graph = nx.random_regular_graph(delta, n, seed=rng.randrange(2**31))
        if not nx.is_connected(graph):
            continue
        if girth(graph) >= min_girth:
            return nx.convert_node_labels_to_integers(graph)
    raise RuntimeError(
        f"could not sample a {delta}-regular graph on {n} nodes with girth "
        f">= {min_girth} in {max_tries} tries"
    )


def odd_regular_graph(delta: int, n: int, seed: int) -> nx.Graph:
    """A connected ``delta``-regular graph with odd ``delta`` (weak 2-coloring demos)."""
    if delta % 2 == 0:
        raise ValueError("degree must be odd")
    if (delta * n) % 2 != 0:
        raise ValueError("delta * n must be even for a regular graph")
    rng = random.Random(seed)
    for _ in range(200):
        graph = nx.random_regular_graph(delta, n, seed=rng.randrange(2**31))
        if nx.is_connected(graph):
            return nx.convert_node_labels_to_integers(graph)
    raise RuntimeError("could not sample a connected regular graph")
