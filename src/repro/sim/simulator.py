"""Synchronous executors for the port numbering / LOCAL model.

Two equivalent execution styles are provided:

* **View-based** (:func:`run_view_algorithm`): the paper's observation that a
  ``t``-round algorithm *is* a function from radius-``t`` views to output
  tuples.  An algorithm is any object with a ``radius`` attribute and an
  ``outputs(view, degree)`` method returning one label per port.

* **Message-passing** (:func:`run_message_passing`): a literal synchronous
  executor (send to all ports, receive from all ports, local computation)
  for algorithms written as communicating state machines.  The full
  information protocol :class:`GatherProtocol` shows the two styles agree:
  after ``t`` rounds its state determines the radius-``t`` view.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol

from repro.sim.ports import InputLabeling, Node, Port, PortGraph
from repro.sim.views import View, full_node_view

Outputs = dict[tuple[Node, Port], str]


class ViewAlgorithm(Protocol):
    """A distributed algorithm in functional form (Section 3's normal form)."""

    radius: int

    def outputs(self, view: View, degree: int) -> tuple[str, ...]:
        """Map a radius-``radius`` view to one output label per port."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FunctionAlgorithm:
    """Wrap a plain function as a :class:`ViewAlgorithm`."""

    radius: int
    function: Callable[[View, int], tuple[str, ...]]

    def outputs(self, view: View, degree: int) -> tuple[str, ...]:
        return self.function(view, degree)


def run_view_algorithm(
    pg: PortGraph, inputs: InputLabeling, algorithm: ViewAlgorithm
) -> Outputs:
    """Execute a view-based algorithm on every node; collect outputs on B(G)."""
    outputs: Outputs = {}
    for v in pg.nodes():
        view = full_node_view(pg, inputs, v, algorithm.radius)
        labels = algorithm.outputs(view, pg.degree(v))
        if len(labels) != pg.degree(v):
            raise ValueError(
                f"algorithm returned {len(labels)} labels for degree {pg.degree(v)}"
            )
        for port, label in enumerate(labels):
            outputs[(v, port)] = label
    return outputs


class MessageAlgorithm(Protocol):
    """A literal synchronous message-passing protocol."""

    rounds: int

    def initial_state(self, pg: PortGraph, inputs: InputLabeling, v: Node) -> object:
        ...  # pragma: no cover - protocol

    def send(self, state: object, round_index: int, port: Port) -> object:
        ...  # pragma: no cover - protocol

    def receive(
        self, state: object, round_index: int, messages: dict[Port, object]
    ) -> object:
        ...  # pragma: no cover - protocol

    def outputs(self, state: object, degree: int) -> tuple[str, ...]:
        ...  # pragma: no cover - protocol


def run_message_passing(
    pg: PortGraph, inputs: InputLabeling, protocol: MessageAlgorithm
) -> Outputs:
    """Execute a message-passing protocol synchronously, round by round."""
    states = {v: protocol.initial_state(pg, inputs, v) for v in pg.nodes()}
    for round_index in range(protocol.rounds):
        inboxes: dict[Node, dict[Port, object]] = {v: {} for v in pg.nodes()}
        for v in pg.nodes():
            for port in range(pg.degree(v)):
                message = protocol.send(states[v], round_index, port)
                u = pg.neighbor(v, port)
                inboxes[u][pg.port_toward(u, v)] = message
        for v in pg.nodes():
            states[v] = protocol.receive(states[v], round_index, inboxes[v])
    outputs: Outputs = {}
    for v in pg.nodes():
        labels = protocol.outputs(states[v], pg.degree(v))
        for port, label in enumerate(labels):
            outputs[(v, port)] = label
    return outputs


@dataclass
class GatherProtocol:
    """Full-information protocol: after ``t`` rounds each node knows ``N^t(v)``.

    The state is the collected view; ``outputs`` delegates to a view
    function.  Used to validate that message passing and the view shortcut
    produce identical results (the classical equivalence the paper's model
    section takes for granted).
    """

    rounds: int
    view_function: Callable[[View, int], tuple[str, ...]]

    def initial_state(self, pg: PortGraph, inputs: InputLabeling, v: Node) -> object:
        return full_node_view(pg, inputs, v, 0)

    def send(self, state: object, round_index: int, port: Port) -> object:
        # Tag the message with the port it leaves on: the receiver learns the
        # sender's back port this way (and only this way -- a 0-round view
        # deliberately does not contain it).
        return (port, state)

    def receive(
        self, state: object, round_index: int, messages: dict[Port, object]
    ) -> object:
        # Reassemble a deeper view: replace each branch's subview with the
        # (round_index)-deep view just received from that port.
        tag, own, degree, branches = state  # type: ignore[misc]
        new_branches = []
        for port, edge_info, _old_back, _old_sub in branches:
            back_port, neighbor_view = messages[port]
            new_branches.append(
                (port, edge_info, back_port, _strip_branch(neighbor_view, back_port))
            )
        return (tag, own, degree, tuple(new_branches))

    def outputs(self, state: object, degree: int) -> tuple[str, ...]:
        return self.view_function(state, degree)


def _strip_branch(view: View, exclude_port: Port) -> View:
    """Drop the branch through ``exclude_port`` (the child's view of its parent)."""
    tag, own, degree, branches = view
    kept = tuple(branch for branch in branches if branch[0] != exclude_port)
    return (tag, own, degree, kept)
