"""Linial-style one-shot color reduction via polynomials over finite fields.

Linial's classical construction reduces an ``m``-coloring to an
``O(Delta^2 log^2 m)``-coloring in a *single* round, and iterating it gives
an ``O(Delta^2)``-ish coloring in ``log* m + O(1)`` rounds.  Colors are read
as polynomials of degree ``d`` over ``F_p`` (their base-``p`` digits are the
coefficients); a node picks an evaluation point ``x`` where its polynomial
differs from every neighbor's -- possible whenever ``p > d * Delta`` because
two distinct degree-``d`` polynomials agree on at most ``d`` points -- and
its new color is the pair ``(x, f(x))`` with at most ``p^2`` values.

The weak 2-coloring algorithm uses this to build its processing schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.sim.ports import Node


def smallest_prime_above(n: int) -> int:
    """The smallest prime strictly greater than ``n`` (trial division)."""
    candidate = max(n + 1, 2)
    while True:
        if all(candidate % d for d in range(2, int(candidate**0.5) + 1)):
            return candidate
        candidate += 1


def _digits(value: int, base: int, width: int) -> list[int]:
    out = []
    for _ in range(width):
        out.append(value % base)
        value //= base
    return out


def _evaluate(coefficients: list[int], x: int, p: int) -> int:
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % p
    return result


@dataclass
class LinialRun:
    """Colors after the reduction and the number of (simulated) rounds."""

    colors: dict[Node, int]
    rounds: int
    palette_size: int


def linial_step(
    graph: nx.Graph, colors: dict[Node, int], num_colors: int
) -> tuple[dict[Node, int], int]:
    """One Linial round: ``num_colors`` colors down to at most ``p^2``.

    Returns the new coloring and its palette size ``p^2``.  Requires the
    input coloring to be proper.
    """
    delta = max((graph.degree(v) for v in graph.nodes), default=1)
    # Degree d polynomials need p^(d+1) >= num_colors and p > d * delta.
    degree = 1
    while True:
        p = smallest_prime_above(degree * delta)
        if p ** (degree + 1) >= num_colors:
            break
        degree += 1
        if degree > 64:  # pragma: no cover - defensive
            raise RuntimeError("no workable polynomial degree found")
    new_colors = {}
    for v in graph.nodes:
        own = _digits(colors[v], p, degree + 1)
        forbidden: set[int] = set()
        for u in graph.neighbors(v):
            other = _digits(colors[u], p, degree + 1)
            for x in range(p):
                if _evaluate(own, x, p) == _evaluate(other, x, p):
                    forbidden.add(x)
        x = next(value for value in range(p) if value not in forbidden)
        new_colors[v] = x * p + _evaluate(own, x, p)
    return new_colors, p * p


def linial_coloring(graph: nx.Graph, ids: dict[Node, int]) -> LinialRun:
    """Iterate Linial steps from the identifier coloring to a fixed point.

    Stops when a step no longer shrinks the palette; the result is a proper
    coloring with ``O(Delta^2 log^2 Delta)`` colors after ``O(log* id_space)``
    rounds.
    """
    colors = dict(ids)
    palette = max(colors.values()) + 1
    rounds = 0
    while True:
        new_colors, new_palette = linial_step(graph, colors, palette)
        rounds += 1
        if new_palette >= palette:
            # The step no longer helps; keep the previous coloring.
            return LinialRun(colors=colors, rounds=rounds - 1, palette_size=palette)
        colors, palette = new_colors, new_palette
