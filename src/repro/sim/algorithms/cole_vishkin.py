"""Cole-Vishkin color reduction on directed rings and pseudoforests.

Section 4.5 shows the speedup theorem semi-automatically reproduces the
O(log* n) 3-coloring upper bound on rings [Cole-Vishkin'86, Goldberg et
al.'87].  This module implements the classical algorithm itself so the
simulation layer has the genuine upper bound to run and measure:

* one *bit trick* round maps a proper coloring along out-pointers to
  ``2 * i + bit`` where ``i`` is the lowest bit position where a node's color
  differs from its pointed-to neighbor's -- colors drop from ``m`` to
  ``2 * ceil(log2 m)``, reaching at most 6 colors in O(log* m) rounds;
* three *shift-down + remove class* rounds bring 6 colors to 3.

Everything here works on any *functional* pointer structure (each node one
out-pointer): directed rings and the max-ID pseudoforests used by the weak
2-coloring algorithm alike.  Properness is maintained along pointer edges
(``c(v) != c(M(v))``), which is precisely what those applications need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.ports import Node


@dataclass
class PointerColoringRun:
    """Result of running the reduction: final colors and the rounds consumed."""

    colors: dict[Node, int]
    rounds: int


def _lowest_differing_bit(a: int, b: int) -> int:
    if a == b:
        raise ValueError("colors along a pointer edge must differ")
    return ((a ^ b) & -(a ^ b)).bit_length() - 1


def bit_trick_step(colors: dict[Node, int], pointer: dict[Node, Node]) -> dict[Node, int]:
    """One Cole-Vishkin round along the pointer ``M``.

    Requires ``colors[v] != colors[pointer[v]]`` for all ``v`` and preserves
    that invariant (the classical argument: if the new colors of ``v`` and
    ``M(v)`` agreed, they would have chosen the same bit position with the
    same bit value, contradicting the position's definition at ``v``).
    """
    new_colors = {}
    for v, current in colors.items():
        target = colors[pointer[v]]
        position = _lowest_differing_bit(current, target)
        new_colors[v] = 2 * position + ((current >> position) & 1)
    return new_colors


def reduce_to_six(colors: dict[Node, int], pointer: dict[Node, Node]) -> PointerColoringRun:
    """Iterate the bit trick until at most 6 colors remain (O(log* m) rounds)."""
    rounds = 0
    current = dict(colors)
    while max(current.values()) >= 6:
        current = bit_trick_step(current, pointer)
        rounds += 1
        if rounds > 10_000:  # pragma: no cover - defensive
            raise RuntimeError("bit trick failed to converge")
    return PointerColoringRun(colors=current, rounds=rounds)


def shift_down(colors: dict[Node, int], pointer: dict[Node, Node]) -> dict[Node, int]:
    """``c'(v) = c(M(v))``: after this, all in-pointers of a node share one color.

    Properness along pointer edges is preserved: the new pair at ``(v, M(v))``
    is the old pair at ``(M(v), M(M(v)))``.
    """
    return {v: colors[pointer[v]] for v in colors}


def remove_color_class(
    colors: dict[Node, int],
    old_colors: dict[Node, int],
    pointer: dict[Node, Node],
    target: int,
) -> dict[Node, int]:
    """Recolor every node of color ``target`` into ``{0, 1, 2}``.

    Done right after a shift-down: a recoloring node ``v`` avoids its
    pointed-to neighbor's color and its *own pre-shift* color (the common
    color of all nodes pointing at ``v``), so properness along every pointer
    edge survives the simultaneous recoloring.
    """
    new_colors = dict(colors)
    for v, color in colors.items():
        if color != target:
            continue
        forbidden = {colors[pointer[v]], old_colors[v]}
        new_colors[v] = next(c for c in (0, 1, 2) if c not in forbidden)
    return new_colors


def three_color_pointer_structure(
    ids: dict[Node, int], pointer: dict[Node, Node]
) -> PointerColoringRun:
    """Properly 3-color a functional pointer graph along its pointer edges.

    Input: unique identifiers (the initial coloring) and one out-pointer per
    node with ``ids[v] != ids[pointer[v]]``.  Output: colors in ``{0,1,2}``
    with ``c(v) != c(M(v))``, in ``O(log* max_id)`` + 6 rounds.
    """
    run = reduce_to_six(dict(ids), pointer)
    colors = run.colors
    rounds = run.rounds
    for target in (5, 4, 3):
        old = colors
        colors = shift_down(colors, pointer)
        colors = remove_color_class(colors, old, pointer, target)
        rounds += 2
    return PointerColoringRun(colors=colors, rounds=rounds)


def ring_successor_pointers(
    n: int,
) -> dict[Node, Node]:
    """The canonical clockwise pointer structure on the ring ``0..n-1``."""
    return {v: (v + 1) % n for v in range(n)}


def three_color_ring(ids: dict[Node, int], n: int) -> PointerColoringRun:
    """Cole-Vishkin 3-coloring of a consistently oriented ring."""
    return three_color_pointer_structure(ids, ring_successor_pointers(n))
