"""Centralized reference solvers.

These are *not* distributed algorithms; they produce known-correct solutions
used to (a) cross-validate the locally-checkable verifier against the
problem encodings in :mod:`repro.problems` and (b) seed the simulation
examples (e.g. a valid ``Pi'_1`` output for the Lemma 3 transformation).
"""

from __future__ import annotations

import networkx as nx

from repro.sim.ports import Node, PortGraph

Edge = tuple[Node, Node]


def _edge_key(u: Node, v: Node) -> Edge:
    return (u, v) if u <= v else (v, u)


def solve_sinkless_orientation(graph: nx.Graph) -> dict[Edge, tuple[Node, Node]]:
    """Orient the edges of a connected graph with a cycle so no node is a sink.

    Construction: find one cycle, orient it cyclically; orient every other
    node's BFS-parent edge away from the node (toward the cycle); remaining
    edges point toward the smaller endpoint (irrelevant for sinklessness).
    """
    cycle_edges = nx.find_cycle(graph)
    cycle_nodes = [u for u, _v in cycle_edges]
    orientation: dict[Edge, tuple[Node, Node]] = {}
    for u, v in cycle_edges:
        orientation[_edge_key(u, v)] = (u, v)

    # BFS layers away from the cycle; each off-cycle node's first discovered
    # edge points back toward the cycle.
    visited = set(cycle_nodes)
    frontier = list(cycle_nodes)
    while frontier:
        current = frontier.pop(0)
        for neighbor in graph.neighbors(current):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            orientation[_edge_key(neighbor, current)] = (neighbor, current)
            frontier.append(neighbor)

    for u, v in graph.edges:
        key = _edge_key(u, v)
        if key not in orientation:
            orientation[key] = (max(u, v), min(u, v))
    return orientation


def solve_mis(graph: nx.Graph) -> set[Node]:
    """Greedy maximal independent set (by node order)."""
    independent: set[Node] = set()
    blocked: set[Node] = set()
    for v in sorted(graph.nodes):
        if v not in blocked:
            independent.add(v)
            blocked.add(v)
            blocked.update(graph.neighbors(v))
    return independent


def solve_maximal_matching(graph: nx.Graph) -> set[Edge]:
    """Greedy maximal matching (by edge order)."""
    matched_nodes: set[Node] = set()
    matching: set[Edge] = set()
    for u, v in sorted(graph.edges):
        if u not in matched_nodes and v not in matched_nodes:
            matching.add(_edge_key(u, v))
            matched_nodes.update((u, v))
    return matching


def solve_proper_coloring(graph: nx.Graph) -> dict[Node, int]:
    """Greedy (Delta + 1)-coloring, colors numbered from 1."""
    colors: dict[Node, int] = {}
    for v in sorted(graph.nodes):
        used = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 1
        while color in used:
            color += 1
        colors[v] = color
    return colors


def mis_outputs(pg: PortGraph, independent: set[Node]) -> dict[tuple[Node, int], str]:
    """Encode an MIS as outputs of the catalog's pointer encoding."""
    outputs = {}
    for v in pg.nodes():
        if v in independent:
            for port in range(pg.degree(v)):
                outputs[(v, port)] = "I"
        else:
            dominator_port = next(
                port
                for port in range(pg.degree(v))
                if pg.neighbor(v, port) in independent
            )
            for port in range(pg.degree(v)):
                outputs[(v, port)] = "P" if port == dominator_port else "O"
    return outputs


def matching_outputs(
    pg: PortGraph, matching: set[Edge], maximal: bool
) -> dict[tuple[Node, int], str]:
    """Encode a (maximal or perfect) matching in the catalog's label scheme."""
    matched_port: dict[Node, int] = {}
    for u, v in matching:
        matched_port[u] = pg.port_toward(u, v)
        matched_port[v] = pg.port_toward(v, u)
    outputs = {}
    for v in pg.nodes():
        for port in range(pg.degree(v)):
            if v in matched_port:
                outputs[(v, port)] = "M" if port == matched_port[v] else "O"
            else:
                outputs[(v, port)] = "P" if maximal else "O"
    return outputs
