"""Weak 2-coloring in O(log* n + q) rounds -- the upper-bound counterpart.

Theorem 4's lower bound says odd-degree weak 2-coloring needs
Omega(log* Delta) rounds; Naor-Stockmeyer's upper bound achieves O(log* Delta)
via order-invariance (constant-time for fixed Delta).  As documented in
DESIGN.md, this library substitutes a *verified* O(log* n + q)-round
algorithm (q = schedule palette size) exercising the same code path -- enough
to exhibit the matching log* curve shape in experiments; it is also fully
general (no odd-degree assumption), consistent with the known
Omega(log* n) bound for weak 2-coloring on trees [Balliu et al.].

The algorithm:

1. build a proper ``q``-coloring with Linial reduction (O(log* n) rounds);
2. process nodes schedule-wise by color class (``q`` rounds): a node with an
   already-finalized neighbor picks the opposite of one such neighbor (and
   points to it) -- permanently satisfied; a node with none (a *local
   minimum* of the schedule) tentatively takes color 1;
3. one flip round: a local-minimum node whose neighbors all ended with
   color 1 flips to 2.

Correctness of step 3: two schedule-local-minima are never adjacent, so a
flipping node's neighbors keep their colors; and a node that anchored its
choice to some neighbor ``w`` chose the *opposite* color of ``w``, so if
``w`` flips from 1 to 2, only equal-colored (color 1) neighbors are
affected, and they gain a differing neighbor rather than losing one.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.sim.algorithms.linial import linial_coloring
from repro.sim.ports import Node


@dataclass
class WeakTwoColoringRun:
    """Final weak 2-coloring, the witness pointers, and the rounds used."""

    colors: dict[Node, int]
    pointer: dict[Node, Node]
    rounds: int
    schedule_palette: int


def weak_two_coloring(graph: nx.Graph, ids: dict[Node, int]) -> WeakTwoColoringRun:
    """Compute a weak 2-coloring of any graph with minimum degree >= 1.

    ``ids`` must be unique.  The returned ``pointer`` maps every node to a
    neighbor with the opposite final color (the witness that the coloring is
    weak), which is exactly the extra output the pointer version of the
    problem (Section 4.6) asks for.
    """
    if any(graph.degree(v) == 0 for v in graph.nodes):
        raise ValueError("weak coloring needs minimum degree 1")

    schedule = linial_coloring(graph, ids)
    order_of = schedule.colors

    colors: dict[Node, int] = {}
    pointer: dict[Node, Node] = {}
    risky: set[Node] = set()
    # Step 2: q scheduling rounds, one color class at a time.
    for step in sorted(set(order_of.values())):
        for v in graph.nodes:
            if order_of[v] != step:
                continue
            finalized = [u for u in graph.neighbors(v) if u in colors]
            if finalized:
                anchor = min(finalized, key=lambda u: (colors[u], ids[u]))
                colors[v] = 3 - colors[anchor]
                pointer[v] = anchor
            else:
                colors[v] = 1
                risky.add(v)

    # Step 3: the flip round for unlucky schedule-local-minima.
    flips = [
        v
        for v in risky
        if all(colors[u] == 1 for u in graph.neighbors(v))
    ]
    for v in flips:
        colors[v] = 2
    # Fix pointers: every node points at some differing neighbor.
    for v in graph.nodes:
        current = pointer.get(v)
        if current is None or colors[current] == colors[v]:
            witness = next(
                (u for u in graph.neighbors(v) if colors[u] != colors[v]), None
            )
            if witness is None:
                raise AssertionError("weak coloring invariant violated")
            pointer[v] = witness

    rounds = schedule.rounds + schedule.palette_size + 1
    return WeakTwoColoringRun(
        colors=colors,
        pointer=pointer,
        rounds=rounds,
        schedule_palette=schedule.palette_size,
    )


def max_id_pseudoforest(graph: nx.Graph, ids: dict[Node, int]) -> dict[Node, Node]:
    """The classical pointer pseudoforest: each node points at its max-ID neighbor.

    Used by the weak-coloring literature (and our examples) as the
    symmetry-breaking backbone; every pointer target differs in ID, so
    Cole-Vishkin reduction applies along the pointers.
    """
    return {
        v: max(graph.neighbors(v), key=lambda u: ids[u])
        for v in graph.nodes
        if graph.degree(v) > 0
    }
