"""Distributed algorithms (and centralized references) for the simulation layer."""

from repro.sim.algorithms.cole_vishkin import (
    PointerColoringRun,
    bit_trick_step,
    reduce_to_six,
    remove_color_class,
    ring_successor_pointers,
    shift_down,
    three_color_pointer_structure,
    three_color_ring,
)
from repro.sim.algorithms.linial import LinialRun, linial_coloring, linial_step
from repro.sim.algorithms.reference import (
    matching_outputs,
    mis_outputs,
    solve_maximal_matching,
    solve_mis,
    solve_proper_coloring,
    solve_sinkless_orientation,
)
from repro.sim.algorithms.weak2 import (
    WeakTwoColoringRun,
    max_id_pseudoforest,
    weak_two_coloring,
)

__all__ = [
    "LinialRun",
    "PointerColoringRun",
    "WeakTwoColoringRun",
    "bit_trick_step",
    "linial_coloring",
    "linial_step",
    "matching_outputs",
    "max_id_pseudoforest",
    "mis_outputs",
    "reduce_to_six",
    "remove_color_class",
    "ring_successor_pointers",
    "shift_down",
    "solve_maximal_matching",
    "solve_mis",
    "solve_proper_coloring",
    "solve_sinkless_orientation",
    "three_color_pointer_structure",
    "three_color_ring",
    "weak_two_coloring",
]
