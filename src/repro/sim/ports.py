"""The port numbering model (Section 3) as an executable structure.

A :class:`PortGraph` wraps a simple graph with, per node ``v``, an ordering
of its incident edges into ports ``0..d(v)-1`` (the paper numbers from 1;
zero-based indexing is used consistently here).  The half-edge set ``B(G)``
of the paper becomes the set of pairs ``(v, port)``.

Inputs (Sigma-labelings of ``B(G)``) are held in an :class:`InputLabeling`:
edge orientations (visible from both endpoints, as the paper's footnote 7
prescribes), identifiers, node colors and edge colors -- every symmetry
breaking the experiments need.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import networkx as nx

Node = int
Port = int


class PortGraph:
    """A graph with a fixed port numbering.

    ``ports[v]`` lists the neighbors of ``v`` in port order.  Worst-case
    (adversarial) port numberings are modelled by constructing with a
    permuted neighbor order.
    """

    def __init__(self, graph: nx.Graph, neighbor_order: dict[Node, list[Node]] | None = None):
        self._graph = graph
        if neighbor_order is None:
            neighbor_order = {v: sorted(graph.neighbors(v)) for v in graph.nodes}
        self._ports: dict[Node, list[Node]] = {}
        self._port_of: dict[tuple[Node, Node], Port] = {}
        for v in graph.nodes:
            order = neighbor_order[v]
            if sorted(order) != sorted(graph.neighbors(v)):
                raise ValueError(f"port order for node {v} does not list its neighbors")
            self._ports[v] = list(order)
            for port, u in enumerate(order):
                self._port_of[(v, u)] = port

    @staticmethod
    def with_random_ports(graph: nx.Graph, seed: int) -> "PortGraph":
        """A port numbering drawn uniformly at random (adversarial surrogate)."""
        rng = random.Random(seed)
        order = {}
        for v in graph.nodes:
            neighbors = list(graph.neighbors(v))
            rng.shuffle(neighbors)
            order[v] = neighbors
        return PortGraph(graph, order)

    # -- structure ----------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def n(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def delta(self) -> int:
        return max(dict(self._graph.degree).values())

    def nodes(self) -> Iterable[Node]:
        return self._graph.nodes

    def degree(self, v: Node) -> int:
        return self._graph.degree(v)

    def neighbor(self, v: Node, port: Port) -> Node:
        return self._ports[v][port]

    def port_toward(self, v: Node, u: Node) -> Port:
        return self._port_of[(v, u)]

    def b_elements(self) -> Iterator[tuple[Node, Port]]:
        """Iterate the half-edge set B(G) as (node, port) pairs."""
        for v in self._graph.nodes:
            for port in range(self.degree(v)):
                yield (v, port)

    def edges_with_ports(self) -> Iterator[tuple[Node, Port, Node, Port]]:
        """Iterate each edge once as (u, port at u, v, port at v)."""
        for u, v in self._graph.edges:
            yield (u, self.port_toward(u, v), v, self.port_toward(v, u))


def _edge_key(u: Node, v: Node) -> tuple[Node, Node]:
    return (u, v) if u <= v else (v, u)


@dataclass
class InputLabeling:
    """Input labels on ``B(G)``: the symmetry-breaking information of Section 3.

    All fields are optional; each experiment attaches only what its setting
    provides (for example, Theorem 2's setting needs ``orientation``; the
    LOCAL-model experiments also need ``ids``).
    """

    # edge -> (tail, head): the edge is oriented tail -> head.
    orientation: dict[tuple[Node, Node], tuple[Node, Node]] = field(default_factory=dict)
    ids: dict[Node, int] = field(default_factory=dict)
    node_color: dict[Node, int] = field(default_factory=dict)
    edge_color: dict[tuple[Node, Node], int] = field(default_factory=dict)

    def orientation_at(self, pg: PortGraph, v: Node, port: Port) -> str | None:
        """"out" if the port's edge leaves ``v``, "in" if it enters, None if unset."""
        u = pg.neighbor(v, port)
        key = _edge_key(u, v)
        if key not in self.orientation:
            return None
        tail, _head = self.orientation[key]
        return "out" if tail == v else "in"

    def edge_color_at(self, pg: PortGraph, v: Node, port: Port) -> int | None:
        u = pg.neighbor(v, port)
        return self.edge_color.get(_edge_key(u, v))


def random_orientation(graph: nx.Graph, seed: int) -> dict[tuple[Node, Node], tuple[Node, Node]]:
    """Orient every edge by a fair coin (the adversary's generic orientation)."""
    rng = random.Random(seed)
    orientation = {}
    for u, v in graph.edges:
        key = _edge_key(u, v)
        orientation[key] = (u, v) if rng.random() < 0.5 else (v, u)
    return orientation


def id_orientation(graph: nx.Graph, ids: dict[Node, int]) -> dict[tuple[Node, Node], tuple[Node, Node]]:
    """Orient each edge toward the endpoint with the larger identifier."""
    orientation = {}
    for u, v in graph.edges:
        key = _edge_key(u, v)
        orientation[key] = (u, v) if ids[u] < ids[v] else (v, u)
    return orientation


def assign_unique_ids(graph: nx.Graph, seed: int, space: int | None = None) -> dict[Node, int]:
    """Assign unique identifiers from ``{1..space}`` (default: ``n**2``)."""
    rng = random.Random(seed)
    n = graph.number_of_nodes()
    if space is None:
        space = max(n * n, 16)
    if space < n:
        raise ValueError("identifier space smaller than the node count")
    values = rng.sample(range(1, space + 1), n)
    return {v: values[i] for i, v in enumerate(sorted(graph.nodes))}


def greedy_edge_coloring(graph: nx.Graph) -> dict[tuple[Node, Node], int]:
    """A proper edge coloring with at most ``2 * Delta - 1`` colors (greedy).

    Good enough as input labeling; the speedup experiments never rely on the
    color count being exactly Delta.
    """
    coloring: dict[tuple[Node, Node], int] = {}
    for u, v in sorted(graph.edges):
        used = {
            coloring[_edge_key(a, b)]
            for node in (u, v)
            for a, b in graph.edges(node)
            if _edge_key(a, b) in coloring
        }
        color = 0
        while color in used:
            color += 1
        coloring[_edge_key(u, v)] = color
    return coloring


def greedy_node_coloring(graph: nx.Graph) -> dict[Node, int]:
    """A proper node coloring with at most ``Delta + 1`` colors (greedy)."""
    coloring: dict[Node, int] = {}
    for v in sorted(graph.nodes):
        used = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        color = 0
        while color in used:
            color += 1
        coloring[v] = color
    return coloring
