"""Decode a concrete ``Pi_1`` solution back into a ``Pi`` solution.

The (2) => (1) direction of Theorem 1 is constructive: from any valid
``Pi_1`` output on a graph, the existential properties of the derived
constraints let every edge pick a *universal pair* of half-step labels
(Property 3) and then every node pick an allowed original configuration
from the chosen sets (Properties 4 then 2).  :mod:`repro.sim.speedup_exec`
executes that argument for outputs produced by an actual algorithm; this
module runs the same decoding for an *arbitrary* ``Pi_1`` assignment --
e.g. one found by the centralized solver -- which is what the
cross-validation tests use to check the simulation argument end-to-end:
``solve Pi_1 -> reconstruct -> verify Pi``.

The derived labels are decoded through the provenance maps carried by
:class:`~repro.core.speedup.SpeedupResult` (``full_meaning`` /
``half_meaning``), so this works across engine cache hits and label
renamings.
"""

from __future__ import annotations

from repro.core.problem import Label
from repro.core.speedup import SpeedupResult
from repro.sim.ports import Node, Port, PortGraph
from repro.sim.speedup_exec import _first_choice_in, _first_universal_pair

Outputs = dict[tuple[Node, Port], str]


def reconstruct_original_outputs(
    result: SpeedupResult, pg: PortGraph, outputs: Outputs
) -> Outputs | None:
    """Turn a valid ``Pi_1`` assignment on ``B(G)`` into a ``Pi`` assignment.

    ``outputs`` maps each ``(node, port)`` to a label of ``result.full``.
    Returns the decoded assignment over ``result.original``'s labels, or
    None if some existential choice fails -- which certifies that
    ``outputs`` violated the derived constraints (the converse direction of
    the theorem), since for constraint-satisfying inputs the choices always
    exist.
    """
    problem = result.original
    decoded: dict[tuple[Node, Port], frozenset[frozenset[Label]]] = {
        key: result.full_label_as_original_sets(label)
        for key, label in outputs.items()
    }
    # Property 3: on each edge pick the canonically first universal pair.
    half_choice: dict[tuple[Node, Port], frozenset[Label]] = {}
    for u, pu, v, pv in pg.edges_with_ports():
        pair = _first_universal_pair(problem, decoded[(u, pu)], decoded[(v, pv)])
        if pair is None:
            return None
        half_choice[(u, pu)], half_choice[(v, pv)] = pair
    # Properties 4 + 2: per node pick the canonically first realizable choice.
    reconstructed: Outputs = {}
    for v in pg.nodes():
        sets = [half_choice[(v, port)] for port in range(pg.degree(v))]
        chosen = _first_choice_in(problem, sets)
        if chosen is None:
            return None
        for port, label in enumerate(chosen):
            reconstructed[(v, port)] = label
    return reconstructed
