"""Executable t-independence checks on finite graph classes (Section 3, Figure 1).

t-independence demands that, once a radius-(t-1) node view (resp. radius-t
edge view) is fixed, the sets of possible extensions along distinct
edges (resp. the two endpoints) are *independent*: every combination of
individually-possible extensions is realised by some graph of the class.

On a finite, exhaustively enumerable class the definition can be checked
literally: scan every instance, group the observed extension combinations by
base view, and compare against the cartesian product of the per-direction
extension sets.  The experiments use this to demonstrate Figure 1's point:
orientation/coloring-labelled ring classes are t-independent, while the same
class with globally *unique identifiers* is not (an identifier seen along one
extension excludes it from the others).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass
from itertools import product

from repro.sim.ports import InputLabeling, PortGraph
from repro.sim.views import edge_view, node_view

Instance = tuple[PortGraph, InputLabeling]


@dataclass(frozen=True)
class IndependenceReport:
    """Outcome of the finite-class t-independence check."""

    t: int
    node_side_independent: bool
    edge_side_independent: bool
    node_views_checked: int
    edge_views_checked: int

    @property
    def independent(self) -> bool:
        return self.node_side_independent and self.edge_side_independent


def check_t_independence(instances: Iterable[Instance], t: int) -> IndependenceReport:
    """Check both halves of Definition (Section 3) by exhaustive scan.

    Extensions are encoded as the deeper branch views they reveal: the
    extension of ``N^{t-1}(v)`` along port ``p`` is the depth-``t`` branch at
    ``p``; the extension of ``N^t(e)`` along endpoint ``v`` is ``v``'s
    depth-``t`` off-edge view.  Combination-independence in this encoding is
    equivalent to the paper's formulation.
    """
    node_combos: dict[tuple, set[tuple]] = defaultdict(set)
    edge_combos: dict[tuple, set[tuple]] = defaultdict(set)

    for pg, inputs in instances:
        for v in pg.nodes():
            base = node_view(pg, inputs, v, t - 1)
            extension = tuple(
                _branch_extension(pg, inputs, v, port, t)
                for port in range(pg.degree(v))
            )
            node_combos[base].add(extension)
        for u, pu, v, pv in pg.edges_with_ports():
            base = edge_view(pg, inputs, u, v, t)
            # Identify the endpoint roles by their *base* sides, the
            # information inside N^t(e); the deeper extensions must then be
            # paired role-by-role.  When the two base sides coincide (a
            # symmetric edge view) the roles are interchangeable and the
            # combination is an unordered pair.
            base_u = (pu, node_view(pg, inputs, u, t - 1, exclude_port=pu))
            base_v = (pv, node_view(pg, inputs, v, t - 1, exclude_port=pv))
            ext_u = (pu, node_view(pg, inputs, u, t, exclude_port=pu))
            ext_v = (pv, node_view(pg, inputs, v, t, exclude_port=pv))
            oriented = inputs.orientation_at(pg, u, pu)
            if oriented == "out":
                pair = (ext_u, ext_v)
                symmetric = False
            elif oriented == "in":
                pair = (ext_v, ext_u)
                symmetric = False
            elif base_u != base_v:
                if repr(base_u) < repr(base_v):
                    pair = (ext_u, ext_v)
                else:
                    pair = (ext_v, ext_u)
                symmetric = False
            else:
                pair = tuple(sorted((ext_u, ext_v), key=repr))
                symmetric = True
            edge_combos[(base, symmetric)].add(pair)

    node_ok = all(_is_product(combos) for combos in node_combos.values())
    edge_ok = all(
        _is_unordered_product(combos) if symmetric else _is_product(combos)
        for (_base, symmetric), combos in edge_combos.items()
    )
    return IndependenceReport(
        t=t,
        node_side_independent=node_ok,
        edge_side_independent=edge_ok,
        node_views_checked=len(node_combos),
        edge_views_checked=len(edge_combos),
    )


def _branch_extension(
    pg: PortGraph, inputs: InputLabeling, v: int, port: int, t: int
) -> tuple[int, int, object]:
    """The information added along one port when a (t-1)-view grows to t."""
    u = pg.neighbor(v, port)
    back = pg.port_toward(u, v)
    return (port, back, node_view(pg, inputs, u, t - 1, exclude_port=back))


def _is_product(combos: set[tuple]) -> bool:
    """Do the observed tuples form the full product of their coordinate sets?"""
    if not combos:
        return True
    width = len(next(iter(combos)))
    coordinates = [set() for _ in range(width)]
    for combo in combos:
        for index, value in enumerate(combo):
            coordinates[index].add(value)
    expected = 1
    for coordinate in coordinates:
        expected *= len(coordinate)
    if expected != len(combos):
        return False
    return all(tuple(combo) in combos for combo in product(*coordinates))


def _is_unordered_product(combos: set[tuple]) -> bool:
    """Product check for interchangeable roles (symmetric edge views).

    With both endpoint roles identical, the extension sets coincide; every
    unordered pair from the observed universe must appear.
    """
    universe = {value for pair in combos for value in pair}
    for a in universe:
        for b in universe:
            if tuple(sorted((a, b), key=repr)) not in combos:
                return False
    return True
