"""Locally checkable verification of outputs on ``B(G)``.

The defining property of the paper's problem class is that a global output
is correct iff every node configuration is in ``h`` and every edge
configuration is in ``g``.  :func:`verify_outputs` is that check, reporting
each violation.  Direct verifiers for the concrete problems (colorings,
weak/superweak colorings, orientations, MIS, matchings) cross-validate the
encodings in :mod:`repro.problems` against first-principles definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.problem import Problem, edge_config, node_config
from repro.sim.ports import Node, Port, PortGraph

Outputs = dict[tuple[Node, Port], str]


@dataclass(frozen=True)
class ConstraintViolation:
    """One broken constraint: a node configuration or an edge configuration."""

    kind: str  # "node" or "edge"
    where: tuple
    configuration: tuple
    detail: str = ""


def verify_outputs(
    problem: Problem, pg: PortGraph, outputs: Outputs
) -> list[ConstraintViolation]:
    """Check an assignment on ``B(G)`` against the problem's ``g`` and ``h``."""
    violations: list[ConstraintViolation] = []
    for v in pg.nodes():
        config = node_config(outputs[(v, port)] for port in range(pg.degree(v)))
        if config not in problem.node_constraint:
            violations.append(
                ConstraintViolation(kind="node", where=(v,), configuration=config)
            )
    for u, pu, v, pv in pg.edges_with_ports():
        pair = edge_config(outputs[(u, pu)], outputs[(v, pv)])
        if pair not in problem.edge_constraint:
            violations.append(
                ConstraintViolation(kind="edge", where=(u, v), configuration=pair)
            )
    return violations


def solves(problem: Problem, pg: PortGraph, outputs: Outputs) -> bool:
    """True iff the outputs are a correct solution on this graph."""
    return not verify_outputs(problem, pg, outputs)


# -- first-principles verifiers --------------------------------------------


def verify_proper_coloring(graph: nx.Graph, colors: dict[Node, int]) -> bool:
    """No edge monochromatic."""
    return all(colors[u] != colors[v] for u, v in graph.edges)


def verify_weak_coloring(graph: nx.Graph, colors: dict[Node, int]) -> bool:
    """Every node with a neighbor has a differently colored neighbor."""
    for v in graph.nodes:
        neighbors = list(graph.neighbors(v))
        if neighbors and all(colors[u] == colors[v] for u in neighbors):
            return False
    return True


def verify_sinkless_orientation(
    graph: nx.Graph, orientation: dict[tuple[Node, Node], tuple[Node, Node]]
) -> bool:
    """Every edge oriented; every node has at least one outgoing edge."""
    out_degree = {v: 0 for v in graph.nodes}
    for u, v in graph.edges:
        key = (u, v) if u <= v else (v, u)
        if key not in orientation:
            return False
        tail, head = orientation[key]
        if {tail, head} != {u, v}:
            return False
        out_degree[tail] += 1
    return all(out_degree[v] >= 1 for v in graph.nodes)


def verify_superweak_coloring(
    graph: nx.Graph,
    pg: PortGraph,
    k: int,
    colors: dict[Node, int],
    kinds: dict[tuple[Node, Port], str],
) -> bool:
    """First-principles check of superweak k-coloring (Section 5.1 / Figure 2).

    Node side: strictly more demanding than accepting pointers, at most ``k``
    accepting.  Edge side: a demanding pointer from ``v`` to ``u`` requires
    different colors or an accepting pointer back from ``u`` to ``v``.
    """
    for v in graph.nodes:
        port_kinds = [kinds[(v, port)] for port in range(pg.degree(v))]
        demanding = port_kinds.count("D")
        accepting = port_kinds.count("A")
        if accepting > k or demanding <= accepting:
            return False
    for u, pu, v, pv in pg.edges_with_ports():
        for me, my_port, other, other_port in ((u, pu, v, pv), (v, pv, u, pu)):
            if kinds[(me, my_port)] == "D":
                if colors[me] == colors[other] and kinds[(other, other_port)] != "A":
                    return False
    return True


def verify_mis(graph: nx.Graph, in_set: set[Node]) -> bool:
    """Independence plus domination."""
    for u, v in graph.edges:
        if u in in_set and v in in_set:
            return False
    for v in graph.nodes:
        if v not in in_set and not any(u in in_set for u in graph.neighbors(v)):
            return False
    return True


def verify_matching(
    graph: nx.Graph, matched_edges: set[tuple[Node, Node]], maximal: bool
) -> bool:
    """A set of edges is a matching; optionally maximal."""
    seen: set[Node] = set()
    for u, v in matched_edges:
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    if maximal:
        for u, v in graph.edges:
            if u not in seen and v not in seen:
                return False
    return True
