"""Mask-native relaxation / hardening move generation for the search.

The search relaxes derived problems with certified moves.  Move *candidates*
are generated and applied directly on the interned bitmask view
(:class:`~repro.core.alphabet.InternedProblem`): a candidate is a small
descriptor (a label index pair, a restriction mask), its application is an
index-level rewrite of the interned constraint sets, and deduplication,
emptiness and self-move filtering, and the soundness gate all run before any
string surface exists.  Only the candidates that survive -- at most
``max_moves`` of them -- are materialised into :class:`~repro.core.problem.
Problem` objects with :class:`~repro.core.relaxation.RelaxationCertificate`
label maps.  On large derived alphabets (a 976-label ``Pi_1`` has ~950k
ordered label pairs) this is the difference between move generation dying in
string rewrites and finishing in milliseconds.

Relaxation move families, in deterministic least-relaxing-first order:

* **merge-equivalents** -- collapse strength-equivalent labels to one
  representative each; a bidirectional relaxation, so it never loses
  hardness and is always offered first;
* **drop** -- for a label ``a`` dominated by some ``b`` in the strength
  diagram, remove ``a`` and keep only the ``a``-free configurations: the map
  ``a -> b`` certifies the restricted problem as a relaxation, and because
  replaceability puts every mapped configuration back inside the original
  constraints, this relaxes as little as possible;
* **merge** -- for an arbitrary ordered pair ``(a, b)``, map ``a -> b`` and
  take the *image* problem (the generic Round-Eliminator merge); this can
  genuinely enlarge the constraint sets, trading hardness for a smaller
  description;
* **addarrow** -- the Round-Eliminator-style diagram edit: make ``b`` a safe
  substitute for ``a`` by *adding* every ``a -> b`` replacement variant to
  the constraints.  The identity map certifies the superset problem as a
  relaxation; the alphabet keeps both labels, so this grows the description
  for structure (a subsequent ``drop a`` equals the generic merge) and is
  offered last.

:func:`generate_hardenings` produces the dual Section 4.5 moves for
upper-bound chasing: diagram-guided constraint *restrictions* (keep only the
maximal labels, or shed one dominated label without keeping its rewired
configurations), each certified by
:func:`~repro.core.relaxation.certify_hardening`.  Hardenings are at least
as hard as their source and are never offered to the lower-bound driver.

All move families share one strength diagram: the replaceability grid is
computed at most once per interned problem
(:func:`~repro.core.diagram.compute_stronger_masks` caches it on the
instance), so a search branch generating moves for the same derived problem
repeatedly never rebuilds it.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.alphabet import InternedProblem, intern, iter_bits
from repro.core.canonical import canonical_hash
from repro.core.diagram import compute_stronger_masks
from repro.core.problem import Label, Problem
from repro.core.relaxation import (
    HARDENS,
    RELAXES,
    RelaxationCertificate,
    certify_hardening,
    certify_relaxation,
    check_index_image,
)

MERGE_EQUIVALENTS = "merge-equivalents"
DROP = "drop"
ADDARROW = "addarrow"
MERGE = "merge"
HARDEN = "harden"

# Above this description size, a single canonical hash of a move target
# costs more than the rest of move generation combined (a 976-label Pi_1
# carries ~373k edge pairs; hashing one such target takes seconds), so the
# rename-twin dedup and the redundant string-level re-certification are
# skipped for huge problems.  The exact-signature dedup and the mask-level
# soundness gate always run; the search driver canonically dedups its beam
# candidates anyway, so a rename-twin slipping through costs a slot, never
# soundness.
_EXPENSIVE_TARGET_SIZE = 50_000

#: Relaxation move kinds in generation order.
RELAXATION_KINDS = (MERGE_EQUIVALENTS, DROP, MERGE, ADDARROW)


@dataclass(frozen=True)
class RelaxationMove:
    """One certified move from ``source``: the target plus its label map.

    For the relaxation kinds the map certifies ``target`` as no harder than
    ``source``; for :data:`HARDEN` moves the map is the inclusion of a
    restriction and the certificate's direction is
    :data:`~repro.core.relaxation.HARDENS`.  ``detail`` carries the move's
    human-readable parameter (the ``a~>b`` arrow for :data:`ADDARROW`, whose
    identity map encodes nothing) -- structured data, not parsed back out of
    the cosmetic target name.
    """

    kind: str
    source: Problem
    target: Problem
    mapping: dict[Label, Label]
    detail: str = ""

    def certificate(self) -> RelaxationCertificate:
        """The certificate record (maps are validated by the generators)."""
        return RelaxationCertificate(
            source_name=self.source.name,
            target_name=self.target.name,
            mapping=dict(self.mapping),
            direction=HARDENS if self.kind == HARDEN else RELAXES,
        )

    def describe(self) -> str:
        if self.kind == HARDEN:
            dropped = sorted(self.source.labels - self.target.labels)
            return f"{self.kind}[{','.join(dropped)}] -> {self.target.name}"
        if self.kind == ADDARROW:
            # The map is the identity; the arrow is recorded in `detail`.
            return f"{self.kind}[{self.detail}] -> {self.target.name}"
        collapsed = sorted(a for a, b in self.mapping.items() if a != b)
        return f"{self.kind}[{','.join(collapsed)}] -> {self.target.name}"


class _MaskTarget:
    """An index-level candidate target: constraints over the source alphabet.

    ``label_mask`` is the mask of surviving source labels; ``edge_pairs`` and
    ``node_configs`` use source label indices.  ``image`` records the move's
    label map as an index array (``image[i] == i`` outside the collapse);
    entries of dropped-without-certifying-map labels are ``-1`` only for
    hardenings, where the certificate is the inclusion, not a total map.
    """

    __slots__ = (
        "kind",
        "name",
        "label_mask",
        "edge_pairs",
        "node_configs",
        "image",
        "detail",
    )

    # Scratch container: the candidate builders assemble masks and index
    # tuples with plain-int arithmetic, so the fields stay `int` here; the
    # typed LabelMask/LabelIndex surface begins at the Alphabet API that
    # _materialize converts through.
    def __init__(
        self,
        kind: str,
        name: str,
        label_mask: int,
        edge_pairs: frozenset[tuple[int, int]],
        node_configs: tuple[tuple[int, ...], ...],
        image: list[int],
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.name = name
        self.label_mask = label_mask
        self.edge_pairs = edge_pairs
        self.node_configs = node_configs
        self.image = image
        self.detail = detail

    def signature(self) -> tuple[object, ...]:
        return (self.label_mask, self.edge_pairs, self.node_configs)

    def is_empty(self) -> bool:
        return not self.edge_pairs or not self.node_configs


def _source_signature(interned: InternedProblem) -> tuple[object, ...]:
    return (
        interned.alphabet.full_mask,
        interned.edge_pairs,
        interned.node_configs,
    )


def _image_target(
    interned: InternedProblem, kind: str, name: str, image: list[int]
) -> _MaskTarget:
    """Apply a total index map: the image problem under the collapse."""
    edge_pairs = set()
    for a, b in interned.edge_pairs:
        ia, ib = image[a], image[b]
        edge_pairs.add((ia, ib) if ia <= ib else (ib, ia))
    node_configs = tuple(
        sorted(
            {
                tuple(sorted(image[i] for i in config))
                for config in interned.node_configs
            }
        )
    )
    label_mask = 0
    for index in range(interned.alphabet.size):
        label_mask |= 1 << image[index]
    return _MaskTarget(
        kind, name, label_mask, frozenset(edge_pairs), node_configs, image
    )


def _drop_target(
    interned: InternedProblem, a: int, b: int, name: str
) -> _MaskTarget:
    """Remove the dominated label ``a``, keeping only ``a``-free configurations.

    The target is a *subset* of the merge image -- the least-relaxing way to
    shed a label; the map ``a -> b`` certifies it (replaceability puts every
    mapped configuration back inside the kept ones).
    """
    bit = 1 << a
    edge_pairs = frozenset(
        pair for pair in interned.edge_pairs if a not in pair
    )
    with_a = set(interned.configs_with_label(a))
    node_configs = tuple(
        config
        for index, config in enumerate(interned.node_configs)
        if index not in with_a
    )
    image = list(range(interned.alphabet.size))
    image[a] = b
    return _MaskTarget(
        DROP, name, interned.alphabet.full_mask & ~bit, edge_pairs, node_configs, image
    )


def _addarrow_target(
    interned: InternedProblem, a: int, b: int, name: str
) -> _MaskTarget:
    """Add every ``a -> b`` replacement variant: ``b`` becomes a safe substitute.

    The constraints only grow, so the identity map certifies the target as a
    relaxation; both labels stay in the alphabet.
    """
    edge_pairs = set(interned.edge_pairs)
    for x, y in interned.edge_pairs:
        if a in (x, y):
            nx = b if x == a else x
            ny = b if y == a else y
            edge_pairs.add((nx, ny) if nx <= ny else (ny, nx))
            # Both endpoints were `a`: the single-replacement variant too.
            if x == a and y == a:
                edge_pairs.add((a, b) if a <= b else (b, a))
    node_configs = set(interned.node_configs)
    for index in interned.configs_with_label(a):
        config = list(interned.node_configs[index])
        # Replace one occurrence at a time: a config with k `a`s contributes
        # the variants with 1..k of them turned into `b`.
        while a in config:
            config.remove(a)
            config.append(b)
            node_configs.add(tuple(sorted(config)))
    image = list(range(interned.alphabet.size))
    names = interned.alphabet.names
    return _MaskTarget(
        ADDARROW,
        name,
        interned.alphabet.full_mask,
        frozenset(edge_pairs),
        tuple(sorted(node_configs)),
        image,
        detail=f"{names[a]}~>{names[b]}",
    )


def _restrict_target(
    interned: InternedProblem, keep_mask: int, name: str
) -> _MaskTarget:
    """The Section 4.5 restriction: keep only configurations inside ``keep_mask``."""
    edge_pairs = frozenset(
        (a, b)
        for a, b in interned.edge_pairs
        if keep_mask >> a & 1 and keep_mask >> b & 1
    )
    node_configs = tuple(
        config
        for index, config in enumerate(interned.node_configs)
        if interned.config_supports[index] & ~keep_mask == 0
    )
    image = [
        index if keep_mask >> index & 1 else -1
        for index in range(interned.alphabet.size)
    ]
    return _MaskTarget(HARDEN, name, keep_mask, edge_pairs, node_configs, image)


def _relaxation_candidates(
    problem: Problem, interned: InternedProblem
) -> Iterator[_MaskTarget]:
    """Yield mask-level relaxation candidates, least-relaxing first (unchecked).

    The enumeration is lazy: :func:`generate_moves` stops pulling once the
    move cap is full, so the quadratic merge family is never fully applied
    on large alphabets.
    """
    stronger = compute_stronger_masks(interned)
    size = interned.alphabet.size

    # merge-equivalents: collapse each strength-equivalence class to its
    # smallest member (smallest index == lexicographically smallest name).
    image = list(range(size))
    for i in range(size):
        for j in iter_bits(stronger[i]):
            if j >= i:
                break
            if stronger[j] >> i & 1:  # i ~ j with j < i
                image[i] = image[j]
                break
    if any(image[i] != i for i in range(size)):
        yield _image_target(
            interned, MERGE_EQUIVALENTS, f"{problem.name}|merged", image
        )

    names = interned.alphabet.names
    # drop: one candidate per dominated label, certified by its smallest
    # strict dominator (the target only depends on the dropped label).
    dominated_pairs = set()
    for a in range(size):
        strict = stronger[a] & ~(1 << a)
        if strict:
            b = next(iter_bits(strict))
            dominated_pairs.update((a, c) for c in iter_bits(strict))
            yield _drop_target(
                interned, a, b, f"{problem.name}|-{names[a]}"
            )

    # merge: the generic collapse, for pairs not already covered by drop.
    for a in range(size):
        for b in range(size):
            if a == b or (a, b) in dominated_pairs:
                continue
            image = list(range(size))
            image[a] = b
            yield _image_target(
                interned, MERGE, f"{problem.name}|{names[a]}>{names[b]}", image
            )

    # addarrow: only pairs the diagram does not already order (otherwise the
    # replacement variants are all present and the move is a no-op).  Offered
    # after the merges: an addarrow grows the description (it pays off two
    # moves later, when the new domination enables a drop), so it should
    # never crowd description-shrinking moves out of the cap.
    for a in range(size):
        for b in range(size):
            if a == b or stronger[a] >> b & 1:
                continue
            yield _addarrow_target(
                interned, a, b, f"{problem.name}|{names[a]}~>{names[b]}"
            )


def _hardening_candidates(
    problem: Problem, interned: InternedProblem
) -> Iterator[_MaskTarget]:
    """Yield mask-level hardening candidates (diagram-guided restrictions)."""
    stronger = compute_stronger_masks(interned)
    size = interned.alphabet.size
    full = interned.alphabet.full_mask
    names = interned.alphabet.names

    # Keep only the maximal labels: the classical simplification that turns
    # a derived problem into a clean upper-bound problem.  A label is maximal
    # unless some label replaces it without being replaceable back
    # (equivalent labels do not dominate strictly).
    maximal = 0
    for a in range(size):
        others = stronger[a] & ~(1 << a)
        strictly_dominated = any(
            not (stronger[b] >> a & 1) for b in iter_bits(others)
        )
        if not strictly_dominated:
            maximal |= 1 << a
    if maximal and maximal != full:
        yield _restrict_target(interned, maximal, f"{problem.name}|max")

    # Shed one dominated label at a time (without keeping rewired
    # configurations -- this is a restriction, not a drop move).
    for a in range(size):
        if stronger[a] & ~(1 << a):
            yield _restrict_target(
                interned, full & ~(1 << a), f"{problem.name}|!-{names[a]}"
            )


def _materialize(
    problem: Problem, interned: InternedProblem, target: _MaskTarget
) -> RelaxationMove:
    """Build the string-surface problem and label map for a surviving candidate."""
    alphabet = interned.alphabet
    names = alphabet.names
    # Bit positions follow sorted name order, so index-sorted pairs and
    # tuples convert directly to canonical name configurations; Problem.make
    # re-canonicalises them (a no-op here) so materialisation cannot bypass
    # the validated construction path.
    built = Problem.make(
        name=target.name,
        delta=problem.delta,
        edge_configs=((names[a], names[b]) for a, b in target.edge_pairs),
        node_configs=(alphabet.config(config) for config in target.node_configs),
        labels=(names[i] for i in iter_bits(target.label_mask)),
    )
    if target.kind == HARDEN:
        mapping = {names[i]: names[i] for i in iter_bits(target.label_mask)}
    else:
        mapping = {
            names[i]: names[target.image[i]] for i in range(alphabet.size)
        }
    return RelaxationMove(
        kind=target.kind,
        source=problem,
        target=built,
        mapping=mapping,
        detail=target.detail,
    )


def generate_moves(problem: Problem, max_moves: int = 24) -> list[RelaxationMove]:
    """Certified relaxation moves of ``problem``, deduplicated and capped.

    Candidates are generated and validated at the mask level; targets that
    are degenerate (no allowed configuration left), identical to the source,
    or duplicates of an earlier target (exactly, then up to label renaming
    via canonical hashes) are filtered out before materialisation.  Every
    returned move's label map has been validated twice: by
    :func:`~repro.core.relaxation.check_index_image` on the interned view
    and -- for the survivors only -- by the string-level
    :func:`~repro.core.relaxation.certify_relaxation`.
    """
    if max_moves < 1:
        return []
    interned = intern(problem)
    expensive = problem.description_size > _EXPENSIVE_TARGET_SIZE
    moves: list[RelaxationMove] = []
    seen_signatures = {_source_signature(interned)}
    seen_hashes = set() if expensive else {canonical_hash(problem)}
    source_edges = interned.edge_pairs
    source_configs = interned.node_configs
    for target in _relaxation_candidates(problem, interned):
        if target.is_empty():
            continue
        signature = target.signature()
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        # Mask-level soundness gate: a generator bug must surface as a
        # skipped move at worst, never as an invalid certificate in a chain.
        if not check_index_image(
            target.image,
            source_edges,
            source_configs,
            target.edge_pairs,
            set(target.node_configs),
        ):
            continue
        move = _materialize(problem, interned, target)
        if not expensive:
            key = canonical_hash(move.target)
            if key in seen_hashes:
                continue
            try:
                certify_relaxation(move.source, move.target, move.mapping)
            except ValueError:
                continue
            seen_hashes.add(key)
        moves.append(move)
        if len(moves) >= max_moves:
            break
    return moves


def generate_hardenings(problem: Problem, max_moves: int = 8) -> list[RelaxationMove]:
    """Certified Section 4.5 hardening moves of ``problem``.

    Each returned move's target is a constraint restriction of ``problem``
    (at least as hard; its solutions solve ``problem`` verbatim), certified
    by :func:`~repro.core.relaxation.certify_hardening`.  Degenerate targets
    (nothing left to output) and duplicates are filtered.  These moves are
    for upper-bound chasing and are never offered to the lower-bound search.
    """
    if max_moves < 1:
        return []
    interned = intern(problem)
    moves: list[RelaxationMove] = []
    seen_signatures = {_source_signature(interned)}
    for target in _hardening_candidates(problem, interned):
        if target.is_empty():
            continue
        signature = target.signature()
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        move = _materialize(problem, interned, target)
        try:
            certify_hardening(move.source, move.target)
        except ValueError:
            continue
        moves.append(move)
        if len(moves) >= max_moves:
            break
    return moves
