"""Relaxation move generation from a problem's diagram / Galois structure.

The search relaxes derived problems with three families of certified moves,
all expressed as label maps (so each move carries its own
:class:`~repro.core.relaxation.RelaxationCertificate`):

* **merge-equivalents** -- collapse strength-equivalent labels to one
  representative each (:func:`repro.core.diagram.merge_equivalent_labels`);
  a bidirectional relaxation, so it never loses hardness and is always
  offered first;
* **drop** -- for labels ``a <= b`` in the strength diagram (``b`` may
  replace ``a`` everywhere), remove ``a`` and keep only the ``a``-free
  configurations: the map ``a -> b`` certifies the restricted problem as a
  relaxation, and because replaceability puts every mapped configuration
  back inside the original constraints, this relaxes as little as possible;
* **merge** -- for an arbitrary ordered pair ``(a, b)``, map ``a -> b`` and
  take the *image* problem (the generic Round-Eliminator merge); this can
  genuinely enlarge the constraint sets, trading hardness for a smaller
  description.

Moves are deduplicated by the canonical hash of their targets, useless
self-moves are skipped, and the list is truncated to ``max_moves`` in the
deterministic order above (least-relaxing first).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.canonical import canonical_hash
from repro.core.diagram import compute_diagram, merge_equivalent_labels
from repro.core.problem import Label, Problem
from repro.core.relaxation import RelaxationCertificate, certify_relaxation

MERGE_EQUIVALENTS = "merge-equivalents"
DROP = "drop"
MERGE = "merge"


@dataclass(frozen=True)
class RelaxationMove:
    """One certified relaxation of ``source``: the target plus its label map."""

    kind: str
    source: Problem
    target: Problem
    mapping: dict[Label, Label]

    def certificate(self) -> RelaxationCertificate:
        """The certificate record (maps are validated by :func:`generate_moves`)."""
        return RelaxationCertificate(
            source_name=self.source.name,
            target_name=self.target.name,
            mapping=dict(self.mapping),
        )

    def describe(self) -> str:
        collapsed = sorted(a for a, b in self.mapping.items() if a != b)
        return f"{self.kind}[{','.join(collapsed)}] -> {self.target.name}"


def merge_move(problem: Problem, a: Label, b: Label) -> RelaxationMove:
    """The generic merge ``a -> b``: the image problem under the collapse."""
    mapping = {label: (b if label == a else label) for label in problem.labels}
    target = Problem.make(
        name=f"{problem.name}|{a}>{b}",
        delta=problem.delta,
        edge_configs=[(mapping[x], mapping[y]) for x, y in problem.edge_constraint],
        node_configs=[
            tuple(mapping[label] for label in config)
            for config in problem.node_constraint
        ],
        labels={mapping[label] for label in problem.labels},
    )
    return RelaxationMove(kind=MERGE, source=problem, target=target, mapping=mapping)


def drop_move(problem: Problem, a: Label, b: Label) -> RelaxationMove:
    """Drop the dominated label ``a`` (certified by ``a -> b`` with ``a <= b``).

    The target keeps exactly the ``a``-free configurations
    (:meth:`Problem.restricted`), which is a *subset* of the merge image --
    the least-relaxing way to shed a label.
    """
    target = problem.restricted(
        problem.labels - {a}, name=f"{problem.name}|-{a}"
    )
    mapping = {label: (b if label == a else label) for label in problem.labels}
    return RelaxationMove(kind=DROP, source=problem, target=target, mapping=mapping)


def _candidate_moves(problem: Problem) -> Iterator[RelaxationMove]:
    """Yield moves in deterministic least-relaxing-first order (unchecked).

    One diagram computation feeds every move family: the equivalence merge
    reuses it instead of recomputing the full replaceability grid (the
    kernel makes each grid cheap, but the search calls this per beam state,
    so halving the count still shows up in profiles).
    """
    diagram = compute_diagram(problem)
    merged, mapping = merge_equivalent_labels(problem, diagram=diagram)
    if len(merged.labels) < len(problem.labels):
        yield RelaxationMove(
            kind=MERGE_EQUIVALENTS, source=problem, target=merged, mapping=mapping
        )
    dominated: list[tuple[Label, Label]] = []
    for a in sorted(problem.labels):
        for b in sorted(diagram.stronger[a]):
            if b != a:
                dominated.append((a, b))
    for a, b in dominated:
        yield drop_move(problem, a, b)

    ordered = sorted(problem.labels)
    dominated_set = set(dominated)
    for a in ordered:
        for b in ordered:
            if a == b or (a, b) in dominated_set:
                continue
            yield merge_move(problem, a, b)


def generate_moves(problem: Problem, max_moves: int = 24) -> list[RelaxationMove]:
    """Certified relaxation moves of ``problem``, deduplicated and capped.

    Every returned move's label map has been validated with
    :func:`~repro.core.relaxation.certify_relaxation`; targets that are
    degenerate (no allowed configuration left), identical to the source, or
    duplicates of an earlier target (up to label renaming, via canonical
    hashes) are filtered out.
    """
    if max_moves < 1:
        return []
    moves: list[RelaxationMove] = []
    seen: set[str] = {canonical_hash(problem)}
    for move in _candidate_moves(problem):
        if move.target.is_empty:
            continue
        key = canonical_hash(move.target)
        if key in seen:
            continue
        # Soundness gate: a generator bug must surface as a skipped move at
        # worst, never as an invalid certificate in a chain.
        try:
            certify_relaxation(move.source, move.target, move.mapping)
        except ValueError:
            continue
        seen.add(key)
        moves.append(move)
        if len(moves) >= max_moves:
            break
    return moves
