"""Automated lower-bound search: beam search over speedup + relaxation chains.

This package automates the paper's Section 2.1 workflow -- iterated round
elimination *interleaved with relaxations* -- the technique the Round
Eliminator mechanises and the automata-theoretic view of Chang-Studeny-
Suomela systematises.  Given a problem, :func:`search_lower_bound` explores
bounded-size relaxations of each derived problem (merge / drop / addarrow
moves generated and applied on the interned bitmask view, with the strength
diagram computed once per derived problem, deduplicated by canonical hashes,
and 0-round checks memoised cross-branch through the engine) looking for
either

* a **pumpable fixed point** -- the unbounded / Omega(log n) outcome -- or
* the longest **chain** it can certify within its budget -- a concrete
  ``k``-round lower bound.

Either way the output is a machine-checkable
:class:`~repro.core.certificate.LowerBoundCertificate` whose ``verify()``
re-checks every link independently of the search.

The other direction lives in :mod:`repro.search.upper`:
:func:`search_upper_bound` chases speedup steps (interleaved with certified
hardening restrictions) toward a 0-round-solvable problem, certifying a
concrete O(k) *upper* bound with a recorded 0-round witness as the
terminal.  :func:`classify` (:mod:`repro.search.classify`) runs both and
brackets the complexity into a :class:`ComplexityBracket` with a
``tight`` / ``gap`` / ``open`` verdict.

Quickstart::

    from repro import Engine, sinkless_orientation

    result = Engine().search_lower_bound(sinkless_orientation(3))
    assert result.certificate is not None and result.unbounded
    assert result.certificate.verify().valid

Shell surface: ``python -m repro search sinkless-orientation``.
"""

from repro.search.classify import (
    BracketCheck,
    ClassifyResult,
    ComplexityBracket,
    classify,
)
from repro.search.driver import SearchResult, SearchStats, search_lower_bound
from repro.search.moves import (
    RELAXATION_KINDS,
    RelaxationMove,
    generate_hardenings,
    generate_moves,
)
from repro.search.upper import (
    ChaseResult,
    ChaseStats,
    search_upper_bound,
)

__all__ = [
    "RELAXATION_KINDS",
    "BracketCheck",
    "ChaseResult",
    "ChaseStats",
    "ClassifyResult",
    "ComplexityBracket",
    "RelaxationMove",
    "SearchResult",
    "SearchStats",
    "classify",
    "generate_hardenings",
    "generate_moves",
    "search_lower_bound",
    "search_upper_bound",
]
