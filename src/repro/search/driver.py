"""The beam-search driver behind ``Engine.search_lower_bound``.

A search *state* is a partial certificate: the chain of problems reached so
far (none of them 0-round solvable) together with the alternating
speedup/relaxation steps that produced it.  Each round of the search expands
every beam state by one speedup step (fanned out over the engine's worker
pool and memoised through its content-addressed cache), then considers the
derived problem itself plus every certified relaxation move of it
(:mod:`repro.search.moves`):

* a candidate isomorphic to an earlier problem *of its own chain* is a
  pumpable fixed point -- the search stops and returns the unbounded
  certificate immediately;
* a candidate that is 0-round solvable is discarded (relaxing that far
  destroys the lower bound); the verdicts are memoised cross-branch through
  the engine's :class:`~repro.core.zero_round.ZeroRoundMemo`, keyed on the
  canonical hashes the dedup already computes, so renamed twins reached by
  different branches decide once;
* surviving candidates are deduplicated by canonical hash and scored by
  description size (small problems are exactly what Section 2.1's relaxation
  technique exists to reach), and the best ``beam_width`` become the next
  beam.

The search is budgeted: at most ``budget`` speedup derivations are
attempted, and states whose derivation trips the engine's size guards
(:class:`~repro.core.speedup.EngineLimitError`) are dropped rather than
pursued.  Since the streaming full step retired the a-priori candidate-grid
refusal, those trips report real enumeration work (``max_candidate_configs``)
or a genuinely oversized surviving frontier (``max_live_configs``), so the
search prunes on actual blow-ups rather than pessimistic grid predictions --
and the engine's ``kernel`` tier (scalar big-int or vectorized numpy) only
changes how fast candidates are decided, never which ones survive.  If no
fixed point appears within ``max_steps`` rounds, the deepest surviving chain
is returned as a concrete ``k``-round certificate.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.engine.engine import Engine

from repro.core.canonical import canonical_hash
from repro.core.certificate import (
    RELAXATION,
    SPEEDUP,
    TERMINAL_FIXED_POINT,
    TERMINAL_UNSOLVABLE,
    CertificateStep,
    LowerBoundCertificate,
)
from repro.core.isomorphism import find_isomorphism
from repro.core.problem import Problem
from repro.core.speedup import EngineLimitError
from repro.core.zero_round import ZeroRoundMemo, is_zero_round_solvable
from repro.engine.executor import ExpandOption, ExpandPayload, ExpandTask, Task
from repro.engine.resilience import TaskFailure
from repro.search.moves import RelaxationMove, generate_moves
from repro.utils.jsonio import atomic_write_json, load_json, sweep_stale_tmp_files

KIND_TRIVIAL = "trivial"
KIND_CHAIN = "chain"
KIND_FIXED_POINT = "fixed-point"

# Above this description size, every surviving move still costs a compressed
# canonical hash plus a 0-round decision downstream in this driver; on huge
# derived problems those dominate the wall clock, and the beam keeps only
# ``beam_width`` states anyway, so the per-state move budget shrinks to just
# past the beam width instead of the configured cap.
_LARGE_STATE_SIZE = 100_000


@dataclass(frozen=True)
class SearchStats:
    """Bookkeeping of one search run (for reports and budget tuning)."""

    speedup_calls: int = 0
    states_expanded: int = 0
    candidates_generated: int = 0
    duplicates_pruned: int = 0
    zero_round_pruned: int = 0
    limit_hits: int = 0
    zero_round_checks: int = 0
    zero_round_memo_hits: int = 0
    task_failures: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "speedup_calls": self.speedup_calls,
            "states_expanded": self.states_expanded,
            "candidates_generated": self.candidates_generated,
            "duplicates_pruned": self.duplicates_pruned,
            "zero_round_pruned": self.zero_round_pruned,
            "limit_hits": self.limit_hits,
            "zero_round_checks": self.zero_round_checks,
            "zero_round_memo_hits": self.zero_round_memo_hits,
            "task_failures": self.task_failures,
        }


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an automated lower-bound search.

    ``kind`` is ``"fixed-point"`` (unbounded certificate found), ``"chain"``
    (the deepest chain certificate within budget), or ``"trivial"`` (the
    input problem is already 0-round solvable, so no lower bound exists and
    ``certificate`` is None).
    """

    problem: Problem
    kind: str
    certificate: LowerBoundCertificate | None
    stats: SearchStats

    @property
    def unbounded(self) -> bool:
        return self.kind == KIND_FIXED_POINT

    @property
    def bound(self) -> int | None:
        """Rounds the problem is certified unsolvable in (None when trivial)."""
        if self.certificate is None:
            return None
        return self.certificate.claimed_bound

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form -- the payload of ``python -m repro search --json``."""
        return {
            "problem": self.problem.to_dict(),
            "kind": self.kind,
            "bound": self.bound,
            "unbounded": self.unbounded,
            "certificate": (
                None if self.certificate is None else self.certificate.to_dict()
            ),
            "stats": self.stats.to_dict(),
        }

    def summary(self) -> str:
        lines = [f"search over {self.problem.name}: {self.kind}"]
        if self.kind == KIND_TRIVIAL:
            lines.append("problem is 0-round solvable; no lower bound exists")
        elif self.certificate is not None:
            if self.unbounded:
                lines.append(
                    "pumpable fixed point: Omega(log n) on bounded-degree "
                    "high-girth classes"
                )
            lines.append(
                f"certified: not solvable in {self.certificate.claimed_bound} "
                f"round(s) ({len(self.certificate.steps)} chain step(s))"
            )
        stats = self.stats
        lines.append(
            f"explored: {stats.speedup_calls} speedup(s), "
            f"{stats.candidates_generated} candidate(s), "
            f"{stats.duplicates_pruned} duplicate(s) pruned, "
            f"{stats.zero_round_pruned} 0-round prune(s), "
            f"{stats.limit_hits} size-limit hit(s)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _State:
    """A partial certificate: current problem plus the chain that reached it."""

    problem: Problem
    steps: tuple[CertificateStep, ...]
    chain_keys: tuple[str, ...]
    chain_compressed: tuple[Problem, ...]

    @property
    def score(self) -> tuple[int, int]:
        return (self.problem.description_size, len(self.problem.labels))


def execute_expand_task(engine: Engine, task: ExpandTask) -> ExpandPayload:
    """Run one beam expansion: speedup, moves, candidate evaluation.

    This is the backend-side half of the search's expansion
    (:class:`~repro.engine.executor.ExpandTask`): it performs every
    CPU-heavy part -- the speedup derivation, move generation, and each
    candidate's compression, canonical hashing, and memoised 0-round
    decision -- and returns an :class:`~repro.engine.executor.ExpandPayload`
    the driver's consumption loop turns into beam states with exactly the
    sequential loop's counter semantics.  Runs in the parent under the
    serial/thread backends and inside pool workers under ``process``.

    A derived problem that is itself 0-round solvable short-circuits move
    evaluation (all its relaxations are solvable too; the driver prunes the
    branch), mirroring the lazy sequential order.  Size-guard trips come
    back as ``limit_hit`` payloads rather than exceptions so a process
    worker's batch neighbours are unaffected.
    """
    try:
        result = engine.speedup(task.problem)
    except EngineLimitError:
        return ExpandPayload(result=None, limit_hit=True, options=(), moves_generated=0)
    moves_cap = task.max_moves
    if result.full.description_size > _LARGE_STATE_SIZE:
        moves_cap = min(task.max_moves, task.beam_width + 1)
    moves = tuple(generate_moves(result.full, max_moves=moves_cap))
    orientations = engine.config.orientations
    memo = engine.zero_round_memo

    def evaluate(target: Problem, move: RelaxationMove | None) -> ExpandOption:
        # 0-round solvability is invariant under compression (every witness
        # uses only usable labels), so the verdict runs on the compressed
        # form whose canonical hash doubles as the driver's dedup key.
        compressed = target.compressed()
        key = canonical_hash(compressed)
        if memo is None:
            solvable = is_zero_round_solvable(compressed, orientations=orientations)
            return ExpandOption(
                move=move, compressed=compressed, key=key,
                solvable=solvable, memo_hit=False,
            )
        memo_key = ZeroRoundMemo.key_from_hash(key, orientations)
        verdict = memo.lookup(memo_key)
        if verdict is not None:
            return ExpandOption(
                move=move, compressed=compressed, key=key,
                solvable=verdict, memo_hit=True,
            )
        verdict = is_zero_round_solvable(compressed, orientations=orientations)
        memo.store(memo_key, verdict)
        return ExpandOption(
            move=move, compressed=compressed, key=key,
            solvable=verdict, memo_hit=False,
        )

    options = [evaluate(result.full, None)]
    if not options[0].solvable:
        for move in moves:
            options.append(evaluate(move.target, move))
    return ExpandPayload(
        result=result,
        limit_hit=False,
        options=tuple(options),
        moves_generated=len(moves),
    )


class _Counters:
    __slots__ = (
        "speedup_calls",
        "states_expanded",
        "candidates_generated",
        "duplicates_pruned",
        "zero_round_pruned",
        "limit_hits",
        "zero_round_checks",
        "zero_round_memo_hits",
        "task_failures",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> SearchStats:
        return SearchStats(**{name: getattr(self, name) for name in self.__slots__})

    def restore(self, data: dict[str, Any]) -> None:
        for name in self.__slots__:
            setattr(self, name, int(data.get(name, 0)))


# -- checkpoint / resume -------------------------------------------------------

#: Schema version of the search checkpoint files under
#: ``cache_dir/checkpoints/``.  A checkpoint stores everything the beam loop
#: holds between depths -- the beam states (each a partial certificate:
#: problem, steps, dedup chain), the counters, and the parameter fingerprint
#: -- so a resumed run replays the remaining depths exactly and emits a
#: byte-identical certificate.
CHECKPOINT_VERSION = 1


def _state_to_dict(state: _State) -> dict[str, object]:
    return {
        "problem": state.problem.to_dict(),
        "steps": [step.to_dict() for step in state.steps],
        "chain_keys": list(state.chain_keys),
        "chain_compressed": [p.to_dict() for p in state.chain_compressed],
    }


def _state_from_dict(data: dict[str, Any]) -> _State:
    return _State(
        problem=Problem.from_dict(data["problem"]),
        steps=tuple(CertificateStep.from_dict(step) for step in data["steps"]),
        chain_keys=tuple(str(key) for key in data["chain_keys"]),
        chain_compressed=tuple(
            Problem.from_dict(p) for p in data["chain_compressed"]
        ),
    )


def _checkpoint_path(cache_dir: str | Path, root_key: str) -> Path:
    # Root keys carry a "canon:" scheme prefix; keep filenames portable.
    slug = root_key.replace(":", "_")
    return Path(cache_dir) / "checkpoints" / f"search_{slug}.json"


def _write_checkpoint(
    path: Path,
    fingerprint: dict[str, object],
    depth: int,
    beam: list[_State],
    counters: _Counters,
) -> None:
    """Persist the beam loop's state after one completed depth, best effort.

    ``deepest`` needs no slot of its own: the loop maintains ``deepest ==
    beam[0]`` at every checkpoint site, so resume re-derives it.  A failed
    write (full disk) leaves the previous checkpoint intact -- resuming
    then redoes more depths but still converges on the identical result.
    """
    atomic_write_json(
        path,
        {
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "depth": depth,
            "beam": [_state_to_dict(state) for state in beam],
            "counters": counters.snapshot().to_dict(),
        },
    )


def _load_checkpoint(
    path: Path, fingerprint: dict[str, object]
) -> tuple[list[_State], dict[str, Any], int] | None:
    """Reconstruct ``(beam, counters, completed_depth)`` from a checkpoint.

    Any corruption, schema mismatch, or *parameter* mismatch (a checkpoint
    from a run with different beam width, budget, or root problem must
    never seed this one) reads as "no checkpoint": the search starts fresh,
    which is always correct, just slower.
    """
    payload = load_json(path)
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CHECKPOINT_VERSION:
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    try:
        beam = [_state_from_dict(state) for state in payload["beam"]]
        depth = int(payload["depth"])
        counters = dict(payload["counters"])
    except (KeyError, TypeError, ValueError, AttributeError):
        return None
    if not beam or depth < 1:
        return None
    return beam, counters, depth


def search_lower_bound(
    problem: Problem,
    *,
    engine: Engine | None = None,
    max_steps: int = 8,
    beam_width: int | None = None,
    max_moves: int | None = None,
    budget: int | None = None,
    checkpoint: bool = False,
    resume: bool = False,
) -> SearchResult:
    """Automatically search for a lower-bound certificate for ``problem``.

    ``beam_width`` / ``max_moves`` / ``budget`` default to the engine's
    ``search_beam_width`` / ``search_max_moves`` / ``search_budget``
    configuration; the engine also supplies the derivation size guards, the
    memo cache, the worker pool, and the 0-round input setting
    (``orientations``).  See the module docstring for the algorithm.

    With ``checkpoint=True`` and an engine ``cache_dir``, the full beam
    state is serialized to ``cache_dir/checkpoints/`` after every completed
    depth; a later call with ``resume=True`` (same problem, same
    parameters) reconstructs that state and continues, producing the
    certificate an uninterrupted run would have -- byte-identical JSON.
    The checkpoint is deleted once the search returns normally.  A resume
    finding no usable checkpoint (absent, corrupt, or written under
    different parameters) silently starts fresh.
    """
    if engine is None:
        from repro.engine import get_default_engine

        engine = get_default_engine()
    config = engine.config
    beam_width = config.search_beam_width if beam_width is None else beam_width
    max_moves = config.search_max_moves if max_moves is None else max_moves
    budget = config.search_budget if budget is None else budget
    if max_steps < 1:
        raise ValueError("max_steps must be positive")
    if beam_width < 1 or max_moves < 0 or budget < 1:
        raise ValueError("beam_width and budget must be positive, max_moves >= 0")
    orientations = config.orientations

    counters = _Counters()
    memo = engine.zero_round_memo

    def zero_round(candidate: Problem, problem_hash: str) -> bool:
        """Memoised 0-round check, with hits counted locally.

        The memo is shared engine-wide, so its global hit counter would
        attribute concurrent workloads to this search; looking it up here
        keeps the stats exact.  ``problem_hash`` is the candidate's already
        computed canonical hash (the dedup needs it anyway).
        """
        counters.zero_round_checks += 1
        if memo is None:
            return engine.zero_round_solvable(candidate)
        key = ZeroRoundMemo.key_from_hash(problem_hash, orientations)
        verdict = memo.lookup(key)
        if verdict is not None:
            counters.zero_round_memo_hits += 1
            return verdict
        verdict = is_zero_round_solvable(candidate, orientations=orientations)
        memo.store(key, verdict)
        return verdict

    def finish_stats() -> SearchStats:
        return counters.snapshot()

    # The root is checked and memoised on its compressed form like every
    # other candidate (0-round solvability is compression-invariant), and
    # its canonical hash doubles as the chain's first dedup key.
    root_compressed = problem.compressed()
    root_key = canonical_hash(root_compressed)

    checkpointing = checkpoint or resume
    checkpoint_file: Path | None = None
    if checkpointing and config.cache_dir is not None:
        checkpoint_file = _checkpoint_path(config.cache_dir, root_key)
        checkpoint_file.parent.mkdir(parents=True, exist_ok=True)
        # Reclaim temp files that interrupted runs (search or chase; the
        # directory is shared) abandoned next to the checkpoints: the
        # cache-wide sweep covers only the cache root and the 0-round memo
        # directory, so without this the checkpoint directory would collect
        # them forever.
        sweep_stale_tmp_files(checkpoint_file.parent)
    fingerprint: dict[str, object] = {
        "root_key": root_key,
        "max_steps": max_steps,
        "beam_width": beam_width,
        "max_moves": max_moves,
        "budget": budget,
        "orientations": orientations,
    }

    def discard_checkpoint() -> None:
        # A completed search owes no resume state; a stale checkpoint would
        # only cost the fingerprint comparison, but deleting it keeps the
        # directory an honest list of interrupted runs.
        if checkpoint_file is not None:
            with contextlib.suppress(OSError):
                checkpoint_file.unlink(missing_ok=True)

    if zero_round(root_compressed, root_key):
        discard_checkpoint()
        return SearchResult(
            problem=problem,
            kind=KIND_TRIVIAL,
            certificate=None,
            stats=finish_stats(),
        )

    root = _State(
        problem=problem,
        steps=(),
        chain_keys=(root_key,),
        chain_compressed=(root_compressed,),
    )
    beam = [root]
    deepest = root
    start_depth = 1
    if resume and checkpoint_file is not None:
        restored = _load_checkpoint(checkpoint_file, fingerprint)
        if restored is not None:
            beam, saved_counters, completed_depth = restored
            # The saved counters already include this run's root 0-round
            # check (the original run performed it too), so restoring
            # wholesale keeps the final stats identical to an
            # uninterrupted run.
            counters.restore(saved_counters)
            deepest = beam[0]
            start_depth = completed_depth + 1

    plan = engine.fault_plan

    for depth in range(start_depth, max_steps + 1):
        to_expand = beam[: max(0, budget - counters.speedup_calls)]
        if not to_expand:
            break
        counters.speedup_calls += len(to_expand)
        counters.states_expanded += len(to_expand)
        # The CPU-heavy work (derivation, moves, per-candidate hashing and
        # 0-round decisions) runs backend-side through the engine's
        # configured executor; this loop only consumes the evaluated
        # payloads, so the counters and beam construction stay sequential
        # and deterministic whatever the backend.
        tasks: list[Task] = [
            ExpandTask(
                problem=state.problem, max_moves=max_moves, beam_width=beam_width
            )
            for state in to_expand
        ]
        payloads = engine.execute_batch(tasks)

        candidates: list[_State] = []
        frontier_keys: dict[str, int] = {}
        for state, payload in zip(to_expand, payloads):
            if isinstance(payload, TaskFailure):
                # The expansion was quarantined by the retry policy (its
                # worker kept crashing or hanging); drop the state like a
                # limit hit -- its beam siblings carry on.
                counters.task_failures += 1
                continue
            assert isinstance(payload, ExpandPayload)
            if payload.limit_hit or payload.result is None:
                counters.limit_hits += 1
                continue
            derived = payload.result.full
            derived_option = payload.options[0]
            derived_compressed = derived_option.compressed
            derived_key = derived_option.key
            speedup_step = CertificateStep(
                kind=SPEEDUP, problem=derived, speedup=payload.result
            )
            for option in payload.options:
                counters.candidates_generated += 1
                move = option.move
                compressed, key = option.compressed, option.key
                # The candidate's certificate chain is the state's chain plus
                # the derived problem (and, for move options, the relaxation
                # target as the final position); the revisit scan covers every
                # position strictly before the candidate's own, so the index
                # it yields is exactly verify()'s chain position.
                if move is None:
                    steps = state.steps + (speedup_step,)
                    scan_keys = state.chain_keys
                    scan_compressed = state.chain_compressed
                else:
                    steps = state.steps + (
                        speedup_step,
                        CertificateStep(
                            kind=RELAXATION,
                            problem=move.target,
                            relaxation=move.certificate(),
                        ),
                    )
                    scan_keys = state.chain_keys + (derived_key,)
                    scan_compressed = state.chain_compressed + (derived_compressed,)
                revisit = _chain_revisit(scan_keys, scan_compressed, key, compressed)
                if revisit is not None:
                    certificate = LowerBoundCertificate(
                        initial=problem,
                        steps=steps,
                        terminal=TERMINAL_FIXED_POINT,
                        fixed_point_of=revisit,
                        orientations=orientations,
                    )
                    discard_checkpoint()
                    return SearchResult(
                        problem=problem,
                        kind=KIND_FIXED_POINT,
                        certificate=certificate,
                        stats=finish_stats(),
                    )
                counters.zero_round_checks += 1
                if option.memo_hit:
                    counters.zero_round_memo_hits += 1
                if option.solvable:
                    counters.zero_round_pruned += 1
                    if move is None:
                        # Relaxations of a 0-round solvable problem are all
                        # 0-round solvable too; the whole branch is dead
                        # (the payload carried no move options -- see
                        # execute_expand_task -- but they count as pruned).
                        counters.zero_round_pruned += payload.moves_generated
                        break
                    continue
                candidate = _State(
                    problem=derived if move is None else move.target,
                    steps=steps,
                    chain_keys=scan_keys + (key,),
                    chain_compressed=scan_compressed + (compressed,),
                )
                earlier = frontier_keys.get(key)
                if earlier is not None:
                    counters.duplicates_pruned += 1
                    if candidate.score < candidates[earlier].score:
                        candidates[earlier] = candidate
                    continue
                frontier_keys[key] = len(candidates)
                candidates.append(candidate)

        if not candidates:
            break
        candidates.sort(key=lambda state: (state.score, state.chain_keys[-1]))
        beam = candidates[:beam_width]
        deepest = beam[0]
        if checkpointing and checkpoint_file is not None:
            _write_checkpoint(checkpoint_file, fingerprint, depth, beam, counters)
        if plan is not None and plan.should_abort_search(depth):
            # The deterministic stand-in for kill -9 in checkpoint/resume
            # tests: die right after the depth's state is durable.
            raise KeyboardInterrupt(f"injected search abort after depth {depth}")

    certificate = LowerBoundCertificate(
        initial=problem,
        steps=deepest.steps,
        terminal=TERMINAL_UNSOLVABLE,
        orientations=orientations,
    )
    discard_checkpoint()
    return SearchResult(
        problem=problem,
        kind=KIND_CHAIN,
        certificate=certificate,
        stats=finish_stats(),
    )


def _chain_revisit(
    chain_keys: tuple[str, ...],
    chain_compressed: tuple[Problem, ...],
    key: str,
    compressed: Problem,
) -> int | None:
    """Earliest chain position the candidate problem revisits, if any.

    Canonical hashes screen cheaply; the isomorphism test confirms (the
    hash's symmetric-alphabet fallback is rename-sensitive, so hash
    inequality does not disprove isomorphism -- but a missed revisit only
    delays the fixed point, never unsoundly certifies one).
    """
    for position, earlier_key in enumerate(chain_keys):
        if earlier_key != key:
            continue
        if find_isomorphism(compressed, chain_compressed[position]) is not None:
            return position
    return None
