"""The upper-bound chase behind ``Engine.search_upper_bound``.

The speedup theorem read forwards: ``Pi`` is solvable in ``t`` rounds iff
``speedup(Pi)`` is solvable in ``t - 1`` (Theorem 2), so driving a chain of
speedup steps into a 0-round-solvable problem certifies a concrete
``k``-round algorithm for the start -- the direction the lower-bound search
(:mod:`repro.search.driver`) never explores.  A chase *state* is a partial
:class:`~repro.core.certificate.UpperBoundCertificate`: the chain of
problems reached so far and the steps that produced it.  Each round expands
every beam state by speeding up the state's problem *and* each of its
Section-4.5 ``harden`` restrictions (:func:`~repro.search.moves.
generate_hardenings`), fanned out over the engine's worker pool as
:class:`~repro.engine.executor.ChaseTask` items:

* a derived problem that is 0-round solvable ends the chase immediately:
  its witness (the actual 0-round algorithm, recomputed on the uncompressed
  problem) becomes the certificate's terminal and the chain certifies
  ``initial`` solvable in (number of speedup steps) rounds;
* hardened problems themselves are **never** 0-round checked: a restriction
  ``Q' subset Q`` can only lose witnesses (any witness of ``Q'`` is
  verbatim one of ``Q``, its configurations being a subset), so once the
  chain's current problem is known unsolvable every hardening of it is
  too.  Hardenings buy description control -- a smaller, more symmetric
  problem whose *speedup* may collapse -- at zero soundness risk and zero
  round cost (an algorithm for the restriction solves the original
  verbatim);
* surviving candidates are deduplicated by canonical hash against
  everything seen on any branch (unlike the lower-bound search, revisiting
  a problem can never help here: the chain records no terminal until a
  solvable problem appears, so a cycle is pure waste) and scored by
  description size; the best ``beam_width`` become the next beam.

The chase is budgeted in speedup derivations like the lower-bound search,
with one difference forced by the fan-out shape: a single expansion costs
``1 + #hardenings`` derivations, so the budget is enforced per evaluated
option and a depth may overshoot by at most one expansion's options.

Verification does not trust any of this: the emitted certificate re-derives
every speedup, re-checks every hardening's restriction structurally, and
re-validates the terminal witness as an algorithm
(:meth:`~repro.core.certificate.UpperBoundCertificate.verify`).

With ``checkpoint=True`` the beam state is durably serialized after every
completed depth under ``cache_dir/checkpoints/`` exactly like the
lower-bound search (same directory, same atomic-write discipline, same
stale ``*.tmp`` sweep on entry), and ``resume=True`` continues an
interrupted chase to the byte-identical certificate.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.engine.engine import Engine

from repro.core.canonical import canonical_hash
from repro.core.certificate import (
    HARDENING,
    SPEEDUP,
    CertificateStep,
    UpperBoundCertificate,
)
from repro.core.problem import Problem
from repro.core.speedup import EngineLimitError
from repro.core.zero_round import (
    ZeroRoundMemo,
    ZeroRoundWitness,
    is_zero_round_solvable,
    zero_round_no_input,
    zero_round_with_orientations,
)
from repro.engine.executor import ChaseOption, ChasePayload, ChaseTask, Task
from repro.engine.resilience import TaskFailure
from repro.search.moves import RelaxationMove, generate_hardenings
from repro.utils.jsonio import atomic_write_json, load_json, sweep_stale_tmp_files

KIND_UPPER_BOUND = "upper-bound"
KIND_EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class ChaseStats:
    """Bookkeeping of one chase run (for reports and budget tuning)."""

    speedup_calls: int = 0
    states_expanded: int = 0
    candidates_generated: int = 0
    duplicates_pruned: int = 0
    hardenings_generated: int = 0
    limit_hits: int = 0
    zero_round_checks: int = 0
    zero_round_memo_hits: int = 0
    task_failures: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "speedup_calls": self.speedup_calls,
            "states_expanded": self.states_expanded,
            "candidates_generated": self.candidates_generated,
            "duplicates_pruned": self.duplicates_pruned,
            "hardenings_generated": self.hardenings_generated,
            "limit_hits": self.limit_hits,
            "zero_round_checks": self.zero_round_checks,
            "zero_round_memo_hits": self.zero_round_memo_hits,
            "task_failures": self.task_failures,
        }


@dataclass(frozen=True)
class ChaseResult:
    """Outcome of an automated upper-bound chase.

    ``kind`` is ``"upper-bound"`` (a 0-round-solvable problem was reached;
    ``certificate`` carries the chain and its terminal witness) or
    ``"exhausted"`` (no solvable problem within the depth/budget/size caps;
    ``certificate`` is None -- the chase proves nothing, it just ran out).
    """

    problem: Problem
    kind: str
    certificate: UpperBoundCertificate | None
    stats: ChaseStats

    @property
    def rounds(self) -> int | None:
        """Rounds the problem is certified solvable in (None when exhausted)."""
        if self.certificate is None:
            return None
        return self.certificate.claimed_rounds

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form -- the upper half of ``python -m repro classify``."""
        return {
            "problem": self.problem.to_dict(),
            "kind": self.kind,
            "rounds": self.rounds,
            "certificate": (
                None if self.certificate is None else self.certificate.to_dict()
            ),
            "stats": self.stats.to_dict(),
        }

    def summary(self) -> str:
        lines = [f"chase over {self.problem.name}: {self.kind}"]
        if self.certificate is not None:
            lines.append(
                f"certified: solvable in {self.certificate.claimed_rounds} "
                f"round(s) ({len(self.certificate.steps)} chain step(s))"
            )
        else:
            lines.append(
                "no 0-round-solvable problem reached within the caps; "
                "no upper bound certified"
            )
        stats = self.stats
        lines.append(
            f"explored: {stats.speedup_calls} speedup(s), "
            f"{stats.candidates_generated} candidate(s), "
            f"{stats.hardenings_generated} hardening(s), "
            f"{stats.duplicates_pruned} duplicate(s) pruned, "
            f"{stats.limit_hits} size-limit hit(s)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _ChaseState:
    """A partial certificate: current problem plus the chain that reached it."""

    problem: Problem
    steps: tuple[CertificateStep, ...]
    chain_keys: tuple[str, ...]

    @property
    def score(self) -> tuple[int, int]:
        return (self.problem.description_size, len(self.problem.labels))


def execute_chase_task(engine: Engine, task: ChaseTask) -> ChasePayload:
    """Run one chase expansion: hardenings, speedups, 0-round decisions.

    The backend-side half of the chase (:class:`~repro.engine.executor.
    ChaseTask`): the state's own problem and each hardening restriction get
    one speedup derivation, and every successfully *derived* problem gets a
    compressed canonical hash plus a memoised 0-round decision, mirroring
    :func:`repro.search.driver.execute_expand_task`'s evaluation.  Size-guard
    trips come back as per-option ``limit_hit`` records (the other options
    of the same expansion are unaffected -- a hardened target can blow past
    the caps its sibling stays under).
    """
    moves = generate_hardenings(task.problem, max_moves=task.max_hardenings)
    orientations = engine.config.orientations
    memo = engine.zero_round_memo

    def evaluate(move: RelaxationMove | None) -> ChaseOption:
        target = task.problem if move is None else move.target
        try:
            result = engine.speedup(target)
        except EngineLimitError:
            return ChaseOption(
                move=move, result=None, limit_hit=True,
                key="", solvable=False, memo_hit=False,
            )
        # The verdict runs on the compressed form whose canonical hash
        # doubles as the chase's dedup key (0-round solvability is
        # compression-invariant), exactly like the lower-bound expansion.
        compressed = result.full.compressed()
        key = canonical_hash(compressed)
        if memo is None:
            solvable = is_zero_round_solvable(compressed, orientations=orientations)
            return ChaseOption(
                move=move, result=result, limit_hit=False,
                key=key, solvable=solvable, memo_hit=False,
            )
        memo_key = ZeroRoundMemo.key_from_hash(key, orientations)
        verdict = memo.lookup(memo_key)
        if verdict is not None:
            return ChaseOption(
                move=move, result=result, limit_hit=False,
                key=key, solvable=verdict, memo_hit=True,
            )
        verdict = is_zero_round_solvable(compressed, orientations=orientations)
        memo.store(memo_key, verdict)
        return ChaseOption(
            move=move, result=result, limit_hit=False,
            key=key, solvable=verdict, memo_hit=False,
        )

    options = [evaluate(None)]
    for move in moves:
        options.append(evaluate(move))
    return ChasePayload(options=tuple(options), hardenings_generated=len(moves))


class _Counters:
    __slots__ = (
        "speedup_calls",
        "states_expanded",
        "candidates_generated",
        "duplicates_pruned",
        "hardenings_generated",
        "limit_hits",
        "zero_round_checks",
        "zero_round_memo_hits",
        "task_failures",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> ChaseStats:
        return ChaseStats(**{name: getattr(self, name) for name in self.__slots__})

    def restore(self, data: dict[str, Any]) -> None:
        for name in self.__slots__:
            setattr(self, name, int(data.get(name, 0)))


# -- checkpoint / resume -------------------------------------------------------

#: Schema version of the chase checkpoint files.  They live in the same
#: ``cache_dir/checkpoints/`` directory as the lower-bound search's (the
#: ``chase_`` filename prefix keeps the two keyed apart) and follow the same
#: discipline: atomic writes, parameter fingerprinting, silent fresh start
#: on any mismatch, deletion on normal return.
CHASE_CHECKPOINT_VERSION = 1


def _state_to_dict(state: _ChaseState) -> dict[str, object]:
    return {
        "problem": state.problem.to_dict(),
        "steps": [step.to_dict() for step in state.steps],
        "chain_keys": list(state.chain_keys),
    }


def _state_from_dict(data: dict[str, Any]) -> _ChaseState:
    return _ChaseState(
        problem=Problem.from_dict(data["problem"]),
        steps=tuple(CertificateStep.from_dict(step) for step in data["steps"]),
        chain_keys=tuple(str(key) for key in data["chain_keys"]),
    )


def _checkpoint_path(cache_dir: str | Path, root_key: str) -> Path:
    # Root keys carry a "canon:" scheme prefix; keep filenames portable.
    slug = root_key.replace(":", "_")
    return Path(cache_dir) / "checkpoints" / f"chase_{slug}.json"


def _write_checkpoint(
    path: Path,
    fingerprint: dict[str, object],
    depth: int,
    beam: list[_ChaseState],
    visited: set[str],
    counters: _Counters,
) -> None:
    """Persist the chase loop's state after one completed depth, best effort."""
    atomic_write_json(
        path,
        {
            "version": CHASE_CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "depth": depth,
            "beam": [_state_to_dict(state) for state in beam],
            "visited": sorted(visited),
            "counters": counters.snapshot().to_dict(),
        },
    )


def _load_checkpoint(
    path: Path, fingerprint: dict[str, object]
) -> tuple[list[_ChaseState], set[str], dict[str, Any], int] | None:
    """Reconstruct ``(beam, visited, counters, completed_depth)``.

    Any corruption, schema mismatch, or parameter mismatch reads as "no
    checkpoint": the chase starts fresh, which is always correct, just
    slower.
    """
    payload = load_json(path)
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != CHASE_CHECKPOINT_VERSION:
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    try:
        beam = [_state_from_dict(state) for state in payload["beam"]]
        visited = {str(key) for key in payload["visited"]}
        depth = int(payload["depth"])
        counters = dict(payload["counters"])
    except (KeyError, TypeError, ValueError, AttributeError):
        return None
    if not beam or depth < 1:
        return None
    return beam, visited, counters, depth


def search_upper_bound(
    problem: Problem,
    *,
    engine: Engine | None = None,
    max_steps: int = 8,
    beam_width: int | None = None,
    max_hardenings: int | None = None,
    budget: int | None = None,
    checkpoint: bool = False,
    resume: bool = False,
) -> ChaseResult:
    """Automatically chase an upper-bound certificate for ``problem``.

    ``beam_width`` / ``max_hardenings`` / ``budget`` default to the engine's
    ``chase_beam_width`` / ``chase_max_hardenings`` / ``chase_budget``
    configuration; the engine supplies the derivation size guards, the memo
    cache, the worker pool, and the 0-round input setting (``orientations``)
    exactly as for :func:`~repro.search.driver.search_lower_bound`.  See the
    module docstring for the algorithm, and that function's docstring for
    the checkpoint/resume contract (identical here, with ``chase_``-prefixed
    files in the same directory).
    """
    if engine is None:
        from repro.engine import get_default_engine

        engine = get_default_engine()
    config = engine.config
    beam_width = config.chase_beam_width if beam_width is None else beam_width
    max_hardenings = (
        config.chase_max_hardenings if max_hardenings is None else max_hardenings
    )
    budget = config.chase_budget if budget is None else budget
    if max_steps < 1:
        raise ValueError("max_steps must be positive")
    if beam_width < 1 or max_hardenings < 0 or budget < 1:
        raise ValueError(
            "beam_width and budget must be positive, max_hardenings >= 0"
        )
    orientations = config.orientations

    counters = _Counters()
    memo = engine.zero_round_memo

    def witness_for(candidate: Problem) -> ZeroRoundWitness | None:
        """The actual 0-round algorithm for ``candidate``, in the run's setting.

        Always recomputed by the witness-producing procedures on the
        *uncompressed* problem (the certificate's terminal must name and
        solve the chain's real final problem).  Returning None against a
        memoised "solvable" verdict means the memo was wrong (a poisoned
        shared cache file); the caller must then treat the candidate as
        unsolvable -- the chase may lose a bound but can never emit a
        certificate it cannot witness.
        """
        if orientations:
            return zero_round_with_orientations(candidate)
        return zero_round_no_input(candidate)

    def finish_stats() -> ChaseStats:
        return counters.snapshot()

    root_compressed = problem.compressed()
    root_key = canonical_hash(root_compressed)

    checkpointing = checkpoint or resume
    checkpoint_file: Path | None = None
    if checkpointing and config.cache_dir is not None:
        checkpoint_file = _checkpoint_path(config.cache_dir, root_key)
        checkpoint_file.parent.mkdir(parents=True, exist_ok=True)
        # Reclaim temp files that interrupted runs (search or chase; the
        # directory is shared) abandoned next to the checkpoints.
        sweep_stale_tmp_files(checkpoint_file.parent)
    fingerprint: dict[str, object] = {
        "root_key": root_key,
        "max_steps": max_steps,
        "beam_width": beam_width,
        "max_hardenings": max_hardenings,
        "budget": budget,
        "orientations": orientations,
    }

    def discard_checkpoint() -> None:
        if checkpoint_file is not None:
            with contextlib.suppress(OSError):
                checkpoint_file.unlink(missing_ok=True)

    # The root check is the witness computation itself: a solvable root is
    # a 0-step certificate, and the witness must exist for the uncompressed
    # problem anyway.  The boolean still lands in the shared memo so later
    # searches reuse it.
    counters.zero_round_checks += 1
    root_witness = witness_for(problem)
    if memo is not None:
        memo.store(
            ZeroRoundMemo.key_from_hash(root_key, orientations),
            root_witness is not None,
        )
    if root_witness is not None:
        discard_checkpoint()
        return ChaseResult(
            problem=problem,
            kind=KIND_UPPER_BOUND,
            certificate=UpperBoundCertificate(
                initial=problem,
                witness=root_witness,
                steps=(),
                orientations=orientations,
            ),
            stats=finish_stats(),
        )

    root = _ChaseState(problem=problem, steps=(), chain_keys=(root_key,))
    beam = [root]
    visited = {root_key}
    start_depth = 1
    if resume and checkpoint_file is not None:
        restored = _load_checkpoint(checkpoint_file, fingerprint)
        if restored is not None:
            beam, visited, saved_counters, completed_depth = restored
            # The saved counters already include this run's root witness
            # check (the original run performed it too), so restoring
            # wholesale keeps the final stats identical to an
            # uninterrupted run.
            counters.restore(saved_counters)
            start_depth = completed_depth + 1

    plan = engine.fault_plan

    for depth in range(start_depth, max_steps + 1):
        # Each expansion costs at least one derivation (its own speedup), so
        # the remaining budget bounds how many states may expand; the exact
        # per-option charge happens on payload consumption below, which can
        # overshoot by at most the final expansion's hardening fan-out.
        to_expand = beam[: max(0, budget - counters.speedup_calls)]
        if not to_expand:
            break
        counters.states_expanded += len(to_expand)
        tasks: list[Task] = [
            ChaseTask(problem=state.problem, max_hardenings=max_hardenings)
            for state in to_expand
        ]
        payloads = engine.execute_batch(tasks)

        candidates: list[_ChaseState] = []
        frontier_keys: dict[str, int] = {}
        for state, payload in zip(to_expand, payloads):
            if isinstance(payload, TaskFailure):
                counters.task_failures += 1
                continue
            assert isinstance(payload, ChasePayload)
            counters.hardenings_generated += payload.hardenings_generated
            for option in payload.options:
                counters.speedup_calls += 1
                if option.limit_hit or option.result is None:
                    counters.limit_hits += 1
                    continue
                counters.candidates_generated += 1
                counters.zero_round_checks += 1
                if option.memo_hit:
                    counters.zero_round_memo_hits += 1
                move = option.move
                derived = option.result.full
                speedup_step = CertificateStep(
                    kind=SPEEDUP, problem=derived, speedup=option.result
                )
                if move is None:
                    steps = state.steps + (speedup_step,)
                else:
                    steps = state.steps + (
                        CertificateStep(
                            kind=HARDENING,
                            problem=move.target,
                            relaxation=move.certificate(),
                        ),
                        speedup_step,
                    )
                if option.solvable:
                    terminal_witness = witness_for(derived)
                    if terminal_witness is None:
                        # Memoised verdict contradicts the witness search:
                        # the shared memo is poisoned.  Treat the candidate
                        # as unsolvable (see witness_for) and keep chasing.
                        continue
                    certificate = UpperBoundCertificate(
                        initial=problem,
                        witness=terminal_witness,
                        steps=steps,
                        orientations=orientations,
                    )
                    discard_checkpoint()
                    return ChaseResult(
                        problem=problem,
                        kind=KIND_UPPER_BOUND,
                        certificate=certificate,
                        stats=finish_stats(),
                    )
                candidate = _ChaseState(
                    problem=derived,
                    steps=steps,
                    chain_keys=state.chain_keys + (option.key,),
                )
                earlier = frontier_keys.get(option.key)
                if earlier is not None:
                    # Same problem reached twice this depth: keep the better
                    # (smaller) chain description.
                    counters.duplicates_pruned += 1
                    if candidate.score < candidates[earlier].score:
                        candidates[earlier] = candidate
                    continue
                if option.key in visited:
                    # Revisiting any problem seen on any branch at an
                    # earlier depth cannot shorten the chain to a terminal.
                    counters.duplicates_pruned += 1
                    continue
                frontier_keys[option.key] = len(candidates)
                visited.add(option.key)
                candidates.append(candidate)

        if not candidates:
            break
        candidates.sort(key=lambda state: (state.score, state.chain_keys[-1]))
        beam = candidates[:beam_width]
        if checkpointing and checkpoint_file is not None:
            _write_checkpoint(
                checkpoint_file, fingerprint, depth, beam, visited, counters
            )
        if plan is not None and plan.should_abort_search(depth):
            # The deterministic stand-in for kill -9 in checkpoint/resume
            # tests: die right after the depth's state is durable.
            raise KeyboardInterrupt(f"injected chase abort after depth {depth}")

    discard_checkpoint()
    return ChaseResult(
        problem=problem,
        kind=KIND_EXHAUSTED,
        certificate=None,
        stats=finish_stats(),
    )
