"""The two-sided classifier: bracket a problem's round complexity.

Runs the lower-bound search (:mod:`repro.search.driver`) and the
upper-bound chase (:mod:`repro.search.upper`) on the same engine and folds
both certificates into one :class:`ComplexityBracket` -- the
automata-theoretic program of classifying LCL problems by certified
complexity intervals.  Bound semantics:

* a lower-bound chain of ``b`` speedup steps proves ``initial`` not
  solvable in ``b`` rounds, i.e. ``min_rounds = b + 1``;
* a lower-bound *fixed point* proves no finite bound exists
  (``unbounded``); the chase is then skipped entirely -- a 0-round-solvable
  terminal could never appear on any speedup chain from this problem, so
  every derivation the chase would spend is provably wasted;
* an upper-bound chain of ``k`` speedup steps ending in a witnessed
  0-round-solvable problem proves solvability in ``k`` rounds, i.e.
  ``max_rounds = k``.

The verdict is ``tight`` when the interval collapses (``min == max``, or
``unbounded`` -- Omega(log n) is this machinery's maximal statement, so an
unbounded lower bound is as closed as the bracket gets), ``gap`` when both
bounds exist but disagree, and ``open`` when the chase found no upper bound
within its caps.  Both certificates re-verify independently of the engine
that found them (:meth:`ComplexityBracket.verify`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.engine.engine import Engine

from repro.core.certificate import (
    MAX_CANDIDATE_CONFIGS,
    MAX_DERIVED_LABELS,
    CertificateError,
    LowerBoundCertificate,
    UpperBoundCertificate,
)
from repro.core.problem import Problem, ProblemError
from repro.search.driver import SearchResult, search_lower_bound
from repro.search.upper import ChaseResult, search_upper_bound

VERDICT_TIGHT = "tight"
VERDICT_GAP = "gap"
VERDICT_OPEN = "open"


@dataclass(frozen=True)
class BracketCheck:
    """The verdict of re-verifying a bracket's certificates from scratch."""

    valid: bool
    failures: tuple[str, ...]


@dataclass(frozen=True)
class ComplexityBracket:
    """A certified interval around one problem's round complexity.

    ``lower`` is None when the problem is 0-round solvable (no lower bound
    exists; ``min_rounds`` is 0).  ``upper`` is None when the chase found no
    upper bound (``max_rounds`` is None; verdict ``open``).  An unbounded
    ``lower`` (fixed point) makes ``min_rounds`` None and the verdict
    ``tight``: Omega(log n) is the strongest statement this machinery makes,
    and no finite upper bound can coexist with it.
    """

    problem: Problem
    lower: LowerBoundCertificate | None
    upper: UpperBoundCertificate | None

    def __post_init__(self) -> None:
        if self.lower is not None and self.lower.initial != self.problem:
            raise CertificateError(
                "lower certificate is not about the bracket's problem"
            )
        if self.upper is not None and self.upper.initial != self.problem:
            raise CertificateError(
                "upper certificate is not about the bracket's problem"
            )
        if self.unbounded and self.upper is not None:
            raise CertificateError(
                "an unbounded lower bound contradicts any finite upper bound"
            )
        min_rounds = self.min_rounds
        max_rounds = self.max_rounds
        if (
            min_rounds is not None
            and max_rounds is not None
            and min_rounds > max_rounds
        ):
            raise CertificateError(
                f"bracket is inverted: lower certifies >= {min_rounds} "
                f"round(s), upper certifies <= {max_rounds}"
            )

    @property
    def unbounded(self) -> bool:
        """True iff the lower certificate claims the pumpable fixed point."""
        return self.lower is not None and self.lower.unbounded

    @property
    def min_rounds(self) -> int | None:
        """Certified minimum rounds (None when unbounded: no finite minimum)."""
        if self.unbounded:
            return None
        if self.lower is None:
            return 0
        return self.lower.claimed_bound + 1

    @property
    def max_rounds(self) -> int | None:
        """Certified maximum rounds (None when no upper bound was found)."""
        if self.upper is None:
            return None
        return self.upper.claimed_rounds

    @property
    def verdict(self) -> str:
        if self.unbounded:
            return VERDICT_TIGHT
        if self.upper is None:
            return VERDICT_OPEN
        if self.min_rounds == self.max_rounds:
            return VERDICT_TIGHT
        return VERDICT_GAP

    # -- verification --------------------------------------------------------

    def verify(
        self,
        *,
        max_derived_labels: int = MAX_DERIVED_LABELS,
        max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    ) -> BracketCheck:
        """Re-verify every certificate present, independent of any search.

        Delegates to the certificates' own ``verify()`` (full re-derivation
        of every link); failures come back prefixed ``lower:`` / ``upper:``.
        A bracket with no certificates at all (0-round-solvable problem the
        chase also failed on cannot occur; but ``lower=None, upper=None`` is
        constructible) verifies vacuously.
        """
        failures: list[str] = []
        if self.lower is not None:
            check = self.lower.verify(
                max_derived_labels=max_derived_labels,
                max_candidate_configs=max_candidate_configs,
            )
            failures.extend(f"lower: {failure}" for failure in check.failures)
        if self.upper is not None:
            check = self.upper.verify(
                max_derived_labels=max_derived_labels,
                max_candidate_configs=max_candidate_configs,
            )
            failures.extend(f"upper: {failure}" for failure in check.failures)
        return BracketCheck(valid=not failures, failures=tuple(failures))

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`); see docs/API.md.

        The derived fields (``min_rounds`` / ``max_rounds`` / ``unbounded``
        / ``verdict``) are serialized redundantly for consumers, and
        :meth:`from_dict` cross-checks them against recomputation so a
        tampered summary cannot disagree with its certificates.
        """
        return {
            "version": 1,
            "problem": self.problem.to_dict(),
            "lower": None if self.lower is None else self.lower.to_dict(),
            "upper": None if self.upper is None else self.upper.to_dict(),
            "min_rounds": self.min_rounds,
            "max_rounds": self.max_rounds,
            "unbounded": self.unbounded,
            "verdict": self.verdict,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ComplexityBracket":
        """Rebuild a bracket; raises :class:`CertificateError` when malformed."""
        try:
            bracket = ComplexityBracket(
                problem=Problem.from_dict(data["problem"]),
                lower=(
                    None
                    if data["lower"] is None
                    else LowerBoundCertificate.from_dict(data["lower"])
                ),
                upper=(
                    None
                    if data["upper"] is None
                    else UpperBoundCertificate.from_dict(data["upper"])
                ),
            )
        except CertificateError:
            raise
        except (KeyError, TypeError, AttributeError, ProblemError, ValueError) as exc:
            raise CertificateError(f"malformed bracket payload: {exc!r}") from exc
        for field in ("min_rounds", "max_rounds", "unbounded", "verdict"):
            if field not in data:
                raise CertificateError(f"bracket payload is missing {field!r}")
            if data[field] != getattr(bracket, field):
                raise CertificateError(
                    f"bracket payload's {field}={data[field]!r} disagrees with "
                    f"its certificates ({getattr(bracket, field)!r})"
                )
        return bracket

    # -- presentation ----------------------------------------------------------

    def describe(self) -> str:
        """One-line interval rendering, e.g. ``[1, 1] tight``."""
        if self.unbounded:
            return "[Omega(log n)] tight"
        low = self.min_rounds
        high = "?" if self.max_rounds is None else str(self.max_rounds)
        return f"[{low}, {high}] {self.verdict}"


@dataclass(frozen=True)
class ClassifyResult:
    """Outcome of ``Engine.classify``: the bracket plus both search reports.

    ``upper_result`` is None when the chase was skipped (unbounded lower
    bound -- see the module docstring).
    """

    problem: Problem
    bracket: ComplexityBracket
    lower_result: SearchResult
    upper_result: ChaseResult | None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form -- the payload of ``python -m repro classify --json``."""
        return {
            "problem": self.problem.to_dict(),
            "bracket": self.bracket.to_dict(),
            "lower_result": self.lower_result.to_dict(),
            "upper_result": (
                None if self.upper_result is None else self.upper_result.to_dict()
            ),
        }

    def summary(self) -> str:
        lines = [
            f"classification of {self.problem.name}: "
            f"{self.bracket.describe()}"
        ]
        bracket = self.bracket
        if bracket.unbounded:
            lines.append(
                "lower: pumpable fixed point -- Omega(log n) on "
                "bounded-degree high-girth classes (chase skipped: no "
                "finite upper bound can exist)"
            )
        elif bracket.lower is None:
            lines.append("lower: problem is 0-round solvable; no lower bound")
        else:
            lines.append(
                f"lower: not solvable in {bracket.lower.claimed_bound} "
                f"round(s) => at least {bracket.min_rounds}"
            )
        if bracket.upper is not None:
            lines.append(
                f"upper: solvable in {bracket.upper.claimed_rounds} round(s) "
                f"(witnessed 0-round terminal)"
            )
        elif not bracket.unbounded:
            lines.append("upper: no certificate within the chase caps")
        return "\n".join(lines)


def classify(
    problem: Problem,
    *,
    engine: Engine | None = None,
    max_steps: int = 8,
    beam_width: int | None = None,
    max_moves: int | None = None,
    budget: int | None = None,
    chase_beam_width: int | None = None,
    chase_max_hardenings: int | None = None,
    chase_budget: int | None = None,
    checkpoint: bool = False,
    resume: bool = False,
) -> ClassifyResult:
    """Bracket ``problem``'s round complexity with certificates on both sides.

    Runs :func:`~repro.search.driver.search_lower_bound` first (its knobs:
    ``beam_width`` / ``max_moves`` / ``budget``), then -- unless the lower
    bound came back unbounded -- :func:`~repro.search.upper.
    search_upper_bound` (its knobs: ``chase_beam_width`` /
    ``chase_max_hardenings`` / ``chase_budget``), both to depth
    ``max_steps`` on the same engine, sharing its speedup cache and 0-round
    memo (the chase re-derives the very chain prefix the search walked, so
    the cache typically pays for the whole second pass).
    ``checkpoint``/``resume`` apply to both phases; their checkpoint files
    share ``cache_dir/checkpoints/`` under distinct prefixes, and a resumed
    classification re-runs the (cache-warm) lower search before resuming
    the chase.
    """
    if engine is None:
        from repro.engine import get_default_engine

        engine = get_default_engine()
    lower_result = search_lower_bound(
        problem,
        engine=engine,
        max_steps=max_steps,
        beam_width=beam_width,
        max_moves=max_moves,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
    )
    if lower_result.unbounded:
        bracket = ComplexityBracket(
            problem=problem, lower=lower_result.certificate, upper=None
        )
        return ClassifyResult(
            problem=problem,
            bracket=bracket,
            lower_result=lower_result,
            upper_result=None,
        )
    upper_result = search_upper_bound(
        problem,
        engine=engine,
        max_steps=max_steps,
        beam_width=chase_beam_width,
        max_hardenings=chase_max_hardenings,
        budget=chase_budget,
        checkpoint=checkpoint,
        resume=resume,
    )
    bracket = ComplexityBracket(
        problem=problem,
        lower=lower_result.certificate,
        upper=upper_result.certificate,
    )
    return ClassifyResult(
        problem=problem,
        bracket=bracket,
        lower_result=lower_result,
        upper_result=upper_result,
    )
