"""The round-elimination engine: problems, speedup, simplification, pipelines.

This package is the reproduction of the paper's core contribution
(Theorems 1 and 2 and the Section 2.1 workflow):

* :mod:`repro.core.problem` -- locally checkable problems at fixed degree;
* :mod:`repro.core.alphabet` -- the bitmask kernel: interned alphabets,
  label sets as integer masks, the engine's derivation hot paths;
* :mod:`repro.core.family` -- degree-indexed families (the paper's f, g, h);
* :mod:`repro.core.format` -- textual syntax (Round-Eliminator compatible);
* :mod:`repro.core.galois` -- the compatibility Galois connection;
* :mod:`repro.core.speedup` -- the Pi -> Pi_{1/2} -> Pi_1 derivations;
* :mod:`repro.core.zero_round` -- 0-round solvability decision procedures;
* :mod:`repro.core.isomorphism` -- problem equivalence / fixed-point tests;
* :mod:`repro.core.relaxation` -- certified relaxations and hardenings;
* :mod:`repro.core.sequence` -- the iterated pipeline with lower-bound output.
"""

from repro.core.alphabet import Alphabet, InternedProblem, intern, short_names
from repro.core.canonical import CanonicalForm, canonical_form, canonical_hash
from repro.core.certificate import (
    HARDENING,
    RELAXATION,
    SPEEDUP,
    TERMINAL_FIXED_POINT,
    TERMINAL_UNSOLVABLE,
    CertificateCheck,
    CertificateError,
    CertificateStep,
    LowerBoundCertificate,
    UpperBoundCertificate,
)
from repro.core.diagram import Diagram, compute_diagram, merge_equivalent_labels, replaceable
from repro.core.family import ProblemFamily
from repro.core.format import format_problem, parse_problem
from repro.core.galois import Compatibility
from repro.core.isomorphism import are_isomorphic, find_isomorphism
from repro.core.problem import (
    EdgeConfig,
    Label,
    NodeConfig,
    Problem,
    ProblemError,
    edge_config,
    node_config,
)
from repro.core.relaxation import (
    RelaxationCertificate,
    certify_relaxation,
    find_relaxation_map,
    is_harder_restriction,
    is_relaxation_map,
)
from repro.core.sequence import EliminationResult, SequenceStep, run_round_elimination
from repro.core.speedup import (
    EngineLimitError,
    HalfStepResult,
    SpeedupResult,
    compute_speedup,
    full_step,
    half_step,
    iterate_speedup,
    set_label_name,
    speedup,
)
from repro.core.zero_round import (
    ZeroRoundWitness,
    check_zero_round_witness,
    is_zero_round_solvable,
    zero_round_no_input,
    zero_round_with_orientations,
)

__all__ = [
    "HARDENING",
    "RELAXATION",
    "SPEEDUP",
    "TERMINAL_FIXED_POINT",
    "TERMINAL_UNSOLVABLE",
    "Alphabet",
    "CanonicalForm",
    "CertificateCheck",
    "CertificateError",
    "CertificateStep",
    "Compatibility",
    "Diagram",
    "EdgeConfig",
    "EliminationResult",
    "EngineLimitError",
    "HalfStepResult",
    "InternedProblem",
    "Label",
    "LowerBoundCertificate",
    "NodeConfig",
    "Problem",
    "ProblemError",
    "ProblemFamily",
    "RelaxationCertificate",
    "SequenceStep",
    "SpeedupResult",
    "UpperBoundCertificate",
    "ZeroRoundWitness",
    "are_isomorphic",
    "canonical_form",
    "canonical_hash",
    "certify_relaxation",
    "check_zero_round_witness",
    "compute_diagram",
    "compute_speedup",
    "edge_config",
    "find_isomorphism",
    "find_relaxation_map",
    "format_problem",
    "full_step",
    "half_step",
    "intern",
    "is_harder_restriction",
    "is_relaxation_map",
    "is_zero_round_solvable",
    "merge_equivalent_labels",
    "iterate_speedup",
    "node_config",
    "parse_problem",
    "replaceable",
    "run_round_elimination",
    "set_label_name",
    "short_names",
    "speedup",
    "zero_round_no_input",
    "zero_round_with_orientations",
]
