"""Degree-indexed problem families: the paper's ``(O, f, g, h)`` quadruples.

The paper's problem definition fixes functions ``f, g, h`` of the maximum
degree delta.  A :class:`ProblemFamily` wraps a builder callable
``delta -> Problem`` together with a validity predicate (for example,
superweak k-coloring is defined for ``delta >= 1`` but its lower-bound lemmas
need large delta).  Families are what the catalog in
:mod:`repro.problems.catalog` exposes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.problem import Problem


@dataclass(frozen=True)
class ProblemFamily:
    """A problem for every maximum degree: ``family(delta) -> Problem``."""

    name: str
    builder: Callable[[int], Problem]
    min_delta: int = 1
    description: str = ""

    def __call__(self, delta: int) -> Problem:
        if delta < self.min_delta:
            raise ValueError(
                f"{self.name} requires delta >= {self.min_delta}, got {delta}"
            )
        problem = self.builder(delta)
        if problem.delta != delta:
            raise ValueError(
                f"builder for {self.name} returned delta={problem.delta}, "
                f"expected {delta}"
            )
        return problem

    def instances(self, deltas: list[int]) -> list[Problem]:
        """Instantiate the family at each degree in ``deltas``."""
        return [self(delta) for delta in deltas]
