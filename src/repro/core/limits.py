"""The derivation size-limit exception, in a dependency-free module.

:class:`EngineLimitError` is raised wherever a derivation would exceed the
configured size limits.  It historically lived in :mod:`repro.core.speedup`
(which re-exports it, so existing import sites keep working); it moved here
so that lower layers the speedup module itself depends on -- the Galois
machinery's closed-set enumeration in :mod:`repro.core.galois` -- can raise
it without an import cycle.
"""

from __future__ import annotations


class EngineLimitError(RuntimeError):
    """Raised when a derivation would exceed the configured size limits.

    Attributes
    ----------
    limit_name:
        Which configured limit tripped: ``"max_derived_labels"`` or
        ``"max_candidate_configs"`` (both are :class:`repro.engine.EngineConfig`
        knobs).
    limit:
        The configured value of that limit.
    observed:
        The count the derivation hit (or predicted) when it gave up; always
        greater than ``limit``.
    """

    def __init__(
        self,
        message: str,
        *,
        limit_name: str | None = None,
        limit: int | None = None,
        observed: int | None = None,
    ):
        super().__init__(message)
        self.limit_name = limit_name
        self.limit = limit
        self.observed = observed

    def __reduce__(self) -> tuple[object, ...]:
        # The default exception reduce replays only ``args``, so the limit
        # attributes would be dropped when the error crosses a process-pool
        # boundary; carry them as state so remote failures stay inspectable.
        state = {
            "limit_name": self.limit_name,
            "limit": self.limit,
            "observed": self.observed,
        }
        return (self.__class__, (str(self),), state)
