"""The derivation size-limit exception, in a dependency-free module.

:class:`EngineLimitError` is raised wherever a derivation would exceed the
configured size limits.  It historically lived in :mod:`repro.core.speedup`
(which re-exports it, so existing import sites keep working); it moved here
so that lower layers the speedup module itself depends on -- the Galois
machinery's closed-set enumeration in :mod:`repro.core.galois` -- can raise
it without an import cycle.
"""

from __future__ import annotations


class EngineLimitError(RuntimeError):
    """Raised when a derivation would exceed the configured size limits.

    Attributes
    ----------
    limit_name:
        Which configured limit tripped: ``"max_derived_labels"``,
        ``"max_candidate_configs"``, or ``"max_live_configs"`` (all are
        :class:`repro.engine.EngineConfig` knobs).  ``max_live_configs`` is
        the streaming full step's memory cap on the undominated candidate
        frontier; it replaced the a-priori candidate-grid refusal, so
        ``max_candidate_configs`` trips on the simplified full step now
        report incremental enumeration *work*, not a predicted grid size.
    limit:
        The configured value of that limit.
    observed:
        The count the derivation hit (or predicted) when it gave up; always
        greater than ``limit``.
    """

    #: Every limit name this error can carry -- the stable vocabulary of the
    #: :meth:`to_dict` wire format.
    LIMIT_NAMES = ("max_derived_labels", "max_candidate_configs", "max_live_configs")

    def __init__(
        self,
        message: str,
        *,
        limit_name: str | None = None,
        limit: int | None = None,
        observed: int | None = None,
    ):
        super().__init__(message)
        self.limit_name = limit_name
        self.limit = limit
        self.observed = observed

    def to_dict(self) -> dict[str, object]:
        """Stable JSON shape for limit trips.

        ``limit_name`` is always one of :data:`LIMIT_NAMES` (or ``None`` for
        pre-attribute errors), so consumers can switch on it without parsing
        the message -- including the streaming full step's
        ``"max_live_configs"``, which older schema readers should treat like
        the grid refusals it replaced.
        """
        return {
            "error": "engine_limit",
            "message": str(self),
            "limit_name": self.limit_name,
            "limit": self.limit,
            "observed": self.observed,
        }

    def __reduce__(self) -> tuple[object, ...]:
        # The default exception reduce replays only ``args``, so the limit
        # attributes would be dropped when the error crosses a process-pool
        # boundary; carry them as state so remote failures stay inspectable.
        state = {
            "limit_name": self.limit_name,
            "limit": self.limit,
            "observed": self.observed,
        }
        return (self.__class__, (str(self),), state)
