"""Interned label alphabets: the bitmask kernel behind every hot path.

Every derivation in this library ultimately manipulates *sets of labels* and
*multisets of labels* -- half-step labels are subsets of the alphabet, the
Galois connection intersects them, the full step orders them by inclusion,
0-round search unions them, and canonical hashing refines partitions of them.
Representing those sets as ``frozenset[str]`` makes each elementary operation
(a subset test, an intersection, a hash) allocate and walk hash tables of
strings.

This module interns a problem's alphabet into *bit positions* so that a label
set becomes a plain Python ``int`` (a bitmask) and every hot operation
becomes one machine-word-ish integer instruction:

=====================  ==========================
frozenset operation    bitmask equivalent
=====================  ==========================
``a <= b``             ``a & ~b == 0``
``a & b``              ``a & b``
``a | b``              ``a | b``
``len(a)``             ``a.bit_count()``
``hash(a)``            ``hash(int)`` (trivial)
sorted canonical form  the integer itself
=====================  ==========================

The :class:`Alphabet` owns the int<->name mapping, so the string API of
:class:`~repro.core.problem.Problem` remains the only public surface; masks
never leak into wire formats or result dataclasses.  :func:`intern` attaches
a cached :class:`InternedProblem` view (index-tuple configurations, adjacency
masks, per-configuration position masks) to each problem, so repeated
derivations over the same problem pay the interning cost once.

Bit positions follow the *sorted order of the label names*.  This invariant
is load-bearing: a tuple of indices in non-decreasing order converts to a
canonically sorted name tuple, and lexicographic comparison of index tuples
equals lexicographic comparison of sorted name lists, which is how the kernel
reproduces the legacy string path's deterministic orderings bit for bit (see
``core/_legacy.py`` and the differential tests).
"""

from __future__ import annotations

import string
from collections.abc import Collection, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Literal

from repro.core.problem import Label, Problem

if TYPE_CHECKING:
    from typing import NewType

    #: A set of labels as an integer bitset over this alphabet's positions.
    LabelMask = NewType("LabelMask", int)
    #: A single bit *position* (0-based index into ``Alphabet.names``).
    LabelIndex = NewType("LabelIndex", int)
    #: The canonical problem hash (``repro.core.canonical.canonical_hash``).
    CanonicalHash = NewType("CanonicalHash", str)
else:
    # Runtime aliases: masks/indices ARE ints and hashes ARE strs; the
    # distinct types exist only for the type checker, so the hot loops pay
    # nothing (``LabelMask(x)`` degrades to the identity ``int(x)``).
    LabelMask = int
    LabelIndex = int
    CanonicalHash = str

#: PR 5's certificate direction tags as a closed type: a certificate step
#: either relaxes (target no harder) or hardens (target no easier).  The
#: runtime constants live in :mod:`repro.core.relaxation`.
Direction = Literal["relaxation", "hardening"]

__all__ = [
    "Alphabet",
    "CanonicalHash",
    "Direction",
    "InternedProblem",
    "LabelIndex",
    "LabelMask",
    "intern",
    "iter_bits",
    "mask_matching_exists",
    "set_label_name",
    "short_names",
]


def iter_bits(mask: LabelMask | int) -> Iterator[LabelIndex]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    remaining = int(mask)
    while remaining:
        low = remaining & -remaining
        yield LabelIndex(low.bit_length() - 1)
        remaining ^= low


class Alphabet:
    """An immutable interning of label names into bit positions.

    ``names[i]`` is the label at bit ``i``; bits are assigned in sorted name
    order (see the module docstring for why that order matters).
    """

    __slots__ = ("names", "index", "size", "full_mask")

    def __init__(self, labels: Iterable[Label]):
        self.names: tuple[Label, ...] = tuple(sorted(labels))
        self.index: dict[Label, LabelIndex] = {
            name: LabelIndex(i) for i, name in enumerate(self.names)
        }
        self.size: int = len(self.names)
        self.full_mask: LabelMask = LabelMask((1 << self.size) - 1)

    def bit(self, label: Label) -> LabelMask:
        """The single-bit mask of one label."""
        return LabelMask(1 << self.index[label])

    def mask(self, labels: Iterable[Label]) -> LabelMask:
        """The bitmask of a set of labels."""
        index = self.index
        result = 0
        for label in labels:
            result |= 1 << index[label]
        return LabelMask(result)

    def indices(self, mask: LabelMask) -> tuple[LabelIndex, ...]:
        """The sorted bit positions of ``mask``."""
        return tuple(iter_bits(mask))

    def members(self, mask: LabelMask) -> tuple[Label, ...]:
        """The labels of ``mask`` in sorted name order."""
        names = self.names
        return tuple(names[i] for i in iter_bits(mask))

    def label_set(self, mask: LabelMask) -> frozenset[Label]:
        """The labels of ``mask`` as a frozenset (the legacy representation)."""
        return frozenset(self.members(mask))

    def config(self, indices: Sequence[LabelIndex]) -> tuple[Label, ...]:
        """Convert a non-decreasing index tuple to a canonical name tuple."""
        names = self.names
        return tuple(names[i] for i in indices)

    def __len__(self) -> int:  # pragma: no cover - convenience
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Alphabet({self.size} labels)"


class InternedProblem:
    """The bitmask view of one :class:`~repro.core.problem.Problem`.

    Attributes
    ----------
    alphabet:
        The label<->bit mapping.
    adjacency:
        ``adjacency[i]`` is the mask of labels ``j`` with ``{i, j}`` in the
        edge constraint -- the singleton polar of label ``i``, and the
        building block of every compatibility / Galois computation.
    edge_pairs:
        The edge constraint as ``(i, j)`` index pairs with ``i <= j``.
    node_configs:
        The node constraint as sorted index tuples, in sorted order (which
        coincides with the legacy sorted-name-tuple order).
    node_config_set:
        The same tuples as a set, for O(1) membership tests.
    config_supports:
        Per configuration, the mask of labels occurring in it.
    config_position_masks:
        Per configuration, a dict ``label index -> mask of positions`` (bits
        over ``range(delta)``) where that label sits -- the adjacency the
        set-of-labels realizability matching runs on.
    """

    __slots__ = (
        "problem",
        "alphabet",
        "adjacency",
        "edge_pairs",
        "node_configs",
        "node_config_set",
        "config_supports",
        "config_position_masks",
        "_label_configs",
        "_stronger_masks",
    )

    def __init__(self, problem: Problem):
        self.problem = problem
        alphabet = Alphabet(problem.labels)
        self.alphabet = alphabet
        index = alphabet.index

        adjacency = [0] * alphabet.size
        edge_pairs = set()
        for a, b in problem.edge_constraint:
            ia, ib = index[a], index[b]
            adjacency[ia] |= 1 << ib
            adjacency[ib] |= 1 << ia
            edge_pairs.add((ia, ib) if ia <= ib else (ib, ia))
        self.adjacency: tuple[LabelMask, ...] = tuple(
            LabelMask(mask) for mask in adjacency
        )
        self.edge_pairs: frozenset[tuple[LabelIndex, LabelIndex]] = frozenset(
            edge_pairs
        )

        configs = sorted(
            tuple(index[label] for label in config)
            for config in problem.node_constraint
        )
        self.node_configs: tuple[tuple[LabelIndex, ...], ...] = tuple(configs)
        self.node_config_set: frozenset[tuple[LabelIndex, ...]] = frozenset(configs)

        supports = []
        position_masks = []
        for config in configs:
            support = 0
            positions: dict[LabelIndex, int] = {}
            for position, label_index in enumerate(config):
                support |= 1 << label_index
                positions[label_index] = positions.get(label_index, 0) | (1 << position)
            supports.append(support)
            position_masks.append(positions)
        self.config_supports: tuple[LabelMask, ...] = tuple(
            LabelMask(mask) for mask in supports
        )
        self.config_position_masks: tuple[dict[LabelIndex, int], ...] = tuple(
            position_masks
        )
        self._label_configs: tuple[tuple[int, ...], ...] | None = None
        # Strength-diagram cache slot, owned by repro.core.diagram: the move
        # generator and the search driver share one diagram per problem
        # instance instead of recomputing the quadratic replaceability grid
        # per move (see compute_stronger_masks).
        self._stronger_masks: tuple[LabelMask, ...] | None = None

    def configs_with_label(self, label_index: LabelIndex) -> tuple[int, ...]:
        """Indices into ``node_configs`` of the configurations using a label.

        The inverted index is built lazily on first use (diagram computation
        and mask-level move generation scan per-label configuration lists;
        plain derivations never need it) and cached for the problem's
        lifetime.
        """
        if self._label_configs is None:
            per_label: list[list[int]] = [[] for _ in range(self.alphabet.size)]
            for config_index, support in enumerate(self.config_supports):
                for label in iter_bits(support):
                    per_label[label].append(config_index)
            self._label_configs = tuple(tuple(rows) for rows in per_label)
        return self._label_configs[label_index]

    def mask(self, labels: Iterable[Label]) -> LabelMask:
        return self.alphabet.mask(labels)


def intern(problem: Problem) -> InternedProblem:
    """The cached bitmask view of ``problem`` (built once per instance).

    The view is stored in the problem's ``__dict__`` (problems are frozen
    dataclasses, but like ``functools.cached_property`` -- which
    :class:`Problem` already uses -- this bypasses the frozen ``__setattr__``
    without mutating any dataclass field).
    """
    cached = problem.__dict__.get("_interned")
    if cached is None:
        cached = InternedProblem(problem)
        problem.__dict__["_interned"] = cached
    return cached


def mask_matching_exists(position_masks: Sequence[int]) -> bool:
    """True iff every slot can claim a *distinct* position from its mask.

    ``position_masks[s]`` is the bitmask of positions slot ``s`` may take.
    Kuhn's augmenting-path algorithm over bitmask adjacency; instances are
    tiny (at most ``delta`` slots), so the recursion is shallow.
    """
    owner: dict[int, int] = {}

    def augment(slot: int, visited: list[int]) -> bool:
        available = position_masks[slot] & ~visited[0]
        while available:
            low = available & -available
            available ^= low
            visited[0] |= low
            position = low.bit_length() - 1
            holder = owner.get(position)
            if holder is None or augment(holder, visited):
                owner[position] = slot
                return True
        return False

    for slot, mask in enumerate(position_masks):
        if not mask:
            return False
        if not augment(slot, [0]):
            return False
    return True


# -- derived-label naming ----------------------------------------------------
#
# The naming helpers live with the kernel because the Alphabet owns the
# int<->name mapping: every derived label name is produced from a mask via
# these two functions, and the engine cache's renaming translation
# (repro.engine.cache) must produce byte-identical names.

_ESCAPED = ("\\", "{", "}", ",")


def _escape_member(name: Label) -> Label:
    """Escape a member name so ``set_label_name`` is injective on sets.

    Ordinary labels pass through untouched (so existing derivations keep
    their exact names); only members containing one of ``\\ { } ,`` -- which
    would make distinct sets alias (e.g. ``{"a,b"}`` vs ``{"a", "b"}``) --
    get backslash-escaped.
    """
    if not any(ch in name for ch in _ESCAPED):
        return name
    for ch in _ESCAPED:
        name = name.replace(ch, "\\" + ch)
    return name


def set_label_name(members: Iterable[Label]) -> Label:
    """Canonical display name for a set-valued label: ``{a,b,c}``.

    Members sort by their raw names; members containing braces, commas or
    backslashes are escaped so that distinct sets always get distinct names
    (two distinct escaped member sequences can never join to the same
    string, because escaped members contain no unescaped comma).
    """
    return "{" + ",".join(_escape_member(m) for m in sorted(members)) + "}"


def short_names(count: int, avoid: Collection[Label] = ()) -> list[Label]:
    """Deterministic short label names: A..Z then L26, L27, ...

    Names in ``avoid`` are skipped (the candidate stream keeps advancing, so
    the result stays deterministic): the full step passes the input problem's
    own alphabet here so a derived label can never collide with -- and
    silently shadow -- a pre-existing user label like ``A`` or ``L26``.
    """
    avoid_set = set(avoid)
    letters = string.ascii_uppercase
    names: list[Label] = []
    candidate_index = 0
    while len(names) < count:
        if candidate_index < len(letters):
            candidate = letters[candidate_index]
        else:
            candidate = f"L{candidate_index}"
        candidate_index += 1
        if candidate in avoid_set:
            continue
        names.append(candidate)
    return names
