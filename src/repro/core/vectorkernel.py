"""The bit-packed vector kernel tier (numpy-backed, optional).

PR 3 moved the derivation hot path onto pure-Python big-int bitmasks; this
module adds the next tier: label masks packed into ``uint64`` numpy rows
(problems with more than 64 derived labels spill to multi-word rows) so the
three hot folds -- the Galois closed-set fixed point, the Hall/matching
feasibility tests over position masks, and the filter/antichain enumeration
with domination filtering -- evaluate thousands of candidate masks per
vector operation instead of one at a time.

Design contract: every batched fold here is *exactly equivalent* to its
scalar counterpart in :mod:`repro.core.galois` / :mod:`repro.core.speedup`,
including ``EngineLimitError`` trip points and ``observed`` counts; the
differential suite (``tests/test_vectorkernel.py``) asserts byte-identical
results over the catalog and hundreds of seeded random problems.  That is
what lets the engine treat the kernel choice as a pure performance knob:
cached results, certificates, and JSON payloads are independent of it.

numpy stays an *optional* dependency.  :func:`get_numpy` returns ``None``
when numpy is missing, too old (``bitwise_count`` needs numpy >= 2), or
disabled via the ``REPRO_NO_NUMPY`` environment variable (the CI
numpy-absent matrix leg); every caller then falls back to the big-int path.
:func:`resolve_kernel` centralises the ``"auto" | "mask" | "vector"``
selection, degrading ``"vector"`` gracefully to ``"mask"`` when numpy is
unusable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.limits import EngineLimitError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

__all__ = [
    "KERNEL_NAMES",
    "KernelStats",
    "get_numpy",
    "vector_ready",
    "resolve_kernel",
    "words_for",
    "pack_masks",
    "unpack_masks",
    "closed_masks_vector",
    "enumerate_filters_vector",
    "AllowsTable",
    "VectorFrontier",
    "existential_edge_pairs",
]

#: Kernel selection values accepted by :func:`resolve_kernel` and
#: :class:`repro.engine.EngineConfig`.
KERNEL_NAMES: tuple[str, ...] = ("auto", "mask", "vector")

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1

# Import result cache: ``None`` means "not yet probed".  The REPRO_NO_NUMPY
# override is re-read per call so a test can flip it without reloading the
# module; the import itself is probed once.
_numpy_probe: tuple["numpy", ...] | tuple[None] | None = None


def get_numpy() -> Any | None:
    """The numpy module when the vector tier can use it, else ``None``.

    Requires ``numpy.bitwise_count`` (numpy >= 2) for packed popcounts.
    Honors ``REPRO_NO_NUMPY`` (any non-empty value disables the vector
    tier), which is how the CI fallback leg proves the big-int path passes
    identically without numpy installed.
    """
    global _numpy_probe
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    if _numpy_probe is None:
        try:
            import numpy
        except ImportError:
            _numpy_probe = (None,)
        else:
            _numpy_probe = (numpy,) if hasattr(numpy, "bitwise_count") else (None,)
    return _numpy_probe[0]


def vector_ready() -> bool:
    """True iff ``resolve_kernel("auto")`` would pick the vector tier."""
    return get_numpy() is not None


def resolve_kernel(kernel: str) -> str:
    """Resolve a kernel selection to the concrete tier: ``mask`` or ``vector``.

    ``"auto"`` picks ``"vector"`` when numpy is usable, else ``"mask"``;
    an explicit ``"vector"`` also degrades to ``"mask"`` when numpy is
    unusable (the knob is a performance preference, never a hard
    requirement -- results are identical either way).
    """
    if kernel not in KERNEL_NAMES:
        raise ValueError(f"kernel must be one of {KERNEL_NAMES}, got {kernel!r}")
    if kernel == "mask":
        return "mask"
    return "vector" if vector_ready() else "mask"


@dataclass
class KernelStats:
    """Per-fold wall-clock counters for one speedup derivation.

    Attached to :class:`repro.core.speedup.SpeedupResult` out-of-band (via
    the instance ``__dict__``, never serialized into ``to_dict`` -- the JSON
    payload stays byte-deterministic) and surfaced as benchmark columns by
    ``benchmarks/run_speedup_bench.py --kernel NAME``.

    The phases partition the derivation: ``closed_sets_s`` is the half
    step's Galois closed-set fixed point, ``enumeration_s`` the
    filter/antichain enumeration, ``matching_s`` the prefix-completion
    walk (dominated by Hall/matching feasibility checks), ``domination_s``
    the streaming domination frontier, and ``materialise_s`` the derived
    problem construction tail.
    """

    kernel: str = "mask"
    closed_sets_s: float = 0.0
    enumeration_s: float = 0.0
    matching_s: float = 0.0
    domination_s: float = 0.0
    materialise_s: float = 0.0
    matching_calls: int = 0
    configs_streamed: int = 0
    frontier_peak: int = 0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (benchmark rows; not part of result payloads)."""
        return {
            "kernel": self.kernel,
            "closed_sets_s": round(self.closed_sets_s, 6),
            "enumeration_s": round(self.enumeration_s, 6),
            "matching_s": round(self.matching_s, 6),
            "domination_s": round(self.domination_s, 6),
            "materialise_s": round(self.materialise_s, 6),
            "matching_calls": self.matching_calls,
            "configs_streamed": self.configs_streamed,
            "frontier_peak": self.frontier_peak,
        }


# -- packing -----------------------------------------------------------------


def words_for(bit_count: int) -> int:
    """Number of ``uint64`` words needed for ``bit_count``-bit masks."""
    return max(1, (bit_count + _WORD_BITS - 1) // _WORD_BITS)


def pack_masks(masks: Sequence[int], bit_count: int) -> "numpy.ndarray":
    """Pack big-int masks into an ``(N, words)`` ``uint64`` array."""
    np_ = get_numpy()
    assert np_ is not None
    words = words_for(bit_count)
    byte_len = words * 8
    buffer = b"".join(int(mask).to_bytes(byte_len, "little") for mask in masks)
    return np_.frombuffer(buffer, dtype=np_.uint64).reshape(len(masks), words).copy()


def unpack_masks(rows: "numpy.ndarray") -> list[int]:
    """Inverse of :func:`pack_masks`: ``(N, words)`` rows back to big ints."""
    data = rows.tobytes()
    stride = rows.shape[1] * 8
    return [
        int.from_bytes(data[offset : offset + stride], "little")
        for offset in range(0, len(data), stride)
    ]


# -- Galois closed-set closure -----------------------------------------------


def closed_masks_vector(
    generators: Sequence[int],
    full_mask: int,
    bit_count: int,
    limit: int | None,
    is_usable: Callable[[int], bool],
    *,
    chunk: int = 256,
) -> frozenset[int]:
    """Intersection-closure of the singleton polars, batched.

    Mirrors :meth:`repro.core.galois.Compatibility.closed_masks` exactly,
    including the limit semantics: the *initial* usable count (generators
    plus the full set) aborts with the full count as ``observed``; during
    frontier expansion the abort fires at exactly ``limit + 1`` usable sets.
    The pairwise intersections are evaluated as a broadcast AND over packed
    rows -- ``chunk`` frontier rows against every generator per step -- with
    duplicates removed by a row-level unique before the (scalar, memoised)
    usable test runs on genuinely new sets only.
    """
    np_ = get_numpy()
    assert np_ is not None

    def abort(count: int) -> None:
        raise EngineLimitError(
            f"half step enumerated more than {limit} usable Galois-closed sets",
            limit_name="max_derived_labels",
            limit=limit,
            observed=count,
        )

    generator_set = {int(mask) for mask in generators}
    generator_set.add(int(full_mask))
    closed: set[int] = set(generator_set)
    usable = 0
    if limit is not None:
        for mask in closed:
            if is_usable(mask):
                usable += 1
        if usable > limit:
            abort(usable)

    ordered_generators = sorted(generator_set)
    generator_rows = pack_masks(ordered_generators, bit_count)[None, :, :]
    frontier = ordered_generators
    while frontier:
        fresh: list[int] = []
        for start in range(0, len(frontier), chunk):
            frontier_rows = pack_masks(frontier[start : start + chunk], bit_count)
            candidates = frontier_rows[:, None, :] & generator_rows
            candidates = candidates.reshape(-1, candidates.shape[-1])
            for mask in unpack_masks(np_.unique(candidates, axis=0)):
                if mask not in closed:
                    closed.add(mask)
                    fresh.append(mask)
                    if limit is not None and is_usable(mask):
                        usable += 1
                        if usable > limit:
                            abort(limit + 1)
        frontier = fresh
    return frozenset(closed)


# -- filter (up-set) enumeration ---------------------------------------------


def enumerate_filters_vector(
    count: int,
    up: Sequence[int],
    comparable: Sequence[int],
    max_derived_labels: int,
) -> list[int]:
    """Level-wise batched enumeration of the non-empty poset filters.

    Mirrors :func:`repro.core.speedup._enumerate_filters`: filters are in
    bijection with non-empty antichains of the half-label poset; here the
    antichains are expanded a level (antichain size) at a time, every level
    batched as packed rows, so one vector op extends thousands of antichains
    by one element.  Aborts with ``observed == max_derived_labels + 1`` as
    soon as the collected count exceeds the limit, exactly like the scalar
    DFS (the trip condition -- total filter count exceeds the limit -- is
    order-independent).
    """
    np_ = get_numpy()
    assert np_ is not None
    if count == 0:
        return []

    def abort() -> None:
        raise EngineLimitError(
            f"full step over {count} half labels produces "
            f"more than {max_derived_labels} filters",
            limit_name="max_derived_labels",
            limit=max_derived_labels,
            observed=max_derived_labels + 1,
        )

    up_rows = pack_masks(up, count)
    comparable_rows = pack_masks(comparable, count)
    words = up_rows.shape[1]
    word_index = np_.arange(count) // _WORD_BITS
    bit_value = np_.uint64(1) << (np_.arange(count, dtype=np_.uint64) % _WORD_BITS)

    # Level 1: every singleton antichain {i}, filter = up[i].
    antichains = np_.zeros((count, words), dtype=np_.uint64)
    antichains[np_.arange(count), word_index] = bit_value
    filters = up_rows.copy()
    max_index = np_.arange(count)

    collected: list["numpy.ndarray"] = [filters]
    total = count
    if total > max_derived_labels:
        abort()

    while len(antichains):
        next_antichains: list["numpy.ndarray"] = []
        next_filters: list["numpy.ndarray"] = []
        next_max: list["numpy.ndarray"] = []
        for j in range(1, count):
            eligible = (max_index < j) & ~np_.any(
                antichains & comparable_rows[j], axis=1
            )
            if not eligible.any():
                continue
            grown = antichains[eligible].copy()
            grown[:, word_index[j]] |= bit_value[j]
            grown_filters = filters[eligible] | up_rows[j]
            next_antichains.append(grown)
            next_filters.append(grown_filters)
            next_max.append(np_.full(len(grown), j))
            total += len(grown)
            if total > max_derived_labels:
                abort()
        if not next_antichains:
            break
        antichains = np_.concatenate(next_antichains)
        filters = np_.concatenate(next_filters)
        max_index = np_.concatenate(next_max)
        collected.append(filters)

    return unpack_masks(np_.concatenate(collected))


# -- batched Hall / matching feasibility -------------------------------------


class AllowsTable:
    """Batched membership tests for the half-step node constraint.

    Precomputes, per original node configuration ``c`` and per half label
    ``h``, the mask of positions of ``c`` (bits over ``range(delta)``) that
    can receive a label from ``meaning(h)`` -- the bipartite adjacency the
    scalar :class:`repro.core.speedup._MaskMembership` rebuilds per query.
    A full-membership query for ``delta`` half labels then reduces to
    Hall's condition over at most ``2**delta`` position-mask unions,
    evaluated for *every* candidate last label at once: exactly the inner
    loop of the prefix-completion enumeration, batched.

    Hall's marriage theorem (every slot subset must see at least as many
    positions) is equivalent to the perfect matching
    :func:`repro.core.alphabet.mask_matching_exists` searches for, so the
    batched predicate is exactly the scalar one.
    """

    def __init__(
        self,
        np_: Any,
        delta: int,
        config_supports: Sequence[int],
        config_position_masks: Sequence[dict[int, int]],
        meaning_masks: Sequence[int],
        original_size: int,
    ):
        self._np = np_
        self._delta = delta
        self._half_count = len(meaning_masks)
        config_count = len(config_supports)

        # Q[c, i]: positions of original label i in configuration c.
        positions = np_.zeros((config_count, original_size), dtype=np_.uint16)
        for config_index, per_label in enumerate(config_position_masks):
            for label_index, position_mask in per_label.items():
                positions[config_index, label_index] = position_mask
        # M[i, h]: original label i belongs to meaning(h).
        membership = np_.zeros((original_size, self._half_count), dtype=np_.uint8)
        for half_index, meaning in enumerate(meaning_masks):
            remaining = int(meaning)
            while remaining:
                low = remaining & -remaining
                membership[low.bit_length() - 1, half_index] = 1
                remaining ^= low
        # P[c, h]: positions of c that can receive a label from meaning(h),
        # assembled bit-plane by bit-plane (delta matmuls of 0/1 matrices).
        table = np_.zeros((config_count, self._half_count), dtype=np_.uint16)
        for bit in range(delta):
            plane = ((positions >> bit) & 1).astype(np_.uint8)
            table |= (plane @ membership > 0).astype(np_.uint16) << np_.uint16(bit)
        self._table = table
        self._popcount = np_.bitwise_count(table)
        self._last_cache: dict[tuple[int, ...], int] = {}

    def allowed_last(self, choice: Sequence[int]) -> int:
        """Half labels ``z`` with ``allows(choice + (z,))``, as a bitmask.

        ``choice`` holds ``delta - 1`` half-label indices (the fixed slots
        of one min-choice of a prefix); the return value packs, one bit per
        half label, whether the full ``delta``-slot configuration satisfies
        the existential node constraint in *some* original configuration.
        The answer is a pure function of ``choice`` and the same choices
        recur across thousands of prefixes, so results are memoised.
        """
        key = tuple(choice)
        cached = self._last_cache.get(key)
        if cached is not None:
            return cached
        np_ = self._np
        table = self._table
        base = [table[:, index] for index in choice]
        # Hall over the fixed slots alone (z-independent): prune configs.
        feasible = np_.ones(table.shape[0], dtype=bool)
        subsets: list[tuple[int, "numpy.ndarray"]] = []
        for bits in range(1, 1 << len(base)):
            union = np_.zeros(table.shape[0], dtype=np_.uint16)
            size = 0
            for slot, column in enumerate(base):
                if bits >> slot & 1:
                    union = union | column
                    size += 1
            feasible &= np_.bitwise_count(union) >= size
            subsets.append((size, union))
        # Hall over every subset including z: |S| + 1 positions needed.
        allowed = (self._popcount >= 1) & feasible[:, None]
        for size, union in subsets:
            allowed &= np_.bitwise_count(union[:, None] | table) >= size + 1
        any_config = np_.any(allowed, axis=0)
        mask = 0
        for half_index in np_.nonzero(any_config)[0].tolist():
            mask |= 1 << half_index
        self._last_cache[key] = mask
        return mask


# -- streaming domination frontier -------------------------------------------


class VectorFrontier:
    """Maximal-antichain frontier under componentwise domination, batched.

    Semantically identical to the scalar frontier in
    :mod:`repro.core.speedup` (insertions are processed strictly in stream
    order; the survivor *set* is the unique maximal antichain, so it is
    independent of both order and chunking); the per-insertion dominator
    and dominated scans run as vector ops over packed union rows, total
    popcounts, and sorted popcount profiles, with the exact bipartite
    matching test reserved for the few candidates the prefilters leave.
    """

    def __init__(
        self,
        np_: Any,
        bit_count: int,
        delta: int,
        max_live: int,
        dominates: Callable[[tuple[int, ...], tuple[int, ...]], bool],
    ):
        self._np = np_
        self._bits = bit_count
        self._words = words_for(bit_count)
        self._delta = delta
        self._max_live = max_live
        self._dominates = dominates
        capacity = 1024
        self._unions = np_.zeros((capacity, self._words), dtype=np_.uint64)
        self._totals = np_.zeros(capacity, dtype=np_.int64)
        self._profiles = np_.zeros((capacity, delta), dtype=np_.int64)
        self._alive = np_.zeros(capacity, dtype=bool)
        self._configs: list[tuple[int, ...] | None] = [None] * capacity
        self._members: dict[tuple[int, ...], int] = {}
        self._size = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self._members)

    def _grow(self) -> None:
        np_ = self._np
        capacity = len(self._configs) * 2
        for name in ("_unions", "_totals", "_profiles", "_alive"):
            old = getattr(self, name)
            shape = (capacity,) + old.shape[1:]
            fresh = np_.zeros(shape, dtype=old.dtype)
            fresh[: len(old)] = old
            setattr(self, name, fresh)
        self._configs.extend([None] * (capacity - len(self._configs)))

    def insert(self, config: tuple[int, ...]) -> None:
        """Insert one configuration, keeping the frontier a maximal antichain."""
        if config in self._members:
            return
        np_ = self._np
        union = 0
        for component in config:
            union |= component
        popcounts = sorted((component.bit_count() for component in config), reverse=True)
        total = sum(popcounts)
        union_row = pack_masks([union], self._bits)[0]
        profile = np_.array(popcounts, dtype=np_.int64)

        live = self._alive[: self._size]
        unions = self._unions[: self._size]
        totals = self._totals[: self._size]
        profiles = self._profiles[: self._size]

        # Dominators must have strictly more total bits, a superset union,
        # and a componentwise-greater popcount profile.
        candidates = live & (totals > total)
        if candidates.any():
            candidates &= ~np_.any(union_row & ~unions, axis=1)
            candidates &= np_.all(profile <= profiles, axis=1)
            for row in np_.nonzero(candidates)[0].tolist():
                kept = self._configs[row]
                assert kept is not None
                if self._dominates(kept, config):
                    return
        # Evict frontier members this configuration strictly dominates.
        victims = live & (totals < total)
        if victims.any():
            victims &= ~np_.any(unions & ~union_row, axis=1)
            victims &= np_.all(profiles <= profile, axis=1)
            for row in np_.nonzero(victims)[0].tolist():
                kept = self._configs[row]
                assert kept is not None
                if self._dominates(config, kept):
                    self._alive[row] = False
                    del self._members[kept]
                    self._configs[row] = None

        if self._size == len(self._configs):
            self._compact()
            if self._size == len(self._configs):
                self._grow()
        row = self._size
        self._unions[row] = union_row
        self._totals[row] = total
        self._profiles[row] = profile
        self._alive[row] = True
        self._configs[row] = config
        self._members[config] = row
        self._size += 1
        if len(self._members) > self.peak:
            self.peak = len(self._members)
        if len(self._members) > self._max_live:
            raise EngineLimitError(
                f"streaming full step holds more than {self._max_live} "
                f"undominated candidate configurations",
                limit_name="max_live_configs",
                limit=self._max_live,
                observed=self._max_live + 1,
            )

    def _compact(self) -> None:
        """Drop evicted rows so capacity tracks the live frontier."""
        np_ = self._np
        live_rows = np_.nonzero(self._alive[: self._size])[0]
        if len(live_rows) == self._size:
            return
        count = len(live_rows)
        self._unions[:count] = self._unions[live_rows]
        self._totals[:count] = self._totals[live_rows]
        self._profiles[:count] = self._profiles[live_rows]
        self._alive[:count] = True
        self._alive[count:] = False
        survivors = [self._configs[row] for row in live_rows.tolist()]
        for index, config in enumerate(survivors):
            assert config is not None
            self._configs[index] = config
            self._members[config] = index
        for index in range(count, len(self._configs)):
            self._configs[index] = None
        self._size = count

    def insert_chunk(self, configs: Sequence[tuple[int, ...]]) -> None:
        """Insert a buffered chunk (strictly in order; chunking is batching
        of the Python-to-array packing, never a semantic boundary)."""
        for config in configs:
            self.insert(config)

    def survivors(self) -> list[tuple[int, ...]]:
        return sorted(self._members)


# -- existential edge relation ----------------------------------------------


def existential_edge_pairs(
    used_masks: Sequence[int],
    partner_unions: Sequence[int],
    bit_count: int,
    *,
    chunk: int = 512,
) -> tuple["numpy.ndarray", "numpy.ndarray"]:
    """Index pairs ``{i, j}`` (``i <= j``) with an existential edge witness.

    The pair is allowed iff the polar-partner bits of one side intersect
    the other side (in either orientation) -- the same predicate as the
    scalar double loop in :func:`repro.core.speedup.full_step`, evaluated
    as a broadcast AND of packed rows, ``chunk`` rows at a time.  Returns
    two parallel index arrays (first <= second); huge-``Pi_1`` problems
    produce tens of millions of pairs, so they stay numpy until the final
    string materialisation.
    """
    np_ = get_numpy()
    assert np_ is not None
    count = len(used_masks)
    if count == 0:
        return np_.zeros(0, dtype=np_.int64), np_.zeros(0, dtype=np_.int64)
    used_rows = pack_masks(used_masks, bit_count)
    partner_rows = pack_masks(partner_unions, bit_count)
    hits = np_.zeros((count, count), dtype=bool)
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        hits[start:stop] = np_.any(
            partner_rows[start:stop, None, :] & used_rows[None, :, :], axis=2
        )
    hits |= hits.T
    first_index, second_index = np_.nonzero(np_.triu(hits))
    return first_index, second_index
