"""Canonical forms of problems, invariant under label renaming.

The engine's memo cache (:mod:`repro.engine.cache`) is *content addressed*:
two problems that differ only in their label names (and their cosmetic
``name`` field) must map to the same cache key, because the speedup
derivation is equivariant under label renaming -- ``speedup(rename(Pi))`` is
``rename(speedup(Pi))`` up to the fresh short names of the derived alphabet.
Round elimination produces exactly such renamed twins all the time: every
iteration renames the derived labels to ``A, B, C, ...``, and the analysis
drivers re-derive the same catalog problems under different display names.

The canonical form is computed in two stages:

1. **Refinement.**  Labels are partitioned by iterated signature refinement
   (1-WL on the constraint hypergraph): the initial color is a counting
   signature, and each round refines by the multiset of neighbor colors in
   edge configurations and the multiset of colored node-configuration
   profiles.  Both are isomorphism-invariant, so equivalent labels of
   renamed twins land in equal classes.

2. **Minimal encoding.**  Within-class ties are broken exactly, by
   enumerating the (usually tiny) product of per-class permutations and
   keeping the lexicographically smallest constraint encoding.  When a
   problem is so symmetric that the enumeration would be large
   (> ``PERMUTATION_BUDGET`` orderings), we fall back to an *exact* encoding
   keyed on the actual label names: still a sound cache key (only
   structurally identical problems collide), just blind to renamings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from hashlib import sha256
from itertools import chain, permutations, product
from math import factorial

from repro.core.problem import Label, Problem

# Cap on the number of tie-breaking orderings tried.  8! covers every
# fully-symmetric alphabet up to 8 labels; refinement splits larger ones in
# practice, and the exact-name fallback keeps the key sound beyond it.
PERMUTATION_BUDGET = 40_320


@dataclass(frozen=True)
class CanonicalForm:
    """A cache key plus the label ordering that realises it.

    ``key`` is equal for two problems iff they are identical up to label
    renaming (or, for the symmetric fallback, identical outright); in that
    case ``ordering[i]`` of one problem corresponds to ``ordering[i]`` of the
    other, which is how the cache translates a stored result into the
    requesting problem's label space.
    """

    key: str
    ordering: tuple[Label, ...]

    @property
    def index(self) -> dict[Label, int]:
        return {label: i for i, label in enumerate(self.ordering)}


def _initial_colors(problem: Problem) -> dict[Label, tuple]:
    """Counting signature per label (isomorphism-invariant seed partition)."""
    colors: dict[Label, tuple] = {}
    for label in problem.labels:
        self_pairs = sum(
            1 for pair in problem.edge_constraint if pair == (label, label)
        )
        other_pairs = sum(
            1
            for pair in problem.edge_constraint
            if label in pair and pair[0] != pair[1]
        )
        node_profile = Counter(
            config.count(label)
            for config in problem.node_constraint
            if label in config
        )
        colors[label] = (self_pairs, other_pairs, tuple(sorted(node_profile.items())))
    return colors


def _refine(problem: Problem) -> dict[Label, int]:
    """Iterated signature refinement; returns a class id per label.

    Class ids are assigned by sorted signature order, which is deterministic
    and isomorphism-invariant (signatures only mention other class ids and
    counts, never label names).
    """
    seed = _initial_colors(problem)
    ranked = {sig: rank for rank, sig in enumerate(sorted(set(seed.values())))}
    color = {label: ranked[seed[label]] for label in problem.labels}

    while True:
        signatures: dict[Label, tuple] = {}
        for label in problem.labels:
            edge_profile = sorted(
                color[pair[1] if pair[0] == label else pair[0]]
                for pair in problem.edge_constraint
                if label in pair
            )
            node_profile = sorted(
                (config.count(label), tuple(sorted(color[x] for x in config)))
                for config in problem.node_constraint
                if label in config
            )
            signatures[label] = (
                color[label],
                tuple(edge_profile),
                tuple(node_profile),
            )
        ranked = {sig: rank for rank, sig in enumerate(sorted(set(signatures.values())))}
        refined = {label: ranked[signatures[label]] for label in problem.labels}
        if len(set(refined.values())) == len(set(color.values())):
            return refined
        color = refined


def _encode(problem: Problem, ordering: tuple[Label, ...]) -> tuple:
    """Constraint encoding under a label-to-index assignment."""
    index = {label: i for i, label in enumerate(ordering)}
    edges = sorted(
        (index[a], index[b]) if index[a] <= index[b] else (index[b], index[a])
        for a, b in problem.edge_constraint
    )
    nodes = sorted(tuple(sorted(index[x] for x in config)) for config in problem.node_constraint)
    return (tuple(edges), tuple(nodes))


def _digest(parts: tuple) -> str:
    return sha256(repr(parts).encode()).hexdigest()


def canonical_form(problem: Problem) -> CanonicalForm:
    """Compute the renaming-invariant canonical form of a problem.

    The cosmetic ``name`` field is deliberately excluded: two copies of the
    same structure under different display names are the same content.
    """
    classes = _refine(problem)
    groups: list[list[Label]] = [
        sorted(label for label in problem.labels if classes[label] == cid)
        for cid in sorted(set(classes.values()))
    ]

    orderings = 1
    for group in groups:
        orderings *= factorial(len(group))
    # Budget also the total encoding work, not just the ordering count.
    work = orderings * (len(problem.edge_constraint) + len(problem.node_constraint) + 1)
    if orderings > PERMUTATION_BUDGET or work > 4_000_000:
        ordering = tuple(sorted(problem.labels))
        parts = ("exact", problem.delta, ordering, _encode(problem, ordering))
        return CanonicalForm(key="exact:" + _digest(parts), ordering=ordering)

    best_encoding: tuple | None = None
    best_ordering: tuple[Label, ...] | None = None
    for combo in product(*(permutations(group) for group in groups)):
        ordering = tuple(chain.from_iterable(combo))
        encoding = _encode(problem, ordering)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_ordering = ordering
    assert best_ordering is not None and best_encoding is not None
    parts = ("canon", problem.delta, len(problem.labels), best_encoding)
    return CanonicalForm(key="canon:" + _digest(parts), ordering=best_ordering)


def canonical_hash(problem: Problem) -> str:
    """The content-addressed cache key alone (see :func:`canonical_form`)."""
    return canonical_form(problem).key
