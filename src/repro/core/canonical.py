"""Canonical forms of problems, invariant under label renaming.

The engine's memo cache (:mod:`repro.engine.cache`) is *content addressed*:
two problems that differ only in their label names (and their cosmetic
``name`` field) must map to the same cache key, because the speedup
derivation is equivariant under label renaming -- ``speedup(rename(Pi))`` is
``rename(speedup(Pi))`` up to the fresh short names of the derived alphabet.
Round elimination produces exactly such renamed twins all the time: every
iteration renames the derived labels to ``A, B, C, ...``, and the analysis
drivers re-derive the same catalog problems under different display names.

The canonical form is computed in two stages:

1. **Refinement.**  Labels are partitioned by iterated signature refinement
   (1-WL on the constraint hypergraph): the initial color is a counting
   signature, and each round refines by the multiset of neighbor colors in
   edge configurations and the multiset of colored node-configuration
   profiles.  Both are isomorphism-invariant, so equivalent labels of
   renamed twins land in equal classes.

2. **Minimal encoding.**  Within-class ties are broken exactly, by
   enumerating the (usually tiny) product of per-class permutations and
   keeping the lexicographically smallest constraint encoding.  When a
   problem is so symmetric that the enumeration would be large
   (> ``PERMUTATION_BUDGET`` orderings), we fall back to an *exact* encoding
   keyed on the actual label names: still a sound cache key (only
   structurally identical problems collide), just blind to renamings.

Both stages run over the interned index view (:mod:`repro.core.alphabet`):
refinement walks precomputed per-label incidence lists instead of rescanning
every constraint per label per round, and the tie-breaking encoder permutes
integer arrays.  Signatures and encodings contain only class ids, counts and
indices -- never label names -- so the computed keys are byte-identical to
the legacy string path's (asserted by the differential tests): existing
on-disk caches stay valid.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from hashlib import sha256
from itertools import chain, permutations, product
from math import factorial

from repro.core.alphabet import CanonicalHash, intern
from repro.core.problem import Label, Problem

# Cap on the number of tie-breaking orderings tried.  8! covers every
# fully-symmetric alphabet up to 8 labels; refinement splits larger ones in
# practice, and the exact-name fallback keeps the key sound beyond it.
PERMUTATION_BUDGET = 40_320


@dataclass(frozen=True)
class CanonicalForm:
    """A cache key plus the label ordering that realises it.

    ``key`` is equal for two problems iff they are identical up to label
    renaming (or, for the symmetric fallback, identical outright); in that
    case ``ordering[i]`` of one problem corresponds to ``ordering[i]`` of the
    other, which is how the cache translates a stored result into the
    requesting problem's label space.
    """

    key: CanonicalHash
    ordering: tuple[Label, ...]

    @property
    def index(self) -> dict[Label, int]:
        return {label: i for i, label in enumerate(self.ordering)}


class _Incidence:
    """Per-label incidence lists over the interned index view."""

    __slots__ = ("size", "edge_partners", "node_occurrences", "edge_pairs", "node_configs")

    def __init__(self, problem: Problem):
        interned = intern(problem)
        size = interned.alphabet.size
        self.size = size
        self.edge_pairs = sorted(interned.edge_pairs)
        self.node_configs = interned.node_configs
        # edge_partners[i]: the partner index of each edge pair containing i
        # (one entry per pair; a self-loop (i, i) contributes i once).
        edge_partners: list[list[int]] = [[] for _ in range(size)]
        for a, b in self.edge_pairs:
            edge_partners[a].append(b)
            if a != b:
                edge_partners[b].append(a)
        self.edge_partners = edge_partners
        # node_occurrences[i]: (config index, multiplicity of i in it) pairs.
        node_occurrences: list[list[tuple[int, int]]] = [[] for _ in range(size)]
        for config_index, config in enumerate(self.node_configs):
            for label_index, count in Counter(config).items():
                node_occurrences[label_index].append((config_index, count))
        self.node_occurrences = node_occurrences


def _initial_colors(
    incidence: _Incidence,
) -> list[tuple[int, int, tuple[tuple[int, int], ...]]]:
    """Counting signature per label index (isomorphism-invariant seed)."""
    colors: list[tuple[int, int, tuple[tuple[int, int], ...]]] = []
    for i in range(incidence.size):
        partners = incidence.edge_partners[i]
        self_pairs = sum(1 for partner in partners if partner == i)
        other_pairs = len(partners) - self_pairs
        node_profile = Counter(count for _, count in incidence.node_occurrences[i])
        colors.append((self_pairs, other_pairs, tuple(sorted(node_profile.items()))))
    return colors


def _refine(incidence: _Incidence) -> list[int]:
    """Iterated signature refinement; returns a class id per label index.

    Class ids are assigned by sorted signature order, which is deterministic
    and isomorphism-invariant (signatures only mention other class ids and
    counts, never label names).
    """
    seed = _initial_colors(incidence)
    ranked = {sig: rank for rank, sig in enumerate(sorted(set(seed)))}
    color = [ranked[sig] for sig in seed]

    while True:
        # One colored profile per configuration, shared by all its labels.
        config_profiles = [
            tuple(sorted(color[x] for x in config))
            for config in incidence.node_configs
        ]
        signatures = []
        for i in range(incidence.size):
            edge_profile = sorted(color[partner] for partner in incidence.edge_partners[i])
            node_profile = sorted(
                (count, config_profiles[config_index])
                for config_index, count in incidence.node_occurrences[i]
            )
            signatures.append((color[i], tuple(edge_profile), tuple(node_profile)))
        ranked = {sig: rank for rank, sig in enumerate(sorted(set(signatures)))}
        refined = [ranked[sig] for sig in signatures]
        if len(set(refined)) == len(set(color)):
            return refined
        color = refined


def _encode_positions(
    incidence: _Incidence, position: list[int]
) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, ...], ...]]:
    """Constraint encoding under an old-index -> position assignment."""
    edges = sorted(
        (position[a], position[b])
        if position[a] <= position[b]
        else (position[b], position[a])
        for a, b in incidence.edge_pairs
    )
    nodes = sorted(
        tuple(sorted(position[x] for x in config))
        for config in incidence.node_configs
    )
    return (tuple(edges), tuple(nodes))


def _digest(parts: tuple[object, ...]) -> str:
    return sha256(repr(parts).encode()).hexdigest()


def canonical_form(problem: Problem) -> CanonicalForm:
    """Compute the renaming-invariant canonical form of a problem.

    The cosmetic ``name`` field is deliberately excluded: two copies of the
    same structure under different display names are the same content.
    """
    interned = intern(problem)
    names = interned.alphabet.names
    incidence = _Incidence(problem)
    classes = _refine(incidence)
    class_ids = sorted(set(classes))
    # Indices ascend in name order, so per-class index groups are name-sorted.
    groups: list[list[int]] = [
        [i for i in range(incidence.size) if classes[i] == cid] for cid in class_ids
    ]

    orderings = 1
    for group in groups:
        orderings *= factorial(len(group))
    # Budget also the total encoding work, not just the ordering count.
    work = orderings * (len(problem.edge_constraint) + len(problem.node_constraint) + 1)
    if orderings > PERMUTATION_BUDGET or work > 4_000_000:
        ordering = names
        identity = list(range(incidence.size))
        parts = ("exact", problem.delta, ordering, _encode_positions(incidence, identity))
        return CanonicalForm(
            key=CanonicalHash("exact:" + _digest(parts)), ordering=ordering
        )

    best_encoding: (
        tuple[tuple[tuple[int, int], ...], tuple[tuple[int, ...], ...]] | None
    ) = None
    best_order: tuple[int, ...] | None = None
    position = [0] * incidence.size
    for combo in product(*(permutations(group) for group in groups)):
        order = tuple(chain.from_iterable(combo))
        for rank, old_index in enumerate(order):
            position[old_index] = rank
        encoding = _encode_positions(incidence, position)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_order = order
    assert best_order is not None and best_encoding is not None
    parts = ("canon", problem.delta, len(problem.labels), best_encoding)
    return CanonicalForm(
        key=CanonicalHash("canon:" + _digest(parts)),
        ordering=tuple(names[i] for i in best_order),
    )


def canonical_hash(problem: Problem) -> CanonicalHash:
    """The content-addressed cache key alone (see :func:`canonical_form`)."""
    return canonical_form(problem).key
