"""Decision procedures for 0-round solvability in the port numbering model.

The endpoint of every round-elimination argument (Section 2.1) is the
question whether some derived problem ``Pi_t`` can be solved in zero rounds.
In the port numbering model a 0-round algorithm is a single function from a
node's initial knowledge to a tuple of output labels, one per port; the
adversary controls the port numbering and (within the graph class) the
inputs.  Two input settings matter for the paper:

* **No symmetry-breaking input.**  Every node sees the same nothing, so all
  nodes answer the same configuration ``C`` (up to port permutation), and any
  element of ``C`` at one endpoint can face any element of ``C`` at the other.
  Solvability therefore means: some allowed node configuration is
  *self-compatible* -- every pair of its labels is an allowed edge
  configuration.

* **Input edge orientations** (the symmetry breaking Theorem 2 requires).  A
  node's 0-round view is the orientation pattern of its ports; on a
  delta-regular class the adversary realises every in-degree ``s`` in
  ``{0..delta}``.  A 0-round algorithm picks, for each ``s``, a split of an
  allowed node configuration into labels for in-ports and labels for
  out-ports; on an edge, an out-label of one endpoint faces an in-label of
  the other, and both the endpoints' in-degrees are arbitrary.  Solvability
  means: splits ``(I_s, O_s)`` can be chosen so that every out-label from any
  chosen split is edge-compatible with every in-label from any chosen split.

Both procedures run on the bitmask kernel (:mod:`repro.core.alphabet`):
split signatures and the DFS unions are label masks, and the all-pairs
edge-compatibility conditions collapse to polar-mask subset tests (a set of
out-labels is compatible with a set of in-labels iff the in-mask is a subset
of the AND of the out-labels' adjacency masks).  Witnesses still carry the
original name tuples, and the search visits splits in the same deterministic
order as the legacy string path, so the witness found is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import InternedProblem, intern
from repro.core.galois import Compatibility
from repro.core.problem import NodeConfig, Problem
from repro.utils.multiset import multiset_difference, submultisets_of_size


@dataclass(frozen=True)
class ZeroRoundWitness:
    """Evidence that a problem is 0-round solvable.

    For the no-input setting, ``splits`` holds the single self-compatible
    configuration under key ``-1``.  For the orientation setting, ``splits``
    maps each in-degree ``s`` to the chosen ``(in_labels, out_labels)`` pair.
    """

    problem_name: str
    setting: str
    splits: dict[int, tuple[NodeConfig, NodeConfig]]

    def to_dict(self) -> dict:
        """JSON-ready form; split keys become strings, configurations lists."""
        return {
            "problem_name": self.problem_name,
            "setting": self.setting,
            "splits": {
                str(key): [list(ins), list(outs)]
                for key, (ins, outs) in sorted(self.splits.items())
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ZeroRoundWitness":
        return ZeroRoundWitness(
            problem_name=data["problem_name"],
            setting=data["setting"],
            splits={
                int(key): (tuple(ins), tuple(outs))
                for key, (ins, outs) in data["splits"].items()
            },
        )

    def describe(self) -> str:
        lines = [f"0-round witness for {self.problem_name} ({self.setting})"]
        for key in sorted(self.splits):
            ins, outs = self.splits[key]
            if key == -1:
                lines.append(f"  configuration: {' '.join(outs)}")
            else:
                lines.append(
                    f"  in-degree {key}: in={' '.join(ins) or '-'} "
                    f"out={' '.join(outs) or '-'}"
                )
        return "\n".join(lines)


def zero_round_no_input(problem: Problem) -> ZeroRoundWitness | None:
    """0-round solvability with no symmetry-breaking input.

    Returns a witness configuration or None.  The condition is the classical
    round-elimination triviality test: some ``C`` in ``h`` with
    ``{x, y} in g`` for all ``x, y`` drawn from ``C``'s support -- on masks,
    the support must be a subset of its own polar.
    """
    interned = intern(problem)
    comp = Compatibility(problem)
    for index, config in enumerate(interned.node_configs):
        support = interned.config_supports[index]
        if support & ~comp.polar_mask(support) == 0:
            return ZeroRoundWitness(
                problem_name=problem.name,
                setting="no-input",
                splits={-1: ((), interned.alphabet.config(config))},
            )
    return None


def _orientation_splits(
    interned: InternedProblem, in_degree: int
) -> list[tuple[tuple[int, ...], tuple[int, ...], int, int]]:
    """Distinct split *signatures*: one representative per (in-set, out-set).

    The compatibility search only depends on which label sets face each
    other, not on multiplicities, so splits are deduplicated by the pair of
    *support masks* -- a large reduction on derived problems with many
    configurations.  Entries are ``(in_config, out_config, in_mask,
    out_mask)`` with the configurations as index tuples; iteration order
    matches the legacy string path (configs in sorted order, sub-multisets in
    combination order), so the chosen representatives -- and ultimately the
    witness -- are identical.
    """
    by_signature: dict[tuple[int, int], tuple[tuple[int, ...], tuple[int, ...], int, int]] = {}
    for config in interned.node_configs:
        for in_part in submultisets_of_size(config, in_degree):
            out_part = multiset_difference(config, in_part)
            in_mask = 0
            for label in in_part:
                in_mask |= 1 << label
            out_mask = 0
            for label in out_part:
                out_mask |= 1 << label
            by_signature.setdefault(
                (in_mask, out_mask), (in_part, out_part, in_mask, out_mask)
            )
    return sorted(by_signature.values())


def zero_round_with_orientations(problem: Problem) -> ZeroRoundWitness | None:
    """0-round solvability given input edge orientations on a regular class.

    Performs a depth-first search over the choice of one split per in-degree,
    maintaining the union masks of chosen in-labels and out-labels plus their
    running polar masks, pruning as soon as some out-label would face some
    in-label not allowed by ``g``, and memoising failed
    ``(level, in-union, out-union)`` states.
    """
    interned = intern(problem)
    comp = Compatibility(problem)
    delta = problem.delta
    per_degree = [_orientation_splits(interned, s) for s in range(delta + 1)]
    if any(not options for options in per_degree):
        return None
    # Search the most-constrained levels first (fewest options).
    level_order = sorted(range(delta + 1), key=lambda s: len(per_degree[s]))

    chosen: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
    failed: set[tuple[int, int, int]] = set()

    def search(index: int, in_union: int, out_union: int, in_allowed: int) -> bool:
        # in_allowed = polar(out_union): the labels every chosen out-label
        # accepts across an edge.  (The converse direction needs no separate
        # mask: "new out-labels accept all in-labels" is the same all-pairs
        # condition as "all in-labels lie in polar(new out-labels)".)
        if index == len(level_order):
            return True
        state = (index, in_union, out_union)
        if state in failed:
            return False
        s = level_order[index]
        for in_part, out_part, in_mask, out_mask in per_degree[s]:
            new_in = in_mask & ~in_union
            new_out = out_mask & ~out_union
            # Fresh out-labels must accept every in-label old and new ...
            new_out_polar = comp.polar_mask(new_out)
            if (in_union | new_in) & ~new_out_polar:
                continue
            # ... and fresh in-labels must be accepted by every old out-label.
            if new_in & ~in_allowed:
                continue
            chosen[s] = (in_part, out_part)
            if search(
                index + 1,
                in_union | new_in,
                out_union | new_out,
                in_allowed & new_out_polar,
            ):
                return True
            del chosen[s]
        failed.add(state)
        return False

    if search(0, 0, 0, interned.alphabet.full_mask):
        to_names = interned.alphabet.config
        return ZeroRoundWitness(
            problem_name=problem.name,
            setting="edge-orientations",
            splits={
                s: (to_names(in_part), to_names(out_part))
                for s, (in_part, out_part) in chosen.items()
            },
        )
    return None


def is_zero_round_solvable(problem: Problem, orientations: bool = True) -> bool:
    """Convenience wrapper returning a bare boolean.

    With ``orientations=True`` (the setting of Theorem 2 and all the paper's
    lower bounds) the orientation-input procedure is used; note a problem
    solvable with no input is a fortiori solvable with orientations.
    """
    if orientations:
        return zero_round_with_orientations(problem) is not None
    return zero_round_no_input(problem) is not None
