"""Decision procedures for 0-round solvability in the port numbering model.

The endpoint of every round-elimination argument (Section 2.1) is the
question whether some derived problem ``Pi_t`` can be solved in zero rounds.
In the port numbering model a 0-round algorithm is a single function from a
node's initial knowledge to a tuple of output labels, one per port; the
adversary controls the port numbering and (within the graph class) the
inputs.  Two input settings matter for the paper:

* **No symmetry-breaking input.**  Every node sees the same nothing, so all
  nodes answer the same configuration ``C`` (up to port permutation), and any
  element of ``C`` at one endpoint can face any element of ``C`` at the other.
  Solvability therefore means: some allowed node configuration is
  *self-compatible* -- every pair of its labels is an allowed edge
  configuration.

* **Input edge orientations** (the symmetry breaking Theorem 2 requires).  A
  node's 0-round view is the orientation pattern of its ports; on a
  delta-regular class the adversary realises every in-degree ``s`` in
  ``{0..delta}``.  A 0-round algorithm picks, for each ``s``, a split of an
  allowed node configuration into labels for in-ports and labels for
  out-ports; on an edge, an out-label of one endpoint faces an in-label of
  the other, and both the endpoints' in-degrees are arbitrary.  Solvability
  means: splits ``(I_s, O_s)`` can be chosen so that every out-label from any
  chosen split is edge-compatible with every in-label from any chosen split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import Label, NodeConfig, Problem, edge_config
from repro.utils.multiset import multiset_difference, submultisets_of_size


@dataclass(frozen=True)
class ZeroRoundWitness:
    """Evidence that a problem is 0-round solvable.

    For the no-input setting, ``splits`` holds the single self-compatible
    configuration under key ``-1``.  For the orientation setting, ``splits``
    maps each in-degree ``s`` to the chosen ``(in_labels, out_labels)`` pair.
    """

    problem_name: str
    setting: str
    splits: dict[int, tuple[NodeConfig, NodeConfig]]

    def to_dict(self) -> dict:
        """JSON-ready form; split keys become strings, configurations lists."""
        return {
            "problem_name": self.problem_name,
            "setting": self.setting,
            "splits": {
                str(key): [list(ins), list(outs)]
                for key, (ins, outs) in sorted(self.splits.items())
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ZeroRoundWitness":
        return ZeroRoundWitness(
            problem_name=data["problem_name"],
            setting=data["setting"],
            splits={
                int(key): (tuple(ins), tuple(outs))
                for key, (ins, outs) in data["splits"].items()
            },
        )

    def describe(self) -> str:
        lines = [f"0-round witness for {self.problem_name} ({self.setting})"]
        for key in sorted(self.splits):
            ins, outs = self.splits[key]
            if key == -1:
                lines.append(f"  configuration: {' '.join(outs)}")
            else:
                lines.append(
                    f"  in-degree {key}: in={' '.join(ins) or '-'} "
                    f"out={' '.join(outs) or '-'}"
                )
        return "\n".join(lines)


def zero_round_no_input(problem: Problem) -> ZeroRoundWitness | None:
    """0-round solvability with no symmetry-breaking input.

    Returns a witness configuration or None.  The condition is the classical
    round-elimination triviality test: some ``C`` in ``h`` with
    ``{x, y} in g`` for all ``x, y`` drawn from ``C``'s support.
    """
    for config in sorted(problem.node_constraint):
        support = sorted(set(config))
        if all(
            problem.allows_edge(x, y)
            for i, x in enumerate(support)
            for y in support[i:]
        ):
            return ZeroRoundWitness(
                problem_name=problem.name,
                setting="no-input",
                splits={-1: ((), config)},
            )
    return None


def _orientation_splits(problem: Problem, in_degree: int) -> list[tuple[NodeConfig, NodeConfig]]:
    """Distinct split *signatures*: one representative per (in-set, out-set).

    The compatibility search only depends on which label sets face each
    other, not on multiplicities, so splits are deduplicated by the pair of
    *support sets* -- a large reduction on derived problems with many
    configurations.
    """
    by_signature: dict[tuple[frozenset[Label], frozenset[Label]], tuple[NodeConfig, NodeConfig]] = {}
    for config in sorted(problem.node_constraint):
        for in_part in submultisets_of_size(config, in_degree):
            out_part = multiset_difference(config, in_part)
            signature = (frozenset(in_part), frozenset(out_part))
            by_signature.setdefault(signature, (in_part, out_part))
    return sorted(by_signature.values())


def zero_round_with_orientations(problem: Problem) -> ZeroRoundWitness | None:
    """0-round solvability given input edge orientations on a regular class.

    Performs a depth-first search over the choice of one split per in-degree,
    maintaining the union of chosen in-labels and out-labels, pruning as soon
    as some out-label would face some in-label not allowed by ``g``, and
    memoising failed ``(level, in-union, out-union)`` states.
    """
    delta = problem.delta
    per_degree = [_orientation_splits(problem, s) for s in range(delta + 1)]
    if any(not options for options in per_degree):
        return None
    # Search the most-constrained levels first (fewest options).
    level_order = sorted(range(delta + 1), key=lambda s: len(per_degree[s]))

    chosen: dict[int, tuple[NodeConfig, NodeConfig]] = {}
    failed: set[tuple[int, frozenset[Label], frozenset[Label]]] = set()

    def pair_ok(out_label: Label, in_label: Label) -> bool:
        return edge_config(out_label, in_label) in problem.edge_constraint

    def search(index: int, in_union: frozenset[Label], out_union: frozenset[Label]) -> bool:
        if index == len(level_order):
            return True
        state = (index, in_union, out_union)
        if state in failed:
            return False
        s = level_order[index]
        for in_part, out_part in per_degree[s]:
            new_in_labels = frozenset(in_part) - in_union
            new_out_labels = frozenset(out_part) - out_union
            # Only the freshly added labels need checking against the unions.
            if not all(
                pair_ok(o, i)
                for o in new_out_labels
                for i in in_union | new_in_labels
            ):
                continue
            if not all(
                pair_ok(o, i)
                for o in out_union
                for i in new_in_labels
            ):
                continue
            chosen[s] = (in_part, out_part)
            if search(index + 1, in_union | new_in_labels, out_union | new_out_labels):
                return True
            del chosen[s]
        failed.add(state)
        return False

    if search(0, frozenset(), frozenset()):
        return ZeroRoundWitness(
            problem_name=problem.name,
            setting="edge-orientations",
            splits=dict(chosen),
        )
    return None


def is_zero_round_solvable(problem: Problem, orientations: bool = True) -> bool:
    """Convenience wrapper returning a bare boolean.

    With ``orientations=True`` (the setting of Theorem 2 and all the paper's
    lower bounds) the orientation-input procedure is used; note a problem
    solvable with no input is a fortiori solvable with orientations.
    """
    if orientations:
        return zero_round_with_orientations(problem) is not None
    return zero_round_no_input(problem) is not None
