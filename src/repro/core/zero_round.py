"""Decision procedures for 0-round solvability in the port numbering model.

The endpoint of every round-elimination argument (Section 2.1) is the
question whether some derived problem ``Pi_t`` can be solved in zero rounds.
In the port numbering model a 0-round algorithm is a single function from a
node's initial knowledge to a tuple of output labels, one per port; the
adversary controls the port numbering and (within the graph class) the
inputs.  Two input settings matter for the paper:

* **No symmetry-breaking input.**  Every node sees the same nothing, so all
  nodes answer the same configuration ``C`` (up to port permutation), and any
  element of ``C`` at one endpoint can face any element of ``C`` at the other.
  Solvability therefore means: some allowed node configuration is
  *self-compatible* -- every pair of its labels is an allowed edge
  configuration.

* **Input edge orientations** (the symmetry breaking Theorem 2 requires).  A
  node's 0-round view is the orientation pattern of its ports; on a
  delta-regular class the adversary realises every in-degree ``s`` in
  ``{0..delta}``.  A 0-round algorithm picks, for each ``s``, a split of an
  allowed node configuration into labels for in-ports and labels for
  out-ports; on an edge, an out-label of one endpoint faces an in-label of
  the other, and both the endpoints' in-degrees are arbitrary.  Solvability
  means: splits ``(I_s, O_s)`` can be chosen so that every out-label from any
  chosen split is edge-compatible with every in-label from any chosen split.

Both procedures run on the bitmask kernel (:mod:`repro.core.alphabet`):
split signatures and the DFS unions are label masks, and the all-pairs
edge-compatibility conditions collapse to polar-mask subset tests (a set of
out-labels is compatible with a set of in-labels iff the in-mask is a subset
of the AND of the out-labels' adjacency masks).  Witnesses still carry the
original name tuples, and the search visits splits in the same deterministic
order as the legacy string path, so the witness found is identical.

The polar queries here stay scalar by design even when the vectorized tier
(:mod:`repro.core.vectorkernel`) is active: each DFS step asks for one
memoised ``polar_mask`` of a running union, a data-dependent chain with no
candidate batch to evaluate, unlike the closed-set fixed point or the full
step's completion fold.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core.alphabet import InternedProblem, intern, iter_bits
from repro.core.galois import Compatibility
from repro.core.problem import NodeConfig, Problem
from repro.utils.jsonio import atomic_write_json, load_json, sweep_stale_tmp_files
from repro.utils.multiset import multiset_difference, submultisets_of_size


@dataclass(frozen=True)
class ZeroRoundWitness:
    """Evidence that a problem is 0-round solvable.

    For the no-input setting, ``splits`` holds the single self-compatible
    configuration under key ``-1``.  For the orientation setting, ``splits``
    maps each in-degree ``s`` to the chosen ``(in_labels, out_labels)`` pair.
    """

    problem_name: str
    setting: str
    splits: dict[int, tuple[NodeConfig, NodeConfig]]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form; split keys become strings, configurations lists."""
        return {
            "problem_name": self.problem_name,
            "setting": self.setting,
            "splits": {
                str(key): [list(ins), list(outs)]
                for key, (ins, outs) in sorted(self.splits.items())
            },
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ZeroRoundWitness":
        return ZeroRoundWitness(
            problem_name=data["problem_name"],
            setting=data["setting"],
            splits={
                int(key): (tuple(ins), tuple(outs))
                for key, (ins, outs) in data["splits"].items()
            },
        )

    def describe(self) -> str:
        lines = [f"0-round witness for {self.problem_name} ({self.setting})"]
        for key in sorted(self.splits):
            ins, outs = self.splits[key]
            if key == -1:
                lines.append(f"  configuration: {' '.join(outs)}")
            else:
                lines.append(
                    f"  in-degree {key}: in={' '.join(ins) or '-'} "
                    f"out={' '.join(outs) or '-'}"
                )
        return "\n".join(lines)


def zero_round_no_input(problem: Problem) -> ZeroRoundWitness | None:
    """0-round solvability with no symmetry-breaking input.

    Returns a witness configuration or None.  The condition is the classical
    round-elimination triviality test: some ``C`` in ``h`` with
    ``{x, y} in g`` for all ``x, y`` drawn from ``C``'s support -- on masks,
    the support must be a subset of its own polar.
    """
    interned = intern(problem)
    comp = Compatibility(problem)
    for index, config in enumerate(interned.node_configs):
        support = interned.config_supports[index]
        if support & ~comp.polar_mask(support) == 0:
            return ZeroRoundWitness(
                problem_name=problem.name,
                setting="no-input",
                splits={-1: ((), interned.alphabet.config(config))},
            )
    return None


def _orientation_splits(
    interned: InternedProblem, in_degree: int
) -> list[tuple[tuple[int, ...], tuple[int, ...], int, int]]:
    """Distinct split *signatures*: one representative per (in-set, out-set).

    The compatibility search only depends on which label sets face each
    other, not on multiplicities, so splits are deduplicated by the pair of
    *support masks* -- a large reduction on derived problems with many
    configurations.  Entries are ``(in_config, out_config, in_mask,
    out_mask)`` with the configurations as index tuples; iteration order
    matches the legacy string path (configs in sorted order, sub-multisets in
    combination order), so the chosen representatives -- and ultimately the
    witness -- are identical.
    """
    by_signature: dict[tuple[int, int], tuple[tuple[int, ...], tuple[int, ...], int, int]] = {}
    for config in interned.node_configs:
        for in_part in submultisets_of_size(config, in_degree):
            out_part = multiset_difference(config, in_part)
            in_mask = 0
            for label in in_part:
                in_mask |= 1 << label
            out_mask = 0
            for label in out_part:
                out_mask |= 1 << label
            by_signature.setdefault(
                (in_mask, out_mask), (in_part, out_part, in_mask, out_mask)
            )
    return sorted(by_signature.values())


def zero_round_with_orientations(problem: Problem) -> ZeroRoundWitness | None:
    """0-round solvability given input edge orientations on a regular class.

    Performs a depth-first search over the choice of one split per in-degree,
    maintaining the union masks of chosen in-labels and out-labels plus their
    running polar masks, pruning as soon as some out-label would face some
    in-label not allowed by ``g``, and memoising failed
    ``(level, in-union, out-union)`` states.
    """
    interned = intern(problem)
    comp = Compatibility(problem)
    delta = problem.delta
    per_degree = [_orientation_splits(interned, s) for s in range(delta + 1)]
    if any(not options for options in per_degree):
        return None
    # Search the most-constrained levels first (fewest options).
    level_order = sorted(range(delta + 1), key=lambda s: len(per_degree[s]))

    chosen: dict[int, tuple[tuple[int, ...], tuple[int, ...]]] = {}
    failed: set[tuple[int, int, int]] = set()

    def search(index: int, in_union: int, out_union: int, in_allowed: int) -> bool:
        # in_allowed = polar(out_union): the labels every chosen out-label
        # accepts across an edge.  (The converse direction needs no separate
        # mask: "new out-labels accept all in-labels" is the same all-pairs
        # condition as "all in-labels lie in polar(new out-labels)".)
        if index == len(level_order):
            return True
        state = (index, in_union, out_union)
        if state in failed:
            return False
        s = level_order[index]
        for in_part, out_part, in_mask, out_mask in per_degree[s]:
            new_in = in_mask & ~in_union
            new_out = out_mask & ~out_union
            # Fresh out-labels must accept every in-label old and new ...
            new_out_polar = comp.polar_mask(new_out)
            if (in_union | new_in) & ~new_out_polar:
                continue
            # ... and fresh in-labels must be accepted by every old out-label.
            if new_in & ~in_allowed:
                continue
            chosen[s] = (in_part, out_part)
            if search(
                index + 1,
                in_union | new_in,
                out_union | new_out,
                in_allowed & new_out_polar,
            ):
                return True
            del chosen[s]
        failed.add(state)
        return False

    if search(0, 0, 0, interned.alphabet.full_mask):
        to_names = interned.alphabet.config
        return ZeroRoundWitness(
            problem_name=problem.name,
            setting="edge-orientations",
            splits={
                s: (to_names(in_part), to_names(out_part))
                for s, (in_part, out_part) in chosen.items()
            },
        )
    return None


def _orientations_solvable_delta2(problem: Problem) -> bool:
    """Boolean-only fast path for the orientation setting at ``delta == 2``.

    With two ports there are exactly three in-degree levels, so a 0-round
    algorithm is one out-configuration ``C0`` (in-degree 0), one
    in-configuration ``C2`` (in-degree 2), and one ordered split ``(x, y)``
    of some configuration (in-degree 1, ``x`` in / ``y`` out), subject to
    the all-pairs condition ``IN x OUT subset of g`` for ``IN =
    supp(C2) | {x}``, ``OUT = supp(C0) | {y}``.  That condition factors
    completely through polar masks:

    * ``supp(C2) <= polar(supp(C0))``  (the pair screen);
    * ``supp(C2) <= adj(y)`` and ``x in adj(y)``  (everything faces ``y``);
    * ``x in polar(supp(C0))``  (``x`` faces all of ``C0``) -- unless ``y``
      itself lies in ``supp(C0)``, in which case ``adj(y)`` constraints are
      already part of ``polar(supp(C0))`` and the split check collapses to
      ``x in polar(supp(C0))`` alone.

    The scan over splits depends on the pair only through ``(supp(C2),
    polar(supp(C0)))``, which repeats massively (derived problems share
    polars), so it is memoised on that key: the whole decision is a few
    hundred thousand mask operations where the general DFS spends a minute
    on 1000-label problems.  The general DFS remains the witness-producing
    path and the reference the differential suite compares against.
    """
    interned = intern(problem)
    configs = interned.node_configs
    if not configs or not interned.edge_pairs:
        return False
    comp = Compatibility(problem)
    adjacency = interned.adjacency
    supports = sorted(set(interned.config_supports))
    polar = {support: comp.polar_mask(support) for support in supports}

    # Ordered split options for in-degree 1: out label y -> mask of in labels
    # x with {x, y} an allowed configuration; x must additionally face y.
    options_by_out: dict[int, int] = {}
    for a, b in configs:
        options_by_out[b] = options_by_out.get(b, 0) | (1 << a)
        options_by_out[a] = options_by_out.get(a, 0) | (1 << b)
    facing = {y: mask & adjacency[y] for y, mask in options_by_out.items()}
    # Out labels whose adjacency accepts a whole in-support, per support.
    accepts = {
        support: [y for y in sorted(facing) if support & ~adjacency[y] == 0]
        for support in supports
    }

    split_memo: dict[tuple[int, int], bool] = {}
    for out_support in supports:
        p0 = polar[out_support]
        for in_support in supports:
            if in_support & ~p0:
                continue
            # y already among C0's labels: adj(y) is folded into p0, so any
            # split partner x in p0 works.
            found = False
            for y in iter_bits(out_support):
                if options_by_out.get(y, 0) & p0:
                    found = True
                    break
            if not found:
                key = (in_support, p0)
                cached = split_memo.get(key)
                if cached is None:
                    cached = any(facing[y] & p0 for y in accepts[in_support])
                    split_memo[key] = cached
                found = cached
            if found:
                return True
    return False


def is_zero_round_solvable(problem: Problem, orientations: bool = True) -> bool:
    """Convenience wrapper returning a bare boolean.

    With ``orientations=True`` (the setting of Theorem 2 and all the paper's
    lower bounds) the orientation-input procedure is used; note a problem
    solvable with no input is a fortiori solvable with orientations.  At
    ``delta == 2`` the boolean is decided by the closed-form fast path
    (:func:`_orientations_solvable_delta2`); witnesses always come from the
    general DFS.
    """
    if orientations:
        if problem.delta == 2:
            return _orientations_solvable_delta2(problem)
        return zero_round_with_orientations(problem) is not None
    return zero_round_no_input(problem) is not None


def check_zero_round_witness(
    problem: Problem, witness: ZeroRoundWitness, orientations: bool = True
) -> list[str]:
    """Independently validate a recorded 0-round witness, field by field.

    Returns the list of failures (empty iff the witness proves ``problem``
    0-round solvable in the requested input setting).  Every serialized
    field is load-bearing: the recorded problem name must match, the setting
    must match the claim being verified, the split keys must cover exactly
    the in-degrees the adversary realises, each split must have the right
    arity and be an allowed node configuration, and the all-pairs
    edge-compatibility condition is re-decided on the bitmask kernel.  This
    is how :meth:`~repro.core.certificate.UpperBoundCertificate.verify`
    re-checks a chain's terminal without trusting the recorded witness.
    """
    failures: list[str] = []
    if witness.problem_name != problem.name:
        failures.append(
            f"witness names {witness.problem_name!r}, not {problem.name!r}"
        )
    expected_setting = "edge-orientations" if orientations else "no-input"
    if witness.setting != expected_setting:
        failures.append(
            f"witness setting {witness.setting!r} does not match the "
            f"{expected_setting!r} claim"
        )
        return failures
    interned = intern(problem)
    index = interned.alphabet.index
    comp = Compatibility(problem)

    def resolve(config: NodeConfig) -> tuple[int, ...] | None:
        """Sorted label indices of a recorded configuration, None off-alphabet."""
        positions = []
        for label in config:
            position = index.get(label)
            if position is None:
                return None
            positions.append(position)
        return tuple(sorted(positions))

    def mask_of(indices: tuple[int, ...]) -> int:
        mask = 0
        for position in indices:
            mask |= 1 << position
        return mask

    if not orientations:
        if set(witness.splits) != {-1}:
            failures.append(
                f"no-input witness must hold exactly the key -1, "
                f"got {sorted(witness.splits)}"
            )
            return failures
        ins, outs = witness.splits[-1]
        if ins:
            failures.append("no-input witness must leave the in-part empty")
        if len(outs) != problem.delta:
            failures.append(
                f"witness configuration has {len(outs)} labels, "
                f"delta is {problem.delta}"
            )
            return failures
        indices = resolve(outs)
        if indices is None:
            failures.append("witness configuration uses labels outside the alphabet")
            return failures
        if indices not in interned.node_config_set:
            failures.append(
                "witness configuration is not an allowed node configuration"
            )
        support = mask_of(indices)
        if support & ~comp.polar_mask(support):
            failures.append(
                "witness configuration is not self-compatible across an edge"
            )
        return failures

    delta = problem.delta
    if set(witness.splits) != set(range(delta + 1)):
        failures.append(
            f"orientation witness must choose one split per in-degree "
            f"0..{delta}, got {sorted(witness.splits)}"
        )
        return failures
    in_union = 0
    out_union = 0
    for s in range(delta + 1):
        ins, outs = witness.splits[s]
        if len(ins) != s or len(outs) != delta - s:
            failures.append(
                f"in-degree {s}: split arity is ({len(ins)}, {len(outs)}), "
                f"expected ({s}, {delta - s})"
            )
            return failures
        indices = resolve(ins + outs)
        if indices is None:
            failures.append(
                f"in-degree {s}: split uses labels outside the alphabet"
            )
            return failures
        if indices not in interned.node_config_set:
            failures.append(
                f"in-degree {s}: split is not an allowed node configuration"
            )
        in_indices = resolve(ins)
        out_indices = resolve(outs)
        assert in_indices is not None and out_indices is not None
        in_union |= mask_of(in_indices)
        out_union |= mask_of(out_indices)
    # The 0-round condition itself: on an edge, any chosen out-label faces
    # any chosen in-label (both endpoints' in-degrees are adversarial), so
    # the in-union must lie in the polar of the out-union.
    if in_union & ~comp.polar_mask(out_union):
        failures.append(
            "some chosen in-label is not edge-compatible with every chosen "
            "out-label"
        )
    return failures


# -- cross-branch memoisation --------------------------------------------------


class ZeroRoundMemo:
    """A cross-branch memo table of 0-round solvability verdicts.

    The lower-bound search re-decides 0-round solvability for every
    candidate of every beam state, and different branches constantly reach
    the same derived problems up to label renaming; on 1000-label derived
    problems the orientation-split DFS dominates search profiles.  This
    table memoises the bare verdict, keyed on the *canonical problem hash*
    (:func:`repro.core.canonical.canonical_hash`) plus the input setting, so
    renamed twins hit and the verdict is shared across branches, searches,
    and -- through the engine, which owns one instance next to its speedup
    cache -- worker threads.

    The memo is thread-safe and bounded (LRU over ``maxsize`` entries;
    verdicts are single booleans, so no weight accounting is needed).  With
    a ``directory`` every stored verdict is also written as one tiny JSON
    file named by the key, and in-memory misses consult the directory before
    recomputing -- the same persistence contract as the speedup cache:
    corrupt, truncated, or type-mangled entries behave exactly like absent
    ones and get overwritten by the recomputation's store.
    """

    def __init__(self, maxsize: int = 4096, directory: str | Path | None = None):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, bool] = OrderedDict()
        self._maxsize = maxsize
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            # Reclaim temp files abandoned by crashed writers; temp names
            # never collide with entry names, so they are pure garbage here.
            sweep_stale_tmp_files(self._directory)
        self.hits = 0
        self.misses = 0
        self.store_failures = 0
        self._recorded: list[tuple[str, bool]] | None = None

    @staticmethod
    def key_from_hash(problem_hash: str, orientations: bool) -> str:
        """Compose the memo key from an already-computed canonical hash."""
        return ("orientations:" if orientations else "no-input:") + problem_hash

    @staticmethod
    def key_for(problem: Problem, orientations: bool) -> str:
        """The memo key: input setting plus canonical problem hash."""
        from repro.core.canonical import canonical_hash

        return ZeroRoundMemo.key_from_hash(canonical_hash(problem), orientations)

    def _path_for(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / (key.replace(":", "_") + ".json")

    def lookup(self, key: str) -> bool | None:
        """The stored verdict, or None on a miss (counted)."""
        with self._lock:
            verdict = self._memory.get(key)
            if verdict is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return verdict
        if self._directory is not None:
            verdict = self._load(key)
            if verdict is not None:
                with self._lock:
                    self.hits += 1
                return verdict
        with self._lock:
            self.misses += 1
        return None

    def _remember(self, key: str, solvable: bool) -> None:
        """Insert into the LRU table (newest position), evicting beyond bounds."""
        with self._lock:
            self._memory.pop(key, None)
            self._memory[key] = solvable
            if self._recorded is not None:
                self._recorded.append((key, solvable))
            while len(self._memory) > self._maxsize:
                self._memory.popitem(last=False)

    def store(self, key: str, solvable: bool) -> None:
        self._remember(key, bool(solvable))
        if self._directory is not None:
            # Best-effort by contract: a full disk or interrupted rename
            # leaves the prior entry intact and is counted, never raised
            # into the derivation path.
            ok = atomic_write_json(
                self._path_for(key),
                {"version": 1, "key": key, "solvable": bool(solvable)},
            )
            if not ok:
                with self._lock:
                    self.store_failures += 1

    def merge(self, key: str, solvable: bool) -> None:
        """Adopt a verdict decided elsewhere (a worker process).

        No hit/miss accounting and no disk write: with a directory
        configured the worker shares it and has already persisted the
        verdict.
        """
        self._remember(key, bool(solvable))

    def start_recording(self) -> None:
        """Capture every subsequent insert as a mergeable delta.

        Worker processes enable this so the parent can merge their verdicts
        back (:meth:`drain_recorded` / :meth:`merge`).
        """
        with self._lock:
            self._recorded = []

    def drain_recorded(self) -> tuple[tuple[str, bool], ...]:
        """Return and reset the recorded inserts (empty when not recording)."""
        with self._lock:
            if self._recorded is None:
                return ()
            drained = tuple(self._recorded)
            self._recorded = []
            return drained

    def check(
        self, problem: Problem, orientations: bool = True, *, key: str | None = None
    ) -> bool:
        """Memoised :func:`is_zero_round_solvable`.

        Callers that already hold the canonical hash (the search driver
        dedups candidates by it) pass the composed ``key`` to skip the
        hashing; it must equal ``key_for(problem, orientations)``.
        """
        if key is None:
            key = self.key_for(problem, orientations)
        verdict = self.lookup(key)
        if verdict is None:
            verdict = is_zero_round_solvable(problem, orientations=orientations)
            self.store(key, verdict)
        return verdict

    def _load(self, key: str) -> bool | None:
        """Load one on-disk verdict; any corruption means a plain miss.

        The payload must be a dict whose ``solvable`` is a genuine bool and
        whose recorded ``key`` matches the requested one (a mangled or
        collided file must degrade to a miss, never to a wrong verdict for
        the requesting problem).
        """
        payload = load_json(self._path_for(key))
        if not isinstance(payload, dict):
            return None
        solvable = payload.get("solvable")
        if not isinstance(solvable, bool) or payload.get("key") != key:
            return None
        self._remember(key, solvable)
        return solvable

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            self.hits = 0
            self.misses = 0
            self.store_failures = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "store_failures": self.store_failures,
            }
