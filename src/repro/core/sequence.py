"""Iterated round elimination: the ``Pi, Pi_1, Pi_2, ...`` pipeline.

This module drives the workflow of Section 2.1: starting from a problem,
apply the speedup repeatedly, optionally interleaving *relaxation* steps
(each certified by a label map), watching for two terminating events:

* some ``Pi_t`` becomes 0-round solvable -- then the original problem has
  complexity at least ``t`` (exactly ``t`` on the matching high-girth
  t-independent class, by Theorem 1);
* some ``Pi_t`` is isomorphic to an earlier ``Pi_s`` with no 0-round
  solvable problem in between -- a **fixed point / cycle** (sinkless
  coloring is the paradigm, Section 4.4), which certifies that the problem
  is not solvable in any number of rounds for which the required high-girth
  t-independent class exists, i.e. an Omega(log n) lower bound on bounded
  degree classes.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any
from dataclasses import dataclass, field

from repro.core.problem import Problem
from repro.core.relaxation import RelaxationCertificate
from repro.core.zero_round import ZeroRoundWitness

# A relaxer takes (derived problem, step index) and returns the relaxed
# problem together with the certifying label map, or None to keep the
# derived problem unchanged.
Relaxer = Callable[[Problem, int], tuple[Problem, dict[str, str]] | None]


@dataclass(frozen=True)
class SequenceStep:
    """Record of one pipeline step."""

    index: int
    problem: Problem
    relaxation: RelaxationCertificate | None
    zero_round_witness: ZeroRoundWitness | None
    isomorphic_to_step: int | None

    @property
    def zero_round_solvable(self) -> bool:
        return self.zero_round_witness is not None

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "index": self.index,
            "problem": self.problem.to_dict(),
            "relaxation": None if self.relaxation is None else self.relaxation.to_dict(),
            "zero_round_witness": (
                None
                if self.zero_round_witness is None
                else self.zero_round_witness.to_dict()
            ),
            "isomorphic_to_step": self.isomorphic_to_step,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SequenceStep":
        relaxation = data.get("relaxation")
        witness = data.get("zero_round_witness")
        return SequenceStep(
            index=data["index"],
            problem=Problem.from_dict(data["problem"]),
            relaxation=(
                None if relaxation is None else RelaxationCertificate.from_dict(relaxation)
            ),
            zero_round_witness=(
                None if witness is None else ZeroRoundWitness.from_dict(witness)
            ),
            isomorphic_to_step=data["isomorphic_to_step"],
        )


@dataclass(frozen=True)
class EliminationResult:
    """Outcome of an iterated round-elimination run.

    ``steps[0]`` is the initial problem; ``steps[t]`` is the problem after
    ``t`` speedup(+relaxation) applications.  ``stopped_by_limit`` records
    that the description-complexity explosion (Section 2.1) tripped the
    engine's size guards -- the situation the relaxation technique exists
    to tame.
    """

    steps: list[SequenceStep] = field(default_factory=list)
    stopped_by_limit: bool = False

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`) -- the wire format
        emitted by ``python -m repro run --json``."""
        return {
            "steps": [step.to_dict() for step in self.steps],
            "stopped_by_limit": self.stopped_by_limit,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "EliminationResult":
        return EliminationResult(
            steps=[SequenceStep.from_dict(step) for step in data["steps"]],
            stopped_by_limit=data["stopped_by_limit"],
        )

    @property
    def first_zero_round_index(self) -> int | None:
        for step in self.steps:
            if step.zero_round_solvable:
                return step.index
        return None

    @property
    def fixed_point_index(self) -> int | None:
        """Index of the first step isomorphic to an earlier one, if any."""
        for step in self.steps:
            if step.isomorphic_to_step is not None:
                return step.index
        return None

    @property
    def lower_bound(self) -> int:
        """A certified round lower bound for the initial problem.

        If no problem in the computed prefix is 0-round solvable, every
        computed step certifies one more round (given girth/t-independence),
        so the bound is the number of speedup steps performed.  If step ``t``
        is the first 0-round solvable problem, the bound is ``t``.
        """
        first = self.first_zero_round_index
        if first is not None:
            return first
        return len(self.steps) - 1

    @property
    def unbounded(self) -> bool:
        """True iff a fixed point was found with no 0-round solvable problem.

        In that case the lower bound grows with the maximal ``t`` for which a
        girth-(2t+2) t-independent class exists -- Omega(log n) on bounded
        degree graphs (Section 4.4).
        """
        return (
            self.fixed_point_index is not None
            and self.first_zero_round_index is None
        )

    def summary(self) -> str:
        lines = []
        for step in self.steps:
            tags = []
            if step.relaxation is not None:
                tags.append(f"relaxed->{step.relaxation.target_name}")
            if step.zero_round_solvable:
                tags.append("0-round")
            if step.isomorphic_to_step is not None:
                tags.append(f"iso-to-step-{step.isomorphic_to_step}")
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            lines.append(
                f"step {step.index}: {step.problem.name} "
                f"(labels={len(step.problem.labels)}, "
                f"node={len(step.problem.node_constraint)}, "
                f"edge={len(step.problem.edge_constraint)}){suffix}"
            )
        if self.unbounded:
            lines.append(
                "fixed point with no 0-round solvable problem: "
                "Omega(log n) lower bound on bounded-degree high-girth classes"
            )
        else:
            lines.append(f"certified lower bound: {self.lower_bound} rounds")
        if self.stopped_by_limit:
            lines.append(
                "stopped by description-size limits (Section 2.1's explosion); "
                "apply a relaxation to continue"
            )
        return "\n".join(lines)


def run_round_elimination(
    problem: Problem,
    max_steps: int,
    relaxer: Relaxer | None = None,
    orientations: bool = True,
    simplify: bool = True,
    detect_fixed_points: bool = True,
    stop_at_zero_round: bool = True,
    *,
    max_derived_labels: int | None = None,
    max_candidate_configs: int | None = None,
    max_live_configs: int | None = None,
    kernel: str | None = None,
) -> EliminationResult:
    """Run the iterated speedup pipeline.

    Parameters
    ----------
    problem:
        The initial problem ``Pi``.
    max_steps:
        Maximum number of speedup applications.
    relaxer:
        Optional hook applied after each speedup; must return the relaxed
        problem and the label map certifying it (the map is re-verified
        here -- an invalid relaxation raises).
    orientations:
        Whether 0-round solvability is tested in the orientation-input
        setting (the Theorem 2 setting) or with no input at all.
    simplify:
        Use the maximality-simplified derivation (Theorem 2).
    detect_fixed_points:
        Test each new problem for isomorphism against all previous ones.
    stop_at_zero_round:
        Stop as soon as a 0-round solvable problem appears.
    max_derived_labels / max_candidate_configs / max_live_configs / kernel:
        Optional :class:`repro.engine.EngineConfig` overrides for the
        pipeline's derivations (``None`` keeps the default engine's
        values).  Explicit ceilings matter more since the streaming full
        step retired the a-priori grid refusal: a blown-up step is now
        *computed* up to the work and frontier caps rather than refused
        from a size prediction, so towers expected to explode should pick
        ceilings matched to the description sizes they can afford.

    Compatibility shim: delegates to the process-wide default
    :class:`repro.engine.Engine` (re-configured with these flags but sharing
    its derivation cache), so pipelines inherit content-addressed
    memoisation and the once-per-step compression of fixed-point detection.
    Use :meth:`repro.engine.Engine.iter_elimination` directly for streaming
    access to the steps.
    """
    from repro.engine import get_default_engine

    overrides: dict[str, object] = {
        "orientations": orientations,
        "simplify": simplify,
        "detect_fixed_points": detect_fixed_points,
        "stop_at_zero_round": stop_at_zero_round,
    }
    for name, value in (
        ("max_derived_labels", max_derived_labels),
        ("max_candidate_configs", max_candidate_configs),
        ("max_live_configs", max_live_configs),
        ("kernel", kernel),
    ):
        if value is not None:
            overrides[name] = value
    engine = get_default_engine().with_config(**overrides)
    return engine.run(problem, max_steps, relaxer=relaxer)
