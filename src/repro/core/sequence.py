"""Iterated round elimination: the ``Pi, Pi_1, Pi_2, ...`` pipeline.

This module drives the workflow of Section 2.1: starting from a problem,
apply the speedup repeatedly, optionally interleaving *relaxation* steps
(each certified by a label map), watching for two terminating events:

* some ``Pi_t`` becomes 0-round solvable -- then the original problem has
  complexity at least ``t`` (exactly ``t`` on the matching high-girth
  t-independent class, by Theorem 1);
* some ``Pi_t`` is isomorphic to an earlier ``Pi_s`` with no 0-round
  solvable problem in between -- a **fixed point / cycle** (sinkless
  coloring is the paradigm, Section 4.4), which certifies that the problem
  is not solvable in any number of rounds for which the required high-girth
  t-independent class exists, i.e. an Omega(log n) lower bound on bounded
  degree classes.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.isomorphism import find_isomorphism
from repro.core.problem import Problem
from repro.core.relaxation import RelaxationCertificate, certify_relaxation
from repro.core.speedup import EngineLimitError, speedup
from repro.core.zero_round import (
    ZeroRoundWitness,
    zero_round_no_input,
    zero_round_with_orientations,
)

# A relaxer takes (derived problem, step index) and returns the relaxed
# problem together with the certifying label map, or None to keep the
# derived problem unchanged.
Relaxer = Callable[[Problem, int], tuple[Problem, dict[str, str]] | None]


@dataclass(frozen=True)
class SequenceStep:
    """Record of one pipeline step."""

    index: int
    problem: Problem
    relaxation: RelaxationCertificate | None
    zero_round_witness: ZeroRoundWitness | None
    isomorphic_to_step: int | None

    @property
    def zero_round_solvable(self) -> bool:
        return self.zero_round_witness is not None


@dataclass(frozen=True)
class EliminationResult:
    """Outcome of an iterated round-elimination run.

    ``steps[0]`` is the initial problem; ``steps[t]`` is the problem after
    ``t`` speedup(+relaxation) applications.  ``stopped_by_limit`` records
    that the description-complexity explosion (Section 2.1) tripped the
    engine's size guards -- the situation the relaxation technique exists
    to tame.
    """

    steps: list[SequenceStep] = field(default_factory=list)
    stopped_by_limit: bool = False

    @property
    def first_zero_round_index(self) -> int | None:
        for step in self.steps:
            if step.zero_round_solvable:
                return step.index
        return None

    @property
    def fixed_point_index(self) -> int | None:
        """Index of the first step isomorphic to an earlier one, if any."""
        for step in self.steps:
            if step.isomorphic_to_step is not None:
                return step.index
        return None

    @property
    def lower_bound(self) -> int:
        """A certified round lower bound for the initial problem.

        If no problem in the computed prefix is 0-round solvable, every
        computed step certifies one more round (given girth/t-independence),
        so the bound is the number of speedup steps performed.  If step ``t``
        is the first 0-round solvable problem, the bound is ``t``.
        """
        first = self.first_zero_round_index
        if first is not None:
            return first
        return len(self.steps) - 1

    @property
    def unbounded(self) -> bool:
        """True iff a fixed point was found with no 0-round solvable problem.

        In that case the lower bound grows with the maximal ``t`` for which a
        girth-(2t+2) t-independent class exists -- Omega(log n) on bounded
        degree graphs (Section 4.4).
        """
        return (
            self.fixed_point_index is not None
            and self.first_zero_round_index is None
        )

    def summary(self) -> str:
        lines = []
        for step in self.steps:
            tags = []
            if step.relaxation is not None:
                tags.append(f"relaxed->{step.relaxation.target_name}")
            if step.zero_round_solvable:
                tags.append("0-round")
            if step.isomorphic_to_step is not None:
                tags.append(f"iso-to-step-{step.isomorphic_to_step}")
            suffix = f"  [{', '.join(tags)}]" if tags else ""
            lines.append(
                f"step {step.index}: {step.problem.name} "
                f"(labels={len(step.problem.labels)}, "
                f"node={len(step.problem.node_constraint)}, "
                f"edge={len(step.problem.edge_constraint)}){suffix}"
            )
        if self.unbounded:
            lines.append(
                "fixed point with no 0-round solvable problem: "
                "Omega(log n) lower bound on bounded-degree high-girth classes"
            )
        else:
            lines.append(f"certified lower bound: {self.lower_bound} rounds")
        if self.stopped_by_limit:
            lines.append(
                "stopped by description-size limits (Section 2.1's explosion); "
                "apply a relaxation to continue"
            )
        return "\n".join(lines)


def run_round_elimination(
    problem: Problem,
    max_steps: int,
    relaxer: Relaxer | None = None,
    orientations: bool = True,
    simplify: bool = True,
    detect_fixed_points: bool = True,
    stop_at_zero_round: bool = True,
) -> EliminationResult:
    """Run the iterated speedup pipeline.

    Parameters
    ----------
    problem:
        The initial problem ``Pi``.
    max_steps:
        Maximum number of speedup applications.
    relaxer:
        Optional hook applied after each speedup; must return the relaxed
        problem and the label map certifying it (the map is re-verified
        here -- an invalid relaxation raises).
    orientations:
        Whether 0-round solvability is tested in the orientation-input
        setting (the Theorem 2 setting) or with no input at all.
    simplify:
        Use the maximality-simplified derivation (Theorem 2).
    detect_fixed_points:
        Test each new problem for isomorphism against all previous ones.
    stop_at_zero_round:
        Stop as soon as a 0-round solvable problem appears.
    """

    def witness_for(p: Problem) -> ZeroRoundWitness | None:
        if orientations:
            return zero_round_with_orientations(p)
        return zero_round_no_input(p)

    steps: list[SequenceStep] = []
    current = problem
    steps.append(
        SequenceStep(
            index=0,
            problem=current,
            relaxation=None,
            zero_round_witness=witness_for(current),
            isomorphic_to_step=None,
        )
    )

    stopped_by_limit = False
    for index in range(1, max_steps + 1):
        if stop_at_zero_round and steps[-1].zero_round_solvable:
            break
        if steps[-1].isomorphic_to_step is not None:
            break
        try:
            derived = speedup(current, simplify=simplify).full
        except EngineLimitError:
            stopped_by_limit = True
            break
        certificate = None
        if relaxer is not None:
            relaxed = relaxer(derived, index)
            if relaxed is not None:
                target, mapping = relaxed
                certificate = certify_relaxation(derived, target, mapping)
                derived = target
        iso_index = None
        if detect_fixed_points:
            for earlier in steps:
                if find_isomorphism(derived.compressed(), earlier.problem.compressed()):
                    iso_index = earlier.index
                    break
        steps.append(
            SequenceStep(
                index=index,
                problem=derived,
                relaxation=certificate,
                zero_round_witness=witness_for(derived),
                isomorphic_to_step=iso_index,
            )
        )
        current = derived

    return EliminationResult(steps=steps, stopped_by_limit=stopped_by_limit)
