"""Machine-checkable lower-bound certificates: speedup/relaxation chains.

A round-elimination lower bound (the Section 2.1 workflow, automated by the
paper's speedup theorem) is a *chain*: starting from ``Pi``, each step is
either

* a **speedup** step ``Q -> Q_1`` (justified by Theorem 1/2 and re-derivable
  from scratch), recorded as the full provenance-carrying
  :class:`~repro.core.speedup.SpeedupResult`, or
* a **relaxation** step ``Q -> Q'`` (``Q'`` provably no harder), recorded as
  the :class:`~repro.core.relaxation.RelaxationCertificate` label map that
  certifies it.

Two terminal events turn a chain into a proof:

* ``zero-round-unsolvable`` -- after ``t`` speedup steps the final problem is
  not 0-round solvable, so ``Pi`` is not solvable in ``t`` rounds on the
  matching girth-restricted, t-independent class;
* ``fixed-point`` -- the final problem is isomorphic to an earlier chain
  problem with at least one speedup step in between and no 0-round solvable
  problem anywhere in the chain, so the chain can be pumped: ``Pi`` is not
  solvable in ``t`` rounds for *any* ``t`` for which the required class
  exists -- the Omega(log n) bound on bounded-degree graphs (Section 4.4).

:meth:`LowerBoundCertificate.verify` re-checks every step from scratch --
speedups are re-derived with the uncached
:func:`~repro.core.speedup.compute_speedup`, relaxation maps re-validated,
terminal conditions re-decided -- so a certificate deserialized from JSON is
a self-contained, independently auditable proof object (the format the
Bastide-Fraigniaud extension of round elimination argues for).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from dataclasses import dataclass

from repro.core.alphabet import set_label_name
from repro.core.isomorphism import find_isomorphism
from repro.core.problem import Problem, ProblemError
from repro.core.relaxation import (
    HARDENS,
    RELAXES,
    RelaxationCertificate,
    is_harder_restriction,
    is_relaxation_map,
)
from repro.core.speedup import (
    MAX_CANDIDATE_CONFIGS,
    MAX_DERIVED_LABELS,
    EngineLimitError,
    SpeedupResult,
    compute_speedup,
)
from repro.core.zero_round import (
    ZeroRoundWitness,
    check_zero_round_witness,
    is_zero_round_solvable,
)

SPEEDUP = "speedup"
RELAXATION = "relaxation"
HARDENING = "hardening"

TERMINAL_UNSOLVABLE = "zero-round-unsolvable"
TERMINAL_FIXED_POINT = "fixed-point"


class CertificateError(ValueError):
    """Raised when a certificate (or its payload) is malformed."""


@dataclass(frozen=True)
class CertificateStep:
    """One chain step: the resulting problem plus its justification.

    Exactly one of ``speedup`` / ``relaxation`` is set, matching ``kind``.
    For speedup steps ``problem`` is the derived ``SpeedupResult.full``; for
    relaxation steps it is the relaxation target (the certificate's label map
    alone does not pin the target problem down, so it is stored explicitly).
    Hardening steps (upper-bound chains only) carry the restriction's
    :class:`~repro.core.relaxation.RelaxationCertificate` in ``relaxation``
    like relaxation steps do -- ``kind`` disambiguates the claimed direction.
    """

    kind: str
    problem: Problem
    speedup: SpeedupResult | None = None
    relaxation: RelaxationCertificate | None = None

    def __post_init__(self) -> None:
        if self.kind == SPEEDUP:
            if self.speedup is None or self.relaxation is not None:
                raise CertificateError("speedup step must carry exactly a SpeedupResult")
            if self.speedup.full != self.problem:
                raise CertificateError(
                    "speedup step problem does not match the derived result"
                )
        elif self.kind in (RELAXATION, HARDENING):
            if self.relaxation is None or self.speedup is not None:
                raise CertificateError(
                    f"{self.kind} step must carry exactly a RelaxationCertificate"
                )
        else:
            raise CertificateError(f"unknown step kind {self.kind!r}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        if self.kind == SPEEDUP:
            assert self.speedup is not None
            return {"kind": SPEEDUP, "speedup": self.speedup.to_dict()}
        assert self.relaxation is not None
        return {
            "kind": self.kind,
            "problem": self.problem.to_dict(),
            "relaxation": self.relaxation.to_dict(),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CertificateStep":
        try:
            kind = data["kind"]
            if kind == SPEEDUP:
                result = SpeedupResult.from_dict(data["speedup"])
                return CertificateStep(kind=SPEEDUP, problem=result.full, speedup=result)
            if kind in (RELAXATION, HARDENING):
                return CertificateStep(
                    kind=kind,
                    problem=Problem.from_dict(data["problem"]),
                    relaxation=RelaxationCertificate.from_dict(data["relaxation"]),
                )
            raise CertificateError(f"unknown step kind {kind!r}")
        except CertificateError:
            raise
        except (KeyError, TypeError, AttributeError, ProblemError, ValueError) as exc:
            raise CertificateError(f"malformed certificate step: {exc!r}") from exc


def _structured_form(result: SpeedupResult) -> Problem:
    """The derived problem with its set-valued names restored from the meanings.

    Every result this library produces -- fresh derivations and
    renaming-translated cache hits alike -- satisfies ``full ==
    structured.renamed(short names)`` with the structured labels being the
    canonical set names of the ``full_meaning`` entries.  Rebuilding the
    structured form therefore erases the one degree of freedom two honest
    derivations of the same problem can differ in (the arbitrary short
    names), while pinning everything else: tampering with ``full``, with
    ``full_meaning``, or with their correspondence changes the rebuilt form.
    Raises ``ProblemError`` when the recorded meanings cannot even rename the
    problem (non-injective or incomplete -- already proof of tampering).
    """
    rename = {
        label: set_label_name(result.full_meaning[label])
        for label in result.full.labels
    }
    return result.full.renamed(rename, name="structured")


def _check_speedup_provenance(
    index: int, recorded: SpeedupResult, fresh: SpeedupResult
) -> list[str]:
    """Compare a recorded speedup step against the fresh re-derivation.

    The half step and its meanings must match *exactly* (the derivation is
    deterministic and cache translation reproduces the very same names); the
    full problem may differ only in its arbitrary short label names, which
    the structured-form comparison quotients out.  Everything else --
    constraints, meanings, and the pairing between them -- is pinned, so a
    certificate cannot smuggle in a forged derivation or forged provenance.
    """
    failures: list[str] = []
    if recorded.half != fresh.half or dict(recorded.half_meaning) != dict(
        fresh.half_meaning
    ):
        failures.append(
            f"step {index}: recorded half step does not match the re-derived one"
        )
    if set(recorded.full_meaning) != set(recorded.full.labels):
        failures.append(
            f"step {index}: full_meaning keys do not cover the derived labels"
        )
        return failures
    try:
        recorded_structured = _structured_form(recorded)
    except ProblemError:
        failures.append(
            f"step {index}: recorded full_meaning does not consistently "
            f"name the derived problem"
        )
        return failures
    if recorded_structured != _structured_form(fresh):
        failures.append(
            f"step {index}: re-derived speedup result does not match the "
            f"certified problem"
        )
    return failures


@dataclass(frozen=True)
class CertificateCheck:
    """The verdict of re-verifying a certificate from scratch."""

    valid: bool
    failures: tuple[str, ...]
    bound: int
    unbounded: bool = False


@dataclass(frozen=True)
class LowerBoundCertificate:
    """A full chain from ``initial`` to a terminal proving a lower bound.

    ``steps[i]`` transforms chain position ``i`` into position ``i + 1``
    (position 0 is ``initial``).  ``terminal`` names the claimed ending:
    :data:`TERMINAL_UNSOLVABLE` (the final problem is not 0-round solvable;
    the bound is the number of speedup steps) or :data:`TERMINAL_FIXED_POINT`
    (the final problem revisits chain position ``fixed_point_of``, making the
    chain pumpable -- the unbounded / Omega(log n) outcome).
    ``orientations`` fixes the 0-round input setting the claim is made in
    (Theorem 2's edge-orientation setting by default).
    """

    initial: Problem
    steps: tuple[CertificateStep, ...] = ()
    terminal: str = TERMINAL_UNSOLVABLE
    fixed_point_of: int | None = None
    orientations: bool = True

    def __post_init__(self) -> None:
        if self.terminal not in (TERMINAL_UNSOLVABLE, TERMINAL_FIXED_POINT):
            raise CertificateError(f"unknown terminal {self.terminal!r}")
        if self.fixed_point_of is not None and (
            not isinstance(self.fixed_point_of, int)
            or isinstance(self.fixed_point_of, bool)
        ):
            raise CertificateError(
                f"fixed_point_of must be an integer chain position, "
                f"not {self.fixed_point_of!r}"
            )
        if self.terminal == TERMINAL_FIXED_POINT and self.fixed_point_of is None:
            raise CertificateError("fixed-point certificate needs fixed_point_of")

    # -- chain accessors -----------------------------------------------------

    @property
    def chain(self) -> tuple[Problem, ...]:
        """Every problem along the chain; ``chain[0]`` is ``initial``."""
        return (self.initial,) + tuple(step.problem for step in self.steps)

    @property
    def final_problem(self) -> Problem:
        return self.chain[-1]

    @property
    def speedup_steps(self) -> int:
        return sum(1 for step in self.steps if step.kind == SPEEDUP)

    @property
    def claimed_bound(self) -> int:
        """The chain claims ``initial`` is not solvable in this many rounds."""
        return self.speedup_steps

    @property
    def unbounded(self) -> bool:
        """True iff the chain claims the pumpable fixed-point outcome."""
        return self.terminal == TERMINAL_FIXED_POINT

    # -- verification --------------------------------------------------------

    def verify(
        self,
        *,
        max_derived_labels: int = MAX_DERIVED_LABELS,
        max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    ) -> CertificateCheck:
        """Re-check every step and the terminal claim, independent of any search.

        Speedup steps are re-derived with the uncached
        :func:`~repro.core.speedup.compute_speedup` and compared against the
        recorded result including its provenance: the half step and both
        meaning maps must match the re-derivation exactly, and the full
        problem up to its arbitrary short label names (via the rebuilt
        structured form), so forged derivations *and* forged meanings are
        rejected.  Relaxation maps are re-validated against both endpoints,
        must name them, and must certify in the relaxation direction (a
        hardening certificate cannot justify a lower-bound step).  The
        terminal condition is re-decided with the 0-round procedures and the
        isomorphism test.
        """
        failures: list[str] = []
        current = self.initial
        for index, step in enumerate(self.steps):
            if step.kind == SPEEDUP:
                assert step.speedup is not None
                if step.speedup.original != current:
                    failures.append(
                        f"step {index}: speedup does not apply to the chain's "
                        f"current problem ({step.speedup.original.name!r} vs "
                        f"{current.name!r})"
                    )
                else:
                    try:
                        fresh = compute_speedup(
                            current,
                            simplify=step.speedup.simplified,
                            max_derived_labels=max_derived_labels,
                            max_candidate_configs=max_candidate_configs,
                        )
                    except EngineLimitError as exc:
                        failures.append(f"step {index}: could not re-derive: {exc}")
                    else:
                        failures.extend(
                            _check_speedup_provenance(index, step.speedup, fresh)
                        )
            elif step.kind == HARDENING:
                # A restriction can make the problem strictly harder; it can
                # never justify "no harder", regardless of what direction the
                # attached certificate claims.
                failures.append(
                    f"step {index}: a hardening step cannot appear in a "
                    f"lower-bound chain"
                )
            else:
                assert step.relaxation is not None
                certificate = step.relaxation
                if certificate.direction != RELAXES:
                    failures.append(
                        f"step {index}: a {certificate.direction!r} certificate "
                        f"cannot justify a relaxation step"
                    )
                if (
                    certificate.source_name != current.name
                    or certificate.target_name != step.problem.name
                ):
                    failures.append(
                        f"step {index}: certificate endpoints "
                        f"({certificate.source_name!r} -> "
                        f"{certificate.target_name!r}) do not name the chain's "
                        f"problems ({current.name!r} -> {step.problem.name!r})"
                    )
                if not is_relaxation_map(current, step.problem, certificate.mapping):
                    failures.append(
                        f"step {index}: label map does not certify "
                        f"{step.problem.name!r} as a relaxation of {current.name!r}"
                    )
            current = step.problem

        failures.extend(self._check_terminal())
        valid = not failures
        return CertificateCheck(
            valid=valid,
            failures=tuple(failures),
            bound=self.claimed_bound if valid else 0,
            unbounded=valid and self.unbounded,
        )

    def _check_terminal(self) -> list[str]:
        failures: list[str] = []
        chain = self.chain
        if self.terminal == TERMINAL_UNSOLVABLE:
            if is_zero_round_solvable(chain[-1], orientations=self.orientations):
                failures.append(
                    "final problem is 0-round solvable; chain proves nothing"
                )
            return failures
        j = self.fixed_point_of
        if j is None or not 0 <= j < len(chain) - 1:
            failures.append(f"fixed_point_of={j!r} is not an earlier chain position")
            return failures
        if find_isomorphism(chain[-1].compressed(), chain[j].compressed()) is None:
            failures.append(
                f"final problem is not isomorphic to chain position {j}"
            )
        if not any(step.kind == SPEEDUP for step in self.steps[j:]):
            failures.append(
                f"no speedup step between chain position {j} and the end; "
                "the cycle eliminates no rounds"
            )
        for position, problem in enumerate(chain):
            if is_zero_round_solvable(problem, orientations=self.orientations):
                failures.append(
                    f"chain position {position} is 0-round solvable; "
                    "the cycle cannot be pumped"
                )
        return failures

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`); see docs/API.md."""
        return {
            "version": 1,
            "initial": self.initial.to_dict(),
            "steps": [step.to_dict() for step in self.steps],
            "terminal": self.terminal,
            "fixed_point_of": self.fixed_point_of,
            "orientations": self.orientations,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "LowerBoundCertificate":
        """Rebuild a certificate; raises :class:`CertificateError` when malformed."""
        try:
            return LowerBoundCertificate(
                initial=Problem.from_dict(data["initial"]),
                steps=tuple(
                    CertificateStep.from_dict(step) for step in data["steps"]
                ),
                terminal=data["terminal"],
                fixed_point_of=data["fixed_point_of"],
                orientations=bool(data["orientations"]),
            )
        except CertificateError:
            raise
        except (KeyError, TypeError, AttributeError, ProblemError, ValueError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc!r}") from exc

    # -- presentation ----------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable rendering of the chain and its claim."""
        setting = "edge-orientations" if self.orientations else "no-input"
        lines = [
            f"lower-bound certificate for {self.initial.name} ({setting} setting)"
        ]
        for position, problem in enumerate(self.chain):
            if position == 0:
                how = "initial"
            else:
                step = self.steps[position - 1]
                if step.kind == SPEEDUP:
                    how = "speedup"
                else:
                    assert step.relaxation is not None
                    how = f"relax via {len(step.relaxation.mapping)}-label map"
            lines.append(
                f"  {position}: {problem.name} "
                f"(labels={len(problem.labels)}, "
                f"node={len(problem.node_constraint)}, "
                f"edge={len(problem.edge_constraint)})  [{how}]"
            )
        if self.unbounded:
            lines.append(
                f"terminal: final problem revisits position {self.fixed_point_of} "
                "(pumpable fixed point) => Omega(log n) on bounded-degree "
                "high-girth classes"
            )
        else:
            lines.append(
                f"terminal: final problem not 0-round solvable => "
                f"{self.initial.name} is not solvable in "
                f"{self.claimed_bound} round(s)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class UpperBoundCertificate:
    """A chain from ``initial`` to a 0-round-solvable problem: an upper bound.

    The speedup theorem read forwards: if ``speedup(Q)`` is solvable in
    ``t - 1`` rounds then ``Q`` is solvable in ``t``, so a chain of ``k``
    speedup steps ending in a 0-round-solvable problem gives a concrete
    ``k``-round algorithm for ``initial``.  Hardening steps (``Q -> Q'``
    with ``Q'`` a restriction of ``Q``; Section 4.5's ``harden`` moves) may
    be interleaved for description control: any algorithm for the restricted
    ``Q'`` solves ``Q`` verbatim, so they cost no rounds -- only speedup
    steps count toward :attr:`claimed_rounds`.

    The terminal is not a bare flag but a recorded
    :class:`~repro.core.zero_round.ZeroRoundWitness`: the actual 0-round
    algorithm for the final problem, which :meth:`verify` re-checks field by
    field (:func:`~repro.core.zero_round.check_zero_round_witness`) rather
    than re-deciding solvability -- the certificate ships the algorithm, not
    just the claim, which is what the cross-validation suite executes on
    port-numbered trees.
    """

    initial: Problem
    witness: ZeroRoundWitness
    steps: tuple[CertificateStep, ...] = ()
    orientations: bool = True

    def __post_init__(self) -> None:
        for index, step in enumerate(self.steps):
            if step.kind not in (SPEEDUP, HARDENING):
                raise CertificateError(
                    f"step {index}: {step.kind!r} steps cannot appear in an "
                    f"upper-bound chain"
                )

    # -- chain accessors -----------------------------------------------------

    @property
    def chain(self) -> tuple[Problem, ...]:
        """Every problem along the chain; ``chain[0]`` is ``initial``."""
        return (self.initial,) + tuple(step.problem for step in self.steps)

    @property
    def final_problem(self) -> Problem:
        return self.chain[-1]

    @property
    def speedup_steps(self) -> int:
        return sum(1 for step in self.steps if step.kind == SPEEDUP)

    @property
    def claimed_rounds(self) -> int:
        """The chain claims ``initial`` is solvable in this many rounds."""
        return self.speedup_steps

    # -- verification --------------------------------------------------------

    def verify(
        self,
        *,
        max_derived_labels: int = MAX_DERIVED_LABELS,
        max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    ) -> CertificateCheck:
        """Re-check every link and the terminal witness, independent of any search.

        Speedup steps get the same treatment as in
        :meth:`LowerBoundCertificate.verify`: re-derived from scratch and
        compared including provenance.  Hardening steps must certify in the
        hardening direction, name both endpoints, carry the identity label
        map on the restricted problem, and the restriction itself is
        re-checked structurally
        (:func:`~repro.core.relaxation.is_harder_restriction`).  The terminal
        witness is re-validated as an actual 0-round algorithm for the final
        problem in the claimed input setting.  ``bound`` in the returned
        check is the certified number of rounds (0 is meaningful: the
        initial problem itself is 0-round solvable).
        """
        failures: list[str] = []
        current = self.initial
        for index, step in enumerate(self.steps):
            if step.kind == SPEEDUP:
                assert step.speedup is not None
                if step.speedup.original != current:
                    failures.append(
                        f"step {index}: speedup does not apply to the chain's "
                        f"current problem ({step.speedup.original.name!r} vs "
                        f"{current.name!r})"
                    )
                else:
                    try:
                        fresh = compute_speedup(
                            current,
                            simplify=step.speedup.simplified,
                            max_derived_labels=max_derived_labels,
                            max_candidate_configs=max_candidate_configs,
                        )
                    except EngineLimitError as exc:
                        failures.append(f"step {index}: could not re-derive: {exc}")
                    else:
                        failures.extend(
                            _check_speedup_provenance(index, step.speedup, fresh)
                        )
            else:
                assert step.relaxation is not None
                certificate = step.relaxation
                if certificate.direction != HARDENS:
                    failures.append(
                        f"step {index}: a {certificate.direction!r} certificate "
                        f"cannot justify a hardening step"
                    )
                if (
                    certificate.source_name != current.name
                    or certificate.target_name != step.problem.name
                ):
                    failures.append(
                        f"step {index}: certificate endpoints "
                        f"({certificate.source_name!r} -> "
                        f"{certificate.target_name!r}) do not name the chain's "
                        f"problems ({current.name!r} -> {step.problem.name!r})"
                    )
                if dict(certificate.mapping) != {
                    label: label for label in step.problem.labels
                }:
                    failures.append(
                        f"step {index}: a hardening must carry the identity "
                        f"map on the restricted problem's labels"
                    )
                if not is_harder_restriction(current, step.problem):
                    failures.append(
                        f"step {index}: {step.problem.name!r} is not a "
                        f"restriction of {current.name!r}"
                    )
            current = step.problem

        failures.extend(
            f"terminal: {failure}"
            for failure in check_zero_round_witness(
                current, self.witness, orientations=self.orientations
            )
        )
        valid = not failures
        return CertificateCheck(
            valid=valid,
            failures=tuple(failures),
            bound=self.claimed_rounds if valid else 0,
            unbounded=False,
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`); see docs/API.md."""
        return {
            "version": 1,
            "initial": self.initial.to_dict(),
            "steps": [step.to_dict() for step in self.steps],
            "witness": self.witness.to_dict(),
            "orientations": self.orientations,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "UpperBoundCertificate":
        """Rebuild a certificate; raises :class:`CertificateError` when malformed."""
        try:
            return UpperBoundCertificate(
                initial=Problem.from_dict(data["initial"]),
                witness=ZeroRoundWitness.from_dict(data["witness"]),
                steps=tuple(
                    CertificateStep.from_dict(step) for step in data["steps"]
                ),
                orientations=bool(data["orientations"]),
            )
        except CertificateError:
            raise
        except (KeyError, TypeError, AttributeError, ProblemError, ValueError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc!r}") from exc

    # -- presentation ----------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable rendering of the chain and its claim."""
        setting = "edge-orientations" if self.orientations else "no-input"
        lines = [
            f"upper-bound certificate for {self.initial.name} ({setting} setting)"
        ]
        for position, problem in enumerate(self.chain):
            if position == 0:
                how = "initial"
            else:
                step = self.steps[position - 1]
                if step.kind == SPEEDUP:
                    how = "speedup"
                else:
                    how = "harden (restriction)"
            lines.append(
                f"  {position}: {problem.name} "
                f"(labels={len(problem.labels)}, "
                f"node={len(problem.node_constraint)}, "
                f"edge={len(problem.edge_constraint)})  [{how}]"
            )
        lines.append(
            f"terminal: final problem 0-round solvable (witness recorded) => "
            f"{self.initial.name} is solvable in "
            f"{self.claimed_rounds} round(s)"
        )
        return "\n".join(lines)
