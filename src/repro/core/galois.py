"""The compatibility operator and its Galois connection.

For a problem with edge constraint ``g``, define for a set ``Y`` of labels

    comp(Y) = { z : for all y in Y, {y, z} in g }.

``comp`` is antitone and ``comp(comp(.))`` is a closure operator, so the pair
``(comp, comp)`` is a Galois connection on the subset lattice.  Property 5 of
the maximality simplification (Theorem 2) says exactly that the usable
half-step labels are the *closed* sets ``Y = comp(comp(Y))`` and that the
simplified edge constraint is ``{ {Y, comp(Y)} : Y closed }`` -- each closed
set paired with its polar.

Closed sets are intersections of the polars of singletons, so they can be
enumerated by closing ``{comp({y})} U {full set}`` under pairwise
intersection, without touching the exponential subset lattice.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.problem import Label, Problem, edge_config


class Compatibility:
    """Compatibility queries against a fixed problem's edge constraint."""

    def __init__(self, problem: Problem):
        self._problem = problem
        self._labels = frozenset(problem.labels)
        # Precompute singleton polars once; everything else is intersections.
        self._singleton_polar: dict[Label, frozenset[Label]] = {
            y: frozenset(
                z for z in self._labels if edge_config(y, z) in problem.edge_constraint
            )
            for y in self._labels
        }

    @property
    def problem(self) -> Problem:
        return self._problem

    def polar(self, subset: frozenset[Label]) -> frozenset[Label]:
        """Return ``comp(subset)``: labels compatible with *every* element."""
        result = self._labels
        for y in subset:
            result = result & self._singleton_polar[y]
            if not result:
                break
        return result

    def closure(self, subset: frozenset[Label]) -> frozenset[Label]:
        """Return the Galois closure ``comp(comp(subset))``."""
        return self.polar(self.polar(subset))

    def is_closed(self, subset: frozenset[Label]) -> bool:
        """Return True iff ``subset`` equals its own closure."""
        return self.closure(subset) == subset

    def closed_sets(self) -> frozenset[frozenset[Label]]:
        """Enumerate all Galois-closed sets.

        Every closed set is ``comp(X)`` for some ``X`` and
        ``comp(X) = intersection of comp({x}) over x in X``, so the closed
        sets are exactly the intersection-closure of the singleton polars
        together with ``comp(empty) = all labels``.
        """
        generators = set(self._singleton_polar.values())
        generators.add(self._labels)
        closed: set[frozenset[Label]] = set(generators)
        frontier = list(generators)
        while frontier:
            current = frontier.pop()
            for generator in generators:
                candidate = current & generator
                if candidate not in closed:
                    closed.add(candidate)
                    frontier.append(candidate)
        return frozenset(closed)

    def usable_closed_sets(self) -> frozenset[frozenset[Label]]:
        """Closed sets usable as half-step labels.

        A half-step label ``Y`` appears on one side of an edge whose other
        side carries ``comp(Y)``; if either is empty the label can never be
        part of a correct solution (``h_{1/2}`` requires a choice from every
        set), so both must be non-empty.
        """
        return frozenset(
            candidate
            for candidate in self.closed_sets()
            if candidate and self.polar(candidate)
        )
