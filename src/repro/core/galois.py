"""The compatibility operator and its Galois connection.

For a problem with edge constraint ``g``, define for a set ``Y`` of labels

    comp(Y) = { z : for all y in Y, {y, z} in g }.

``comp`` is antitone and ``comp(comp(.))`` is a closure operator, so the pair
``(comp, comp)`` is a Galois connection on the subset lattice.  Property 5 of
the maximality simplification (Theorem 2) says exactly that the usable
half-step labels are the *closed* sets ``Y = comp(comp(Y))`` and that the
simplified edge constraint is ``{ {Y, comp(Y)} : Y closed }`` -- each closed
set paired with its polar.

Closed sets are intersections of the polars of singletons, so they can be
enumerated by closing ``{comp({y})} U {full set}`` under pairwise
intersection, without touching the exponential subset lattice.

Since PR 3 the computation runs on the bitmask kernel
(:mod:`repro.core.alphabet`): label sets are interned into Python ints, the
polar of a singleton is one precomputed adjacency mask, and ``comp`` of any
set is a fold of ``&`` over those masks.  The ``*_mask`` methods expose that
integer surface to the other hot paths (speedup, zero-round, diagram); the
frozenset methods remain the public string-level API and simply translate at
the boundary.
"""

from __future__ import annotations

from repro.core.alphabet import Alphabet, LabelMask, intern
from repro.core.limits import EngineLimitError
from repro.core.problem import Label, Problem
from repro.core.vectorkernel import closed_masks_vector, get_numpy, resolve_kernel


class Compatibility:
    """Compatibility queries against a fixed problem's edge constraint."""

    def __init__(self, problem: Problem):
        self._problem = problem
        interned = intern(problem)
        self._alphabet: Alphabet = interned.alphabet
        self._adjacency = interned.adjacency
        self._full_mask = interned.alphabet.full_mask
        self._polar_cache: dict[LabelMask, LabelMask] = {}

    @property
    def problem(self) -> Problem:
        return self._problem

    @property
    def alphabet(self) -> Alphabet:
        """The label<->bit interning this instance computes over."""
        return self._alphabet

    # -- mask surface (the kernel API) ---------------------------------------

    def polar_mask(self, mask: LabelMask) -> LabelMask:
        """``comp`` on bitmasks: labels compatible with *every* bit of ``mask``."""
        cached = self._polar_cache.get(mask)
        if cached is not None:
            return cached
        result = int(self._full_mask)
        adjacency = self._adjacency
        remaining = int(mask)
        while remaining and result:
            low = remaining & -remaining
            result &= adjacency[low.bit_length() - 1]
            remaining ^= low
        polar = LabelMask(result)
        self._polar_cache[mask] = polar
        return polar

    def closure_mask(self, mask: LabelMask) -> LabelMask:
        """The Galois closure ``comp(comp(mask))`` on bitmasks."""
        return self.polar_mask(self.polar_mask(mask))

    def closed_masks(
        self, limit: int | None = None, *, kernel: str = "mask"
    ) -> frozenset[LabelMask]:
        """All Galois-closed sets, as bitmasks.

        Every closed set is ``comp(X)`` for some ``X`` and
        ``comp(X) = intersection of comp({x}) over x in X``, so the closed
        sets are exactly the intersection-closure of the singleton polars
        together with ``comp(empty) = all labels``.

        The closure can be exponential in the alphabet; with ``limit`` the
        enumeration aborts with :class:`~repro.core.limits.EngineLimitError`
        as soon as more than ``limit`` *usable* closed sets (non-empty with
        non-empty polar -- exactly the ones the half step materialises as
        labels) have been discovered, so the limit keeps its derived-label
        semantics: derivations whose usable count fits the limit are never
        refused, no matter how many unusable intersections exist.  Unlike
        the a-priori grid guards this one is incremental -- the true count
        is unknowable without doing the work -- so ``observed`` reports the
        count at abort, a lower bound on the total.  (The frozen legacy
        path has no such guard; it cannot reach this regime in feasible
        time, which is exactly why the search needs the abort.)

        ``kernel`` selects the evaluation tier: ``"vector"`` (or ``"auto"``
        with numpy usable) batches the pairwise intersections of a whole
        frontier per vector op (:func:`repro.core.vectorkernel.
        closed_masks_vector`); the result, including every limit trip point,
        is identical to the scalar fold.
        """
        if resolve_kernel(kernel) == "vector" and get_numpy() is not None:
            return frozenset(
                LabelMask(mask)
                for mask in closed_masks_vector(
                    [int(mask) for mask in self._adjacency],
                    int(self._full_mask),
                    self._alphabet.size,
                    limit,
                    lambda mask: bool(mask) and bool(self.polar_mask(LabelMask(mask))),
                )
            )

        def abort(count: int) -> None:
            raise EngineLimitError(
                f"half step enumerated more than {limit} usable "
                f"Galois-closed sets",
                limit_name="max_derived_labels",
                limit=limit,
                observed=count,
            )

        generators: set[LabelMask] = set(self._adjacency)
        generators.add(self._full_mask)
        closed: set[LabelMask] = set(generators)
        usable = 0
        if limit is not None:
            for mask in closed:
                if mask and self.polar_mask(mask):
                    usable += 1
            if usable > limit:
                abort(usable)
        frontier = list(generators)
        while frontier:
            current = frontier.pop()
            for generator in generators:
                candidate = LabelMask(current & generator)
                if candidate not in closed:
                    closed.add(candidate)
                    frontier.append(candidate)
                    if limit is not None and candidate and self.polar_mask(candidate):
                        usable += 1
                        if usable > limit:
                            abort(usable)
        return frozenset(closed)

    def usable_closed_masks(
        self, limit: int | None = None, *, kernel: str = "mask"
    ) -> frozenset[LabelMask]:
        """Closed masks usable as half-step labels (self and polar non-empty).

        ``limit`` bounds the underlying closed-set enumeration and ``kernel``
        selects its evaluation tier (see :meth:`closed_masks`).
        """
        return frozenset(
            candidate
            for candidate in self.closed_masks(limit=limit, kernel=kernel)
            if candidate and self.polar_mask(candidate)
        )

    # -- frozenset surface (the public string-level API) ---------------------

    def polar(self, subset: frozenset[Label]) -> frozenset[Label]:
        """Return ``comp(subset)``: labels compatible with *every* element."""
        return self._alphabet.label_set(self.polar_mask(self._alphabet.mask(subset)))

    def closure(self, subset: frozenset[Label]) -> frozenset[Label]:
        """Return the Galois closure ``comp(comp(subset))``."""
        return self._alphabet.label_set(self.closure_mask(self._alphabet.mask(subset)))

    def is_closed(self, subset: frozenset[Label]) -> bool:
        """Return True iff ``subset`` equals its own closure."""
        mask = self._alphabet.mask(subset)
        return self.closure_mask(mask) == mask

    def closed_sets(self) -> frozenset[frozenset[Label]]:
        """Enumerate all Galois-closed sets (see :meth:`closed_masks`)."""
        label_set = self._alphabet.label_set
        return frozenset(label_set(mask) for mask in self.closed_masks())

    def usable_closed_sets(self) -> frozenset[frozenset[Label]]:
        """Closed sets usable as half-step labels.

        A half-step label ``Y`` appears on one side of an edge whose other
        side carries ``comp(Y)``; if either is empty the label can never be
        part of a correct solution (``h_{1/2}`` requires a choice from every
        set), so both must be non-empty.
        """
        label_set = self._alphabet.label_set
        return frozenset(label_set(mask) for mask in self.usable_closed_masks())
