"""Frozen pre-kernel reference implementations (the string/frozenset path).

PR 3 rewired every derivation hot path onto the bitmask kernel
(:mod:`repro.core.alphabet`).  This module preserves the original
``frozenset[str]``-based implementations *verbatim* as an executable
specification: the differential test suite
(``tests/test_differential_kernel.py``) runs the kernel and this reference
side by side over the full catalog and hundreds of seeded random problems and
asserts exact result equality.

Nothing in the library imports this module at runtime; it exists only for
tests and for auditing.  Do not "optimise" it -- its value is that it stays
byte-for-byte the semantics the paper-facing test suite was validated
against.  The public dataclasses (:class:`~repro.core.speedup.HalfStepResult`,
:class:`~repro.core.speedup.SpeedupResult`,
:class:`~repro.core.zero_round.ZeroRoundWitness`,
:class:`~repro.core.canonical.CanonicalForm`) are shared with the live
modules so results compare with ``==``.
"""

from __future__ import annotations

import string
from collections import Counter
from collections.abc import Iterable, Sequence
from itertools import chain, combinations, permutations, product
from math import factorial

from repro.core.canonical import PERMUTATION_BUDGET, CanonicalForm, _digest
from repro.core.problem import Label, NodeConfig, Problem, edge_config, node_config
from repro.core.speedup import (
    EngineLimitError,
    HalfStepResult,
    SpeedupResult,
    _multiset_count,
)
from repro.core.zero_round import ZeroRoundWitness
from repro.utils.matching import maximum_bipartite_matching, perfect_matching_exists
from repro.utils.multiset import (
    multiset_difference,
    multisets_of_size,
    submultisets_of_size,
)
from repro.utils.orders import filters as poset_filters
from repro.utils.orders import minimal_elements

MAX_DERIVED_LABELS = 100_000
MAX_CANDIDATE_CONFIGS = 8_000_000


# -- naming (pre-guard: no collision escaping) -------------------------------


def set_label_name(members: Iterable[Label]) -> Label:
    """Legacy display name for a set-valued label (no escaping)."""
    return "{" + ",".join(sorted(members)) + "}"


def short_names(count: int) -> list[Label]:
    """Legacy short label names: A..Z then L26, L27, ... (no avoid set)."""
    letters = list(string.ascii_uppercase)
    if count <= len(letters):
        return letters[:count]
    return letters + [f"L{i}" for i in range(len(letters), count)]


# -- galois ------------------------------------------------------------------


class Compatibility:
    """The original frozenset-based compatibility operator."""

    def __init__(self, problem: Problem):
        self._problem = problem
        self._labels = frozenset(problem.labels)
        self._singleton_polar: dict[Label, frozenset[Label]] = {
            y: frozenset(
                z for z in self._labels if edge_config(y, z) in problem.edge_constraint
            )
            for y in self._labels
        }

    @property
    def problem(self) -> Problem:
        return self._problem

    def polar(self, subset: frozenset[Label]) -> frozenset[Label]:
        result = self._labels
        for y in subset:
            result = result & self._singleton_polar[y]
            if not result:
                break
        return result

    def closure(self, subset: frozenset[Label]) -> frozenset[Label]:
        return self.polar(self.polar(subset))

    def is_closed(self, subset: frozenset[Label]) -> bool:
        return self.closure(subset) == subset

    def closed_sets(self) -> frozenset[frozenset[Label]]:
        generators = set(self._singleton_polar.values())
        generators.add(self._labels)
        closed: set[frozenset[Label]] = set(generators)
        frontier = list(generators)
        while frontier:
            current = frontier.pop()
            for generator in generators:
                candidate = current & generator
                if candidate not in closed:
                    closed.add(candidate)
                    frontier.append(candidate)
        return frozenset(closed)

    def usable_closed_sets(self) -> frozenset[frozenset[Label]]:
        return frozenset(
            candidate
            for candidate in self.closed_sets()
            if candidate and self.polar(candidate)
        )


# -- speedup -----------------------------------------------------------------


class _HalfMembership:
    """The original matching-per-configuration membership test."""

    def __init__(self, problem: Problem):
        self._configs = sorted(problem.node_constraint)
        self._delta = problem.delta
        self._cache: dict[tuple[frozenset[Label], ...], bool] = {}

    def extendable(self, slots: Sequence[frozenset[Label]]) -> bool:
        key = tuple(sorted(slots, key=sorted))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = any(self._partial_realizable(key, config) for config in self._configs)
        self._cache[key] = result
        return result

    def allows(self, slots: Sequence[frozenset[Label]]) -> bool:
        if len(slots) != self._delta:
            return False
        return self.extendable(slots)

    @staticmethod
    def _partial_realizable(
        slots: tuple[frozenset[Label], ...], config: NodeConfig
    ) -> bool:
        adjacency = {
            index: [
                position for position, label in enumerate(config) if label in slot
            ]
            for index, slot in enumerate(slots)
        }
        matching = maximum_bipartite_matching(adjacency)
        return len(matching) == len(slots)


def half_step(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> HalfStepResult:
    """The original ``Pi -> Pi_{1/2}`` derivation (exhaustive enumeration)."""
    comp = Compatibility(problem)
    if simplify:
        half_sets = sorted(comp.usable_closed_sets(), key=sorted)
    else:
        base = sorted(problem.labels)
        if 2 ** len(base) > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified half step over {len(base)} labels materialises "
                f"{2 ** len(base)} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2 ** len(base),
            )
        if 4 ** len(base) > max_candidate_configs:
            raise EngineLimitError(
                f"unsimplified half step over {len(base)} labels materialises "
                f"a {4 ** len(base)}-pair edge relation",
                limit_name="max_candidate_configs",
                limit=max_candidate_configs,
                observed=4 ** len(base),
            )
        half_sets = [
            frozenset(subset)
            for size in range(1, len(base) + 1)
            for subset in combinations(base, size)
        ]

    names = {subset: set_label_name(subset) for subset in half_sets}
    meaning = {name: subset for subset, name in names.items()}

    if simplify:
        edge_configs = {
            edge_config(names[subset], set_label_name(comp.polar(subset)))
            for subset in half_sets
        }
    else:
        edge_configs = set()
        for first in half_sets:
            polar_of_first = comp.polar(first)
            for second in half_sets:
                if second <= polar_of_first:
                    edge_configs.add(edge_config(names[first], names[second]))

    membership = _HalfMembership(problem)
    ordered_names = sorted(meaning)
    candidate_count = _multiset_count(len(ordered_names), problem.delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"half step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )
    node_configs = [
        config
        for config in multisets_of_size(ordered_names, problem.delta)
        if membership.allows([meaning[name] for name in config])
    ]

    derived = Problem(
        name=f"{problem.name}|half" + ("" if simplify else "|raw"),
        delta=problem.delta,
        labels=frozenset(meaning),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(node_configs),
    ).compressed()
    kept_meaning = {name: meaning[name] for name in derived.labels}
    return HalfStepResult(
        original=problem, problem=derived, meaning=kept_meaning, simplified=simplify
    )


def full_step(
    half: HalfStepResult,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> SpeedupResult:
    """The original ``Pi_{1/2} -> Pi_1`` derivation (frozenset filters)."""
    half_problem = half.problem
    meaning = half.meaning
    membership = _HalfMembership(half.original)

    def leq(a: Label, b: Label) -> bool:
        return meaning[a] <= meaning[b]

    half_names = sorted(half_problem.labels)
    if simplify:
        collected: list[frozenset[Label]] = []
        for candidate in poset_filters(half_names, leq):
            collected.append(candidate)
            if len(collected) > max_derived_labels:
                raise EngineLimitError(
                    f"full step over {len(half_names)} half labels produces "
                    f"more than {max_derived_labels} filters",
                    limit_name="max_derived_labels",
                    limit=max_derived_labels,
                    observed=len(collected),
                )
        candidate_sets = sorted(collected, key=sorted)
    else:
        if 2 ** len(half_names) > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified full step over {len(half_names)} labels "
                f"materialises {2 ** len(half_names)} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2 ** len(half_names),
            )
        candidate_sets = [
            frozenset(subset)
            for size in range(1, len(half_names) + 1)
            for subset in combinations(half_names, size)
        ]

    mins = {
        candidate: tuple(sorted(minimal_elements(candidate, leq)))
        for candidate in candidate_sets
    }

    universal_cache: dict[tuple[frozenset[Label], ...], bool] = {}

    def universal(config_sets: tuple[frozenset[Label], ...]) -> bool:
        key = tuple(sorted(config_sets, key=sorted))
        cached = universal_cache.get(key)
        if cached is not None:
            return cached
        result = all(
            membership.allows([meaning[name] for name in choice])
            for choice in product(*(mins[candidate] for candidate in key))
        )
        universal_cache[key] = result
        return result

    def extendable(config_sets: tuple[frozenset[Label], ...]) -> bool:
        return all(
            membership.extendable([meaning[name] for name in choice])
            for choice in product(*(mins[candidate] for candidate in config_sets))
        )

    delta = half_problem.delta
    candidate_count = _multiset_count(len(candidate_sets), delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"full step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )

    allowed_configs = _enumerate_universal_configs(
        candidate_sets, delta, universal, extendable
    )
    if simplify:
        allowed_configs = _discard_dominated(allowed_configs)

    comp = Compatibility(half.original)
    polar_name = {
        name: set_label_name(comp.polar(meaning[name])) for name in half_names
    }
    used_sets = sorted({s for config in allowed_configs for s in config}, key=sorted)
    set_names = {candidate: set_label_name(candidate) for candidate in used_sets}

    edge_configs = set()
    for first in used_sets:
        for second in used_sets:
            if simplify:
                allowed = any(polar_name[y] in second for y in first)
            else:
                allowed = any(
                    meaning[z] <= comp.polar(meaning[y])
                    for y in first
                    for z in second
                )
            if allowed:
                edge_configs.add(edge_config(set_names[first], set_names[second]))

    structured = Problem(
        name=f"{half.original.name}|full" + ("" if simplify else "|raw"),
        delta=delta,
        labels=frozenset(set_names.values()),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(
            node_config(set_names[s] for s in config) for config in allowed_configs
        ),
    ).compressed()

    ordered = sorted(structured.labels)
    rename = dict(zip(ordered, short_names(len(ordered))))
    renamed = structured.renamed(rename, name=f"{half.original.name}+1")
    name_of_set = {v: k for k, v in set_names.items()}
    full_meaning = {
        rename[structured_name]: frozenset(name_of_set[structured_name])
        for structured_name in ordered
    }
    return SpeedupResult(
        original=half.original,
        half=half_problem,
        half_meaning=dict(half.meaning),
        full=renamed,
        full_meaning=full_meaning,
        simplified=simplify and half.simplified,
    )


def compute_speedup(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> SpeedupResult:
    """The original uncached ``Pi -> Pi_{1/2} -> Pi_1`` derivation."""
    half = half_step(
        problem,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
    )
    return full_step(
        half,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
    )


def _enumerate_universal_configs(
    candidates: Sequence[frozenset[Label]],
    delta: int,
    universal,
    extendable,
) -> list[tuple[frozenset[Label], ...]]:
    results: list[tuple[frozenset[Label], ...]] = []

    def extend(start: int, chosen: list[frozenset[Label]]) -> None:
        if len(chosen) == delta:
            config = tuple(chosen)
            if universal(config):
                results.append(tuple(sorted(config, key=sorted)))
            return
        for index in range(start, len(candidates)):
            chosen.append(candidates[index])
            if extendable(tuple(chosen)):
                extend(index, chosen)
            chosen.pop()

    extend(0, [])
    unique = sorted(set(results), key=lambda cfg: [sorted(s) for s in cfg])
    return unique


def _discard_dominated(
    configs: list[tuple[frozenset[Label], ...]],
) -> list[tuple[frozenset[Label], ...]]:
    def dominates(a: tuple[frozenset[Label], ...], b: tuple[frozenset[Label], ...]) -> bool:
        adjacency = {
            index: [j for j, big in enumerate(a) if small <= big]
            for index, small in enumerate(b)
        }
        return perfect_matching_exists(adjacency)

    kept: list[tuple[frozenset[Label], ...]] = []
    for config in configs:
        if any(other != config and dominates(other, config) for other in configs):
            continue
        kept.append(config)
    return kept


# -- zero round --------------------------------------------------------------


def zero_round_no_input(problem: Problem) -> ZeroRoundWitness | None:
    """The original no-input triviality test."""
    for config in sorted(problem.node_constraint):
        support = sorted(set(config))
        if all(
            problem.allows_edge(x, y)
            for i, x in enumerate(support)
            for y in support[i:]
        ):
            return ZeroRoundWitness(
                problem_name=problem.name,
                setting="no-input",
                splits={-1: ((), config)},
            )
    return None


def _orientation_splits(problem: Problem, in_degree: int) -> list[tuple[NodeConfig, NodeConfig]]:
    by_signature: dict[tuple[frozenset[Label], frozenset[Label]], tuple[NodeConfig, NodeConfig]] = {}
    for config in sorted(problem.node_constraint):
        for in_part in submultisets_of_size(config, in_degree):
            out_part = multiset_difference(config, in_part)
            signature = (frozenset(in_part), frozenset(out_part))
            by_signature.setdefault(signature, (in_part, out_part))
    return sorted(by_signature.values())


def zero_round_with_orientations(problem: Problem) -> ZeroRoundWitness | None:
    """The original orientation-input DFS over split choices."""
    delta = problem.delta
    per_degree = [_orientation_splits(problem, s) for s in range(delta + 1)]
    if any(not options for options in per_degree):
        return None
    level_order = sorted(range(delta + 1), key=lambda s: len(per_degree[s]))

    chosen: dict[int, tuple[NodeConfig, NodeConfig]] = {}
    failed: set[tuple[int, frozenset[Label], frozenset[Label]]] = set()

    def pair_ok(out_label: Label, in_label: Label) -> bool:
        return edge_config(out_label, in_label) in problem.edge_constraint

    def search(index: int, in_union: frozenset[Label], out_union: frozenset[Label]) -> bool:
        if index == len(level_order):
            return True
        state = (index, in_union, out_union)
        if state in failed:
            return False
        s = level_order[index]
        for in_part, out_part in per_degree[s]:
            new_in_labels = frozenset(in_part) - in_union
            new_out_labels = frozenset(out_part) - out_union
            if not all(
                pair_ok(o, i)
                for o in new_out_labels
                for i in in_union | new_in_labels
            ):
                continue
            if not all(
                pair_ok(o, i)
                for o in out_union
                for i in new_in_labels
            ):
                continue
            chosen[s] = (in_part, out_part)
            if search(index + 1, in_union | new_in_labels, out_union | new_out_labels):
                return True
            del chosen[s]
        failed.add(state)
        return False

    if search(0, frozenset(), frozenset()):
        return ZeroRoundWitness(
            problem_name=problem.name,
            setting="edge-orientations",
            splits=dict(chosen),
        )
    return None


def is_zero_round_solvable(problem: Problem, orientations: bool = True) -> bool:
    if orientations:
        return zero_round_with_orientations(problem) is not None
    return zero_round_no_input(problem) is not None


# -- canonical ---------------------------------------------------------------


def _initial_colors(problem: Problem) -> dict[Label, tuple]:
    colors: dict[Label, tuple] = {}
    for label in problem.labels:
        self_pairs = sum(
            1 for pair in problem.edge_constraint if pair == (label, label)
        )
        other_pairs = sum(
            1
            for pair in problem.edge_constraint
            if label in pair and pair[0] != pair[1]
        )
        node_profile = Counter(
            config.count(label)
            for config in problem.node_constraint
            if label in config
        )
        colors[label] = (self_pairs, other_pairs, tuple(sorted(node_profile.items())))
    return colors


def _refine(problem: Problem) -> dict[Label, int]:
    seed = _initial_colors(problem)
    ranked = {sig: rank for rank, sig in enumerate(sorted(set(seed.values())))}
    color = {label: ranked[seed[label]] for label in problem.labels}

    while True:
        signatures: dict[Label, tuple] = {}
        for label in problem.labels:
            edge_profile = sorted(
                color[pair[1] if pair[0] == label else pair[0]]
                for pair in problem.edge_constraint
                if label in pair
            )
            node_profile = sorted(
                (config.count(label), tuple(sorted(color[x] for x in config)))
                for config in problem.node_constraint
                if label in config
            )
            signatures[label] = (
                color[label],
                tuple(edge_profile),
                tuple(node_profile),
            )
        ranked = {sig: rank for rank, sig in enumerate(sorted(set(signatures.values())))}
        refined = {label: ranked[signatures[label]] for label in problem.labels}
        if len(set(refined.values())) == len(set(color.values())):
            return refined
        color = refined


def _encode(problem: Problem, ordering: tuple[Label, ...]) -> tuple:
    index = {label: i for i, label in enumerate(ordering)}
    edges = sorted(
        (index[a], index[b]) if index[a] <= index[b] else (index[b], index[a])
        for a, b in problem.edge_constraint
    )
    nodes = sorted(tuple(sorted(index[x] for x in config)) for config in problem.node_constraint)
    return (tuple(edges), tuple(nodes))


def canonical_form(problem: Problem) -> CanonicalForm:
    """The original renaming-invariant canonical form computation."""
    classes = _refine(problem)
    groups: list[list[Label]] = [
        sorted(label for label in problem.labels if classes[label] == cid)
        for cid in sorted(set(classes.values()))
    ]

    orderings = 1
    for group in groups:
        orderings *= factorial(len(group))
    work = orderings * (len(problem.edge_constraint) + len(problem.node_constraint) + 1)
    if orderings > PERMUTATION_BUDGET or work > 4_000_000:
        ordering = tuple(sorted(problem.labels))
        parts = ("exact", problem.delta, ordering, _encode(problem, ordering))
        return CanonicalForm(key="exact:" + _digest(parts), ordering=ordering)

    best_encoding: tuple | None = None
    best_ordering: tuple[Label, ...] | None = None
    for combo in product(*(permutations(group) for group in groups)):
        ordering = tuple(chain.from_iterable(combo))
        encoding = _encode(problem, ordering)
        if best_encoding is None or encoding < best_encoding:
            best_encoding = encoding
            best_ordering = ordering
    assert best_ordering is not None and best_encoding is not None
    parts = ("canon", problem.delta, len(problem.labels), best_encoding)
    return CanonicalForm(key="canon:" + _digest(parts), ordering=best_ordering)


def canonical_hash(problem: Problem) -> str:
    """The original content-addressed cache key computation."""
    return canonical_form(problem).key
