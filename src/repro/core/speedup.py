"""The automatic speedup: derive ``Pi_{1/2}`` and ``Pi_1`` from ``Pi``.

This module implements the paper's Section 4.1 (the derivation behind
Theorem 1) and Section 4.2 (the maximality simplification, Theorem 2).

The derivation has two dual steps.

**Half step** ``Pi -> Pi_{1/2}``: output labels become *sets* of original
labels; the edge constraint becomes universal (Property 1: every pair of
choices must be allowed) and the node constraint becomes existential
(Property 2: some choice per set must form an allowed configuration).
Under the maximality simplification (Property 5), the usable labels are
exactly the Galois-*closed* sets ``Y = comp(comp(Y))`` and the edge
constraint collapses to the pairs ``{Y, comp(Y)}`` -- this is what
:mod:`repro.core.galois` computes.

**Full step** ``Pi_{1/2} -> Pi_1``: labels become sets of half-step labels;
now the edge constraint is existential (Property 3) and the node constraint
universal (Property 4), maximised under Property 6.  Because the half-step
node constraint is monotone in the subset order on half-labels, every
maximal node configuration of ``Pi_1`` uses only *upward-closed* sets
(filters) of the half-label poset, and the universal check only needs each
filter's minimal elements -- the same representation trick the Round
Eliminator uses.

Since PR 3 the whole derivation runs on the bitmask kernel
(:mod:`repro.core.alphabet`): label sets are interned Python ints, subset
tests are single ``&``/``~`` expressions, the filter poset is a pair of
``up``/``down`` mask tables, realizability matchings run on per-configuration
position masks, and candidate node configurations are *searched* -- a pruned
DFS for the half step, and prefix-plus-maximal-completion for the simplified
full step -- rather than exhaustively enumerated.  The size guards keep the
string path's a-priori semantics (the grid bound doubles as a guard on the
size of the problem the step would materialise), so the kernel is equivalent
to the legacy path *including* its ``EngineLimitError`` behavior; within the
guards it is orders of magnitude faster.  The string surface -- problems,
meanings, derived label names -- is unchanged; ``core/_legacy.py`` preserves
the original frozenset path and the differential tests assert exact result
equality.

Both the simplified (Theorem 2) and the literal unsimplified (Theorem 1)
derivations are provided; the latter blows up quickly and is intended for
the small instances used by the executable Theorem 1 experiments.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from itertools import product
from typing import Any

from repro.core.alphabet import (
    Alphabet,
    intern,
    mask_matching_exists,
    set_label_name,
    short_names,
)
from repro.core.galois import Compatibility

# Re-exported from its dependency-free home (repro.core.limits) so the
# Galois layer can raise it too; this module remains the public import site.
from repro.core.limits import EngineLimitError
from repro.core.problem import Label, Problem, edge_config, node_config

__all__ = [
    "EngineLimitError",
    "HalfStepResult",
    "SpeedupResult",
    "MAX_DERIVED_LABELS",
    "MAX_CANDIDATE_CONFIGS",
    "set_label_name",
    "short_names",
    "half_step",
    "full_step",
    "compute_speedup",
    "speedup",
    "iterate_speedup",
]


# Default caps keeping accidental exponential blow-ups debuggable instead of
# hanging the interpreter.  They are the defaults of
# :class:`repro.engine.EngineConfig`; the derivation functions below accept
# per-call overrides so an :class:`repro.engine.Engine` can be configured
# without touching module state.  In kernel terms: ``max_derived_labels``
# bounds the interned derived-label masks materialised (filters of the
# half-label poset; raw subset masks on the Theorem 1 path), and
# ``max_candidate_configs`` bounds the candidate-configuration grid
# ``C(candidates + delta - 1, delta)`` a step may imply -- checked a priori,
# because it also caps the derived problem the step would have to build.
MAX_DERIVED_LABELS = 100_000
MAX_CANDIDATE_CONFIGS = 8_000_000


@dataclass(frozen=True)
class HalfStepResult:
    """The derived problem ``Pi_{1/2}`` plus the meaning of its labels."""

    original: Problem
    problem: Problem
    meaning: dict[Label, frozenset[Label]]
    simplified: bool

    def polar_name(self, label: Label) -> Label:
        """Name of ``comp(meaning(label))`` -- the partner in a maximal edge pair."""
        comp = Compatibility(self.original)
        return set_label_name(comp.polar(self.meaning[label]))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "original": self.original.to_dict(),
            "problem": self.problem.to_dict(),
            "meaning": {name: sorted(members) for name, members in sorted(self.meaning.items())},
            "simplified": self.simplified,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "HalfStepResult":
        return HalfStepResult(
            original=Problem.from_dict(data["original"]),
            problem=Problem.from_dict(data["problem"]),
            meaning={
                name: frozenset(members) for name, members in data["meaning"].items()
            },
            simplified=data["simplified"],
        )


@dataclass(frozen=True)
class SpeedupResult:
    """One full application of the speedup: ``Pi -> Pi_{1/2} -> Pi_1``.

    ``full`` carries short atomic labels (ready for iteration);
    ``full_meaning`` maps each of them to the set of half-step label names it
    stands for, and ``half_meaning`` maps half-step names to sets of original
    labels, so provenance is recoverable across iterations.
    """

    original: Problem
    half: Problem
    half_meaning: dict[Label, frozenset[Label]]
    full: Problem
    full_meaning: dict[Label, frozenset[Label]]
    simplified: bool

    def full_label_as_original_sets(self, label: Label) -> frozenset[frozenset[Label]]:
        """Expand a derived label to its set-of-sets over the original alphabet."""
        return frozenset(
            frozenset(self.half_meaning[half_name])
            for half_name in self.full_meaning[label]
        )

    def __reduce__(self) -> tuple[object, ...]:
        """Pickle via plain dict meanings.

        Cache hits carry ``MappingProxyType`` meaning views (the cache's
        poisoning guard), which cannot cross a pickle boundary; a process
        pool shipping results would crash on exactly the cached ones.  The
        unpickled copy holds plain dicts -- it lives in another process, so
        read-only views would guard nothing there anyway.
        """
        return (
            SpeedupResult,
            (
                self.original,
                self.half,
                dict(self.half_meaning),
                self.full,
                dict(self.full_meaning),
                self.simplified,
            ),
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`).

        This is the payload stored by the engine's on-disk cache and emitted
        by ``python -m repro speedup --json``.
        """
        return {
            "original": self.original.to_dict(),
            "half": self.half.to_dict(),
            "half_meaning": {
                name: sorted(members)
                for name, members in sorted(self.half_meaning.items())
            },
            "full": self.full.to_dict(),
            "full_meaning": {
                name: sorted(members)
                for name, members in sorted(self.full_meaning.items())
            },
            "simplified": self.simplified,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SpeedupResult":
        return SpeedupResult(
            original=Problem.from_dict(data["original"]),
            half=Problem.from_dict(data["half"]),
            half_meaning={
                name: frozenset(members)
                for name, members in data["half_meaning"].items()
            },
            full=Problem.from_dict(data["full"]),
            full_meaning={
                name: frozenset(members)
                for name, members in data["full_meaning"].items()
            },
            simplified=data["simplified"],
        )


class _MaskMembership:
    """Memoised membership test for the existential constraint ``h_{1/2}``.

    A tuple of label-set *masks* ``(Y_1, ..., Y_j)`` (``j <= delta``) is
    *extendable* iff some allowed configuration ``C`` of the original problem
    can assign a distinct position of ``C`` to every slot, with slot ``i``
    receiving a label from ``Y_i``; for ``j == delta`` this is exactly
    membership in ``h_{1/2}`` (Property 2).  Each test reduces to a tiny
    bipartite matching over per-configuration position masks; results are
    memoised under the (numerically sorted, hence canonical) mask tuple.
    """

    def __init__(self, problem: Problem):
        interned = intern(problem)
        self._delta = problem.delta
        self._supports = interned.config_supports
        self._position_masks = interned.config_position_masks
        self._cache: dict[tuple[int, ...], bool] = {}

    def extendable(self, slots: Sequence[int]) -> bool:
        key = tuple(sorted(slots))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._any_realizable(key)
        self._cache[key] = result
        return result

    def allows(self, slots: Sequence[int]) -> bool:
        """Full membership: requires exactly ``delta`` slots."""
        if len(slots) != self._delta:
            return False
        return self.extendable(slots)

    def _any_realizable(self, slots: tuple[int, ...]) -> bool:
        position_masks = self._position_masks
        for config_index, support in enumerate(self._supports):
            positions = position_masks[config_index]
            slot_positions = []
            realizable = True
            for slot in slots:
                overlap = slot & support
                if not overlap:
                    realizable = False
                    break
                allowed = 0
                while overlap:
                    low = overlap & -overlap
                    allowed |= positions[low.bit_length() - 1]
                    overlap ^= low
                slot_positions.append(allowed)
            if realizable and mask_matching_exists(slot_positions):
                return True
        return False


def half_step(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> HalfStepResult:
    """Derive ``Pi_{1/2}`` (simplified: ``Pi'_{1/2}``) from ``Pi``.

    With ``simplify=True`` the maximality constraint of Theorem 2
    (Property 5) is applied, so labels are the usable Galois-closed sets and
    the edge constraint pairs each closed set with its polar.  With
    ``simplify=False`` the literal Theorem 1 construction is used: labels are
    all non-empty subsets and the edge constraint contains every universally
    compatible pair.  (The empty set is omitted: the existential node
    constraint can never use it, so it is unusable by definition.)
    """
    interned = intern(problem)
    alphabet = interned.alphabet
    comp = Compatibility(problem)
    if simplify:
        # The closed-set enumeration is the one derivation phase whose size
        # is unknowable a priori; the limit aborts it incrementally (search
        # states with thousand-label alphabets would otherwise hang here
        # instead of failing fast).
        half_masks = sorted(
            comp.usable_closed_masks(limit=max_derived_labels),
            key=alphabet.indices,
        )
    else:
        base_size = alphabet.size
        # The raw construction materialises all subsets AND a quadratic edge
        # relation over them; guard both.
        if 2**base_size > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified half step over {base_size} labels materialises "
                f"{2 ** base_size} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2**base_size,
            )
        if 4**base_size > max_candidate_configs:
            raise EngineLimitError(
                f"unsimplified half step over {base_size} labels materialises "
                f"a {4 ** base_size}-pair edge relation",
                limit_name="max_candidate_configs",
                limit=max_candidate_configs,
                observed=4**base_size,
            )
        half_masks = list(range(1, alphabet.full_mask + 1))

    name_of_mask = {mask: set_label_name(alphabet.members(mask)) for mask in half_masks}
    meaning = {name: alphabet.label_set(mask) for mask, name in name_of_mask.items()}
    meaning_mask = {name: mask for mask, name in name_of_mask.items()}

    if simplify:
        edge_configs = {
            edge_config(
                name_of_mask[mask],
                set_label_name(alphabet.members(comp.polar_mask(mask))),
            )
            for mask in half_masks
        }
    else:
        edge_configs = set()
        for first in half_masks:
            polar_of_first = comp.polar_mask(first)
            for second in half_masks:
                if second & ~polar_of_first == 0:
                    edge_configs.add(
                        edge_config(name_of_mask[first], name_of_mask[second])
                    )

    membership = _MaskMembership(problem)
    ordered_names = sorted(meaning)
    slot_masks = [meaning_mask[name] for name in ordered_names]
    candidate_count = _multiset_count(len(ordered_names), problem.delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"half step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )
    node_configs = _search_existential_configs(
        ordered_names, slot_masks, problem.delta, membership
    )

    derived = Problem(
        name=f"{problem.name}|half" + ("" if simplify else "|raw"),
        delta=problem.delta,
        labels=frozenset(meaning),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(node_configs),
    ).compressed()
    kept_meaning = {name: meaning[name] for name in derived.labels}
    return HalfStepResult(
        original=problem, problem=derived, meaning=kept_meaning, simplified=simplify
    )


def full_step(
    half: HalfStepResult,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> SpeedupResult:
    """Derive ``Pi_1`` (simplified: ``Pi'_1``) from a half-step result.

    The returned :class:`SpeedupResult` carries the derived problem twice:
    structured (labels are ``{...}`` set names over half labels -- stored in
    ``full_meaning``) and renamed to short atomic labels (``full``), which is
    what iteration consumes.
    """
    half_problem = half.problem
    meaning = half.meaning
    original_alphabet = intern(half.original).alphabet
    membership = _MaskMembership(half.original)

    # Intern the half alphabet: half labels get their own bit positions, and
    # each gets its meaning as a mask over the *original* alphabet.
    half_alphabet = Alphabet(half_problem.labels)
    half_count = half_alphabet.size
    meaning_masks = [
        original_alphabet.mask(meaning[name]) for name in half_alphabet.names
    ]

    # The subset order on meanings, as mask tables over the half alphabet:
    # up[i] = labels j with meaning(i) <= meaning(j), down[i] the converse.
    up = [0] * half_count
    down = [0] * half_count
    for i in range(half_count):
        mi = meaning_masks[i]
        for j in range(half_count):
            if mi & ~meaning_masks[j] == 0:
                up[i] |= 1 << j
                down[j] |= 1 << i
    comparable = [up[i] | down[i] for i in range(half_count)]

    if simplify:
        candidate_masks = _enumerate_filters(
            half_count, up, comparable, max_derived_labels
        )
    else:
        if 2**half_count > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified full step over {half_count} labels "
                f"materialises {2 ** half_count} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2**half_count,
            )
        candidate_masks = list(range(1, (1 << half_count)))
    candidate_masks.sort(key=half_alphabet.indices)

    # The universal node check (Property 4) only needs the minimal elements of
    # each candidate set: h_{1/2} is monotone under the half-label order.
    mins = {
        candidate: tuple(
            i
            for i in half_alphabet.indices(candidate)
            if down[i] & candidate == 1 << i
        )
        for candidate in candidate_masks
    }

    universal_cache: dict[tuple[int, ...], bool] = {}

    def universal(config_masks: tuple[int, ...]) -> bool:
        key = tuple(sorted(config_masks))
        cached = universal_cache.get(key)
        if cached is not None:
            return cached
        result = all(
            membership.allows([meaning_masks[i] for i in choice])
            for choice in product(*(mins[candidate] for candidate in key))
        )
        universal_cache[key] = result
        return result

    def extendable(config_masks: tuple[int, ...]) -> bool:
        """Prune: every min-choice of a partial configuration must extend."""
        return all(
            membership.extendable([meaning_masks[i] for i in choice])
            for choice in product(*(mins[candidate] for candidate in config_masks))
        )

    delta = half_problem.delta
    # The a-priori grid bound doubles as a materialisation guard: it also
    # caps the size of the derived problem the step would have to build
    # (|labels| <= candidates, |h'| <= grid), which is what keeps diverging
    # pipelines failing fast instead of assembling multi-gigabyte problems.
    candidate_count = _multiset_count(len(candidate_masks), delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"full step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )

    if simplify:
        # Only the *maximal* universal configurations survive Property 6, and
        # each one is the completion of its own (delta-1)-prefix: the last
        # component is forced to be the up-closure of the jointly-allowed
        # half labels.  Enumerating prefixes plus completions drops a whole
        # exponent from the search compared to walking every delta-tuple.
        allowed_configs = _complete_maximal_configs(
            candidate_masks,
            delta,
            mins,
            meaning_masks,
            membership,
            up,
            half_count,
            extendable,
            half_alphabet.indices,
        )
        allowed_configs = _discard_dominated(allowed_configs)
    else:
        allowed_configs = _enumerate_universal_configs(
            candidate_masks, delta, universal, extendable
        )

    # Edge constraint (Property 3, existential).  Simplified: {W, X} allowed
    # iff some Y in W has its polar partner in X.  Unsimplified: some pair
    # (Y, Z) with Z a subset of comp(Y).  Both collapse to one precomputed
    # "partner bits" mask per candidate: the pair is allowed iff the partner
    # bits of one side intersect the other side.
    comp = Compatibility(half.original)
    mask_to_bit = {mask: 1 << i for i, mask in enumerate(meaning_masks)}
    partner_bits = [0] * half_count
    for i in range(half_count):
        polar = comp.polar_mask(meaning_masks[i])
        if simplify:
            # The polar partner participates only if it is itself a half label.
            partner_bits[i] = mask_to_bit.get(polar, 0)
        else:
            bits = 0
            for j in range(half_count):
                if meaning_masks[j] & ~polar == 0:
                    bits |= 1 << j
            partner_bits[i] = bits

    used_masks = sorted(
        {candidate for config in allowed_configs for candidate in config},
        key=half_alphabet.indices,
    )
    set_names = {
        candidate: set_label_name(half_alphabet.members(candidate))
        for candidate in used_masks
    }
    partner_union = {}
    for candidate in used_masks:
        bits = 0
        remaining = candidate
        while remaining:
            low = remaining & -remaining
            bits |= partner_bits[low.bit_length() - 1]
            remaining ^= low
        partner_union[candidate] = bits

    edge_configs = set()
    for first in used_masks:
        first_partners = partner_union[first]
        for second in used_masks:
            if first_partners & second:
                edge_configs.add(edge_config(set_names[first], set_names[second]))

    structured = Problem(
        name=f"{half.original.name}|full" + ("" if simplify else "|raw"),
        delta=delta,
        labels=frozenset(set_names.values()),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(
            node_config(set_names[candidate] for candidate in config)
            for config in allowed_configs
        ),
    ).compressed()

    # Rename to short atomic labels for iteration; keep provenance.  The
    # fresh names avoid the original problem's own labels so a derived label
    # can never shadow a pre-existing user label (e.g. an input that already
    # uses ``A``).
    ordered = sorted(structured.labels)
    rename = dict(zip(ordered, short_names(len(ordered), avoid=half.original.labels)))
    renamed = structured.renamed(rename, name=f"{half.original.name}+1")
    mask_of_name = {name: candidate for candidate, name in set_names.items()}
    full_meaning = {
        rename[structured_name]: half_alphabet.label_set(mask_of_name[structured_name])
        for structured_name in ordered
    }
    return SpeedupResult(
        original=half.original,
        half=half_problem,
        half_meaning=dict(half.meaning),
        full=renamed,
        full_meaning=full_meaning,
        simplified=simplify and half.simplified,
    )


def compute_speedup(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> SpeedupResult:
    """The raw (uncached) derivation ``Pi -> Pi_{1/2} -> Pi_1``.

    This is the computational core behind :func:`speedup` and
    :meth:`repro.engine.Engine.speedup`; it never consults a cache.
    """
    half = half_step(
        problem,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
    )
    return full_step(
        half,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
    )


def speedup(problem: Problem, simplify: bool = True) -> SpeedupResult:
    """Apply one full speedup step: ``Pi -> Pi_1`` (Theorem 1 / Theorem 2).

    The derived problem is exactly one round easier than ``Pi`` on
    t-independent graph classes of girth at least ``2t + 2`` (with edge
    orientations available when ``simplify=True``, per Theorem 2).

    Compatibility shim: delegates to the process-wide default
    :class:`repro.engine.Engine`, so repeated derivations of the same (or a
    label-renamed) problem hit the content-addressed cache.  Use an explicit
    engine for custom limits or cache policy.
    """
    from repro.engine import get_default_engine

    return get_default_engine().speedup(problem, simplify=simplify)


def iterate_speedup(
    problem: Problem, steps: int, simplify: bool = True
) -> list[SpeedupResult]:
    """Apply the speedup ``steps`` times, returning every intermediate result.

    Compatibility shim over :meth:`repro.engine.Engine.iterate_speedup`.
    """
    from repro.engine import get_default_engine

    return get_default_engine().iterate_speedup(problem, steps, simplify=simplify)


# -- internal helpers -------------------------------------------------------


def _multiset_count(universe: int, size: int) -> int:
    """Number of multisets of ``size`` elements over ``universe`` symbols."""
    from math import comb

    return comb(universe + size - 1, size)


def _search_existential_configs(
    ordered_names: list[Label],
    slot_masks: list[int],
    delta: int,
    membership: _MaskMembership,
) -> list[tuple[Label, ...]]:
    """DFS for the half step's node constraint with extendability pruning.

    Enumerates non-decreasing name tuples (canonical multisets) but prunes
    any prefix whose slot masks already fail the extendability test, so the
    work tracks the viable part of the space instead of the full
    ``C(n + delta - 1, delta)`` grid the string path walked.  At depth
    ``delta`` extendability *is* membership, so no re-check is needed at the
    leaves.
    """
    results: list[tuple[Label, ...]] = []
    count = len(ordered_names)
    chosen_masks: list[int] = []
    chosen_names: list[Label] = []

    def extend(start: int) -> None:
        if len(chosen_names) == delta:
            results.append(tuple(chosen_names))
            return
        for index in range(start, count):
            chosen_masks.append(slot_masks[index])
            if membership.extendable(chosen_masks):
                chosen_names.append(ordered_names[index])
                extend(index)
                chosen_names.pop()
            chosen_masks.pop()

    extend(0)
    return results


def _enumerate_filters(
    count: int,
    up: list[int],
    comparable: list[int],
    max_derived_labels: int,
) -> list[int]:
    """Enumerate the non-empty filters (up-sets) of the half-label poset.

    Filters are in bijection with non-empty antichains (their minimal
    elements); the DFS walks antichains as bitmasks, accumulating each
    filter as the union of the ``up`` masks of its antichain.  Iterative so
    deep chain posets cannot overflow the recursion limit.
    """
    collected: list[int] = []
    stack: list[tuple[int, int, int]] = [(0, 0, 0)]
    while stack:
        index, antichain, filter_mask = stack.pop()
        if index == count:
            if antichain:
                collected.append(filter_mask)
                if len(collected) > max_derived_labels:
                    raise EngineLimitError(
                        f"full step over {count} half labels produces "
                        f"more than {max_derived_labels} filters",
                        limit_name="max_derived_labels",
                        limit=max_derived_labels,
                        observed=len(collected),
                    )
            continue
        if not comparable[index] & antichain:
            stack.append((index + 1, antichain | (1 << index), filter_mask | up[index]))
        stack.append((index + 1, antichain, filter_mask))
    return collected


def _enumerate_universal_configs(
    candidates: Sequence[int],
    delta: int,
    universal: Callable[[tuple[int, ...]], bool],
    extendable: Callable[[tuple[int, ...]], bool],
) -> list[tuple[int, ...]]:
    """DFS over non-decreasing candidate indices with extendability pruning.

    Used by the unsimplified (literal Theorem 1) path, which needs *every*
    universal configuration, not just the maximal ones.
    """
    results: list[tuple[int, ...]] = []
    chosen: list[int] = []

    def extend(start: int) -> None:
        if len(chosen) == delta:
            config = tuple(chosen)
            if universal(config):
                results.append(config)
            return
        for index in range(start, len(candidates)):
            chosen.append(candidates[index])
            if extendable(tuple(chosen)):
                extend(index)
            chosen.pop()

    extend(0)
    # Deduplicate; candidates are pre-sorted, so each config tuple is already
    # canonical (non-decreasing in the candidate order).
    return sorted(set(results))


def _complete_maximal_configs(
    candidates: Sequence[int],
    delta: int,
    mins: dict[int, tuple[int, ...]],
    meaning_masks: list[int],
    membership: _MaskMembership,
    up: list[int],
    half_count: int,
    extendable: Callable[[tuple[int, ...]], bool],
    sort_key: Callable[[int], object],
) -> list[tuple[int, ...]]:
    """Universal configurations via prefix completion (simplified path only).

    For a fixed (delta-1)-prefix ``(F_1, ..., F_{d-1})`` the last component
    ``G`` of a universal configuration must satisfy ``mins(G) <= U`` where
    ``U`` is the set of half labels ``z`` with every min-choice of the prefix
    plus ``z`` allowed -- so the unique *maximal* completion is the
    up-closure of ``U``.  A maximal universal configuration equals the
    completion of the prefix obtained by deleting any one of its components
    (the completion dominates it componentwise, and maximality forces
    equality), so enumerating all extendable prefixes and completing each
    yields a superset of the maximal configurations consisting of universal
    configurations only; the domination filter then returns exactly the
    maximal set -- the same result the exhaustive delta-tuple walk produces,
    at a whole exponent less work.
    """
    results: set[tuple[int, ...]] = set()
    prefix: list[int] = []
    all_labels = (1 << half_count) - 1

    def complete() -> None:
        """Compute U for the current prefix and record its completion."""
        allowed = all_labels
        for choice in product(*(mins[candidate] for candidate in prefix)):
            base = [meaning_masks[i] for i in choice]
            still_allowed = 0
            remaining = allowed
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                if membership.allows(base + [meaning_masks[low.bit_length() - 1]]):
                    still_allowed |= low
            allowed = still_allowed
            if not allowed:
                return
        completion = 0
        remaining = allowed
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            completion |= up[low.bit_length() - 1]
        results.add(tuple(sorted([*prefix, completion], key=sort_key)))

    def extend(start: int) -> None:
        if len(prefix) == delta - 1:
            complete()
            return
        for index in range(start, len(candidates)):
            prefix.append(candidates[index])
            if extendable(tuple(prefix)):
                extend(index)
            prefix.pop()

    extend(0)
    return sorted(results)


def _discard_dominated(configs: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Keep only configurations maximal under componentwise set containment.

    ``A`` dominates ``B`` iff some bijection pairs every component of ``B``
    with a distinct superset component of ``A`` -- a perfect-matching test
    over position masks.  Mutual domination implies equality, so the
    survivors are an antichain.

    A strict dominator always has strictly more total bits (a componentwise
    bijection onto supersets with equal totals forces equality), and
    domination is transitive, so processing configurations in decreasing
    total-popcount order and testing only against the already-kept maximal
    ones is exact while skipping almost all of the quadratic pair grid.
    """

    def dominates(big: tuple[int, ...], small: tuple[int, ...]) -> bool:
        position_masks = []
        for component in small:
            allowed = 0
            for position, candidate in enumerate(big):
                if component & ~candidate == 0:
                    allowed |= 1 << position
            if not allowed:
                return False
            position_masks.append(allowed)
        return mask_matching_exists(position_masks)

    annotated = []
    for config in configs:
        union = 0
        for component in config:
            union |= component
        popcounts = tuple(
            sorted((component.bit_count() for component in config), reverse=True)
        )
        annotated.append((sum(popcounts), popcounts, union, config))
    annotated.sort(key=lambda entry: -entry[0])

    kept: list[tuple[int, tuple[int, ...], int, tuple[int, ...]]] = []
    survivors: list[tuple[int, ...]] = []
    for total, popcounts, union, config in annotated:
        dominated = False
        for kept_total, kept_pops, kept_union, kept_config in kept:
            if kept_total == total:
                continue  # equal totals cannot strictly dominate
            if union & ~kept_union:
                continue
            if any(p > kp for p, kp in zip(popcounts, kept_pops)):
                continue
            if dominates(kept_config, config):
                dominated = True
                break
        if not dominated:
            kept.append((total, popcounts, union, config))
            survivors.append(config)
    return survivors
