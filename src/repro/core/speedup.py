"""The automatic speedup: derive ``Pi_{1/2}`` and ``Pi_1`` from ``Pi``.

This module implements the paper's Section 4.1 (the derivation behind
Theorem 1) and Section 4.2 (the maximality simplification, Theorem 2).

The derivation has two dual steps.

**Half step** ``Pi -> Pi_{1/2}``: output labels become *sets* of original
labels; the edge constraint becomes universal (Property 1: every pair of
choices must be allowed) and the node constraint becomes existential
(Property 2: some choice per set must form an allowed configuration).
Under the maximality simplification (Property 5), the usable labels are
exactly the Galois-*closed* sets ``Y = comp(comp(Y))`` and the edge
constraint collapses to the pairs ``{Y, comp(Y)}`` -- this is what
:mod:`repro.core.galois` computes.

**Full step** ``Pi_{1/2} -> Pi_1``: labels become sets of half-step labels;
now the edge constraint is existential (Property 3) and the node constraint
universal (Property 4), maximised under Property 6.  Because the half-step
node constraint is monotone in the subset order on half-labels, every
maximal node configuration of ``Pi_1`` uses only *upward-closed* sets
(filters) of the half-label poset, and the universal check only needs each
filter's minimal elements -- the same representation trick the Round
Eliminator uses.

Since PR 3 the whole derivation runs on the bitmask kernel
(:mod:`repro.core.alphabet`): label sets are interned Python ints, subset
tests are single ``&``/``~`` expressions, the filter poset is a pair of
``up``/``down`` mask tables, realizability matchings run on per-configuration
position masks, and candidate node configurations are *searched* -- a pruned
DFS for the half step, and prefix-plus-maximal-completion for the simplified
full step -- rather than exhaustively enumerated.  The size guards keep the
string path's a-priori semantics (the grid bound doubles as a guard on the
size of the problem the step would materialise), so the kernel is equivalent
to the legacy path *including* its ``EngineLimitError`` behavior; within the
guards it is orders of magnitude faster.  The string surface -- problems,
meanings, derived label names -- is unchanged; ``core/_legacy.py`` preserves
the original frozenset path and the differential tests assert exact result
equality.

Both the simplified (Theorem 2) and the literal unsimplified (Theorem 1)
derivations are provided; the latter blows up quickly and is intended for
the small instances used by the executable Theorem 1 experiments.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from itertools import product
from time import perf_counter
from typing import Any

from repro.core.alphabet import (
    Alphabet,
    intern,
    mask_matching_exists,
    set_label_name,
    short_names,
)
from repro.core.galois import Compatibility

# Re-exported from its dependency-free home (repro.core.limits) so the
# Galois layer can raise it too; this module remains the public import site.
from repro.core.limits import EngineLimitError
from repro.core.problem import Label, Problem, edge_config, node_config
from repro.core.vectorkernel import (
    AllowsTable,
    KernelStats,
    VectorFrontier,
    enumerate_filters_vector,
    existential_edge_pairs,
    get_numpy,
    resolve_kernel,
)

__all__ = [
    "EngineLimitError",
    "HalfStepResult",
    "KernelStats",
    "SpeedupResult",
    "MAX_DERIVED_LABELS",
    "MAX_CANDIDATE_CONFIGS",
    "MAX_LIVE_CONFIGS",
    "STREAM_CHUNK",
    "resolve_kernel",
    "set_label_name",
    "short_names",
    "half_step",
    "full_step",
    "compute_speedup",
    "speedup",
    "iterate_speedup",
]


# Default caps keeping accidental exponential blow-ups debuggable instead of
# hanging the interpreter.  They are the defaults of
# :class:`repro.engine.EngineConfig`; the derivation functions below accept
# per-call overrides so an :class:`repro.engine.Engine` can be configured
# without touching module state.  In kernel terms: ``max_derived_labels``
# bounds the interned derived-label masks materialised (filters of the
# half-label poset; raw subset masks on the Theorem 1 path).
# ``max_candidate_configs`` bounds candidate-configuration *work*: the
# half step and the unsimplified (Theorem 1) full step keep the historical
# a-priori grid bound ``C(candidates + delta - 1, delta)``, while the
# simplified full step streams its enumeration and charges the cap
# incrementally per prefix extension and per completion, so huge grids are
# attempted -- and only genuinely long enumerations are refused.
# ``max_live_configs`` is the streaming full step's *memory* cap: it bounds
# the undominated candidate-configuration frontier actually held live (and
# with it the derived problem's node constraint), replacing the retired
# a-priori materialisation guard.
MAX_DERIVED_LABELS = 100_000
MAX_CANDIDATE_CONFIGS = 8_000_000
MAX_LIVE_CONFIGS = 1_000_000

#: How many streamed candidate configurations are buffered between
#: domination-frontier flushes.  Pure batching: insertions happen strictly
#: in stream order inside a flush, so results are chunk-size-invariant (the
#: differential suite asserts byte-identical results across chunk sizes).
STREAM_CHUNK = 2048


@dataclass(frozen=True)
class HalfStepResult:
    """The derived problem ``Pi_{1/2}`` plus the meaning of its labels."""

    original: Problem
    problem: Problem
    meaning: dict[Label, frozenset[Label]]
    simplified: bool

    def polar_name(self, label: Label) -> Label:
        """Name of ``comp(meaning(label))`` -- the partner in a maximal edge pair."""
        comp = Compatibility(self.original)
        return set_label_name(comp.polar(self.meaning[label]))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "original": self.original.to_dict(),
            "problem": self.problem.to_dict(),
            "meaning": {name: sorted(members) for name, members in sorted(self.meaning.items())},
            "simplified": self.simplified,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "HalfStepResult":
        return HalfStepResult(
            original=Problem.from_dict(data["original"]),
            problem=Problem.from_dict(data["problem"]),
            meaning={
                name: frozenset(members) for name, members in data["meaning"].items()
            },
            simplified=data["simplified"],
        )


@dataclass(frozen=True)
class SpeedupResult:
    """One full application of the speedup: ``Pi -> Pi_{1/2} -> Pi_1``.

    ``full`` carries short atomic labels (ready for iteration);
    ``full_meaning`` maps each of them to the set of half-step label names it
    stands for, and ``half_meaning`` maps half-step names to sets of original
    labels, so provenance is recoverable across iterations.
    """

    original: Problem
    half: Problem
    half_meaning: dict[Label, frozenset[Label]]
    full: Problem
    full_meaning: dict[Label, frozenset[Label]]
    simplified: bool

    def full_label_as_original_sets(self, label: Label) -> frozenset[frozenset[Label]]:
        """Expand a derived label to its set-of-sets over the original alphabet."""
        return frozenset(
            frozenset(self.half_meaning[half_name])
            for half_name in self.full_meaning[label]
        )

    @property
    def kernel_stats(self) -> KernelStats | None:
        """Per-fold timing counters for the derivation that built this result.

        Present only on freshly computed results (attached out-of-band via
        the instance ``__dict__`` by :func:`full_step`); ``None`` on results
        rebuilt from JSON, unpickled, or returned from a cache.  Wall-clock
        numbers deliberately stay out of ``to_dict`` / equality / pickles so
        the result payload remains byte-deterministic.
        """
        return self.__dict__.get("_kernel_stats")

    def __reduce__(self) -> tuple[object, ...]:
        """Pickle via plain dict meanings.

        Cache hits carry ``MappingProxyType`` meaning views (the cache's
        poisoning guard), which cannot cross a pickle boundary; a process
        pool shipping results would crash on exactly the cached ones.  The
        unpickled copy holds plain dicts -- it lives in another process, so
        read-only views would guard nothing there anyway.
        """
        return (
            SpeedupResult,
            (
                self.original,
                self.half,
                dict(self.half_meaning),
                self.full,
                dict(self.full_meaning),
                self.simplified,
            ),
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`).

        This is the payload stored by the engine's on-disk cache and emitted
        by ``python -m repro speedup --json``.
        """
        return {
            "original": self.original.to_dict(),
            "half": self.half.to_dict(),
            "half_meaning": {
                name: sorted(members)
                for name, members in sorted(self.half_meaning.items())
            },
            "full": self.full.to_dict(),
            "full_meaning": {
                name: sorted(members)
                for name, members in sorted(self.full_meaning.items())
            },
            "simplified": self.simplified,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SpeedupResult":
        return SpeedupResult(
            original=Problem.from_dict(data["original"]),
            half=Problem.from_dict(data["half"]),
            half_meaning={
                name: frozenset(members)
                for name, members in data["half_meaning"].items()
            },
            full=Problem.from_dict(data["full"]),
            full_meaning={
                name: frozenset(members)
                for name, members in data["full_meaning"].items()
            },
            simplified=data["simplified"],
        )


class _MaskMembership:
    """Memoised membership test for the existential constraint ``h_{1/2}``.

    A tuple of label-set *masks* ``(Y_1, ..., Y_j)`` (``j <= delta``) is
    *extendable* iff some allowed configuration ``C`` of the original problem
    can assign a distinct position of ``C`` to every slot, with slot ``i``
    receiving a label from ``Y_i``; for ``j == delta`` this is exactly
    membership in ``h_{1/2}`` (Property 2).  Each test reduces to a tiny
    bipartite matching over per-configuration position masks; results are
    memoised under the (numerically sorted, hence canonical) mask tuple.
    """

    def __init__(self, problem: Problem):
        interned = intern(problem)
        self._delta = problem.delta
        self._supports = interned.config_supports
        self._position_masks = interned.config_position_masks
        self._cache: dict[tuple[int, ...], bool] = {}

    def extendable(self, slots: Sequence[int]) -> bool:
        key = tuple(sorted(slots))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._any_realizable(key)
        self._cache[key] = result
        return result

    def allows(self, slots: Sequence[int]) -> bool:
        """Full membership: requires exactly ``delta`` slots."""
        if len(slots) != self._delta:
            return False
        return self.extendable(slots)

    def _any_realizable(self, slots: tuple[int, ...]) -> bool:
        position_masks = self._position_masks
        for config_index, support in enumerate(self._supports):
            positions = position_masks[config_index]
            slot_positions = []
            realizable = True
            for slot in slots:
                overlap = slot & support
                if not overlap:
                    realizable = False
                    break
                allowed = 0
                while overlap:
                    low = overlap & -overlap
                    allowed |= positions[low.bit_length() - 1]
                    overlap ^= low
                slot_positions.append(allowed)
            # Memoised behind ``extendable``'s cache: amortised-constant
            # per distinct slot tuple, so the scalar tier is fine here.
            if realizable and mask_matching_exists(  # relint: allow[unbatched-matching]
                slot_positions
            ):
                return True
        return False


def half_step(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    kernel: str = "auto",
    stats: KernelStats | None = None,
) -> HalfStepResult:
    """Derive ``Pi_{1/2}`` (simplified: ``Pi'_{1/2}``) from ``Pi``.

    With ``simplify=True`` the maximality constraint of Theorem 2
    (Property 5) is applied, so labels are the usable Galois-closed sets and
    the edge constraint pairs each closed set with its polar.  With
    ``simplify=False`` the literal Theorem 1 construction is used: labels are
    all non-empty subsets and the edge constraint contains every universally
    compatible pair.  (The empty set is omitted: the existential node
    constraint can never use it, so it is unusable by definition.)

    ``kernel`` selects the evaluation tier for the closed-set fixed point
    (see :func:`repro.core.vectorkernel.resolve_kernel`); results are
    identical for every choice.
    """
    interned = intern(problem)
    alphabet = interned.alphabet
    comp = Compatibility(problem)
    resolved = resolve_kernel(kernel)
    if simplify:
        # The closed-set enumeration is the one derivation phase whose size
        # is unknowable a priori; the limit aborts it incrementally (search
        # states with thousand-label alphabets would otherwise hang here
        # instead of failing fast).
        started = perf_counter()
        half_masks = sorted(
            comp.usable_closed_masks(limit=max_derived_labels, kernel=resolved),
            key=alphabet.indices,
        )
        if stats is not None:
            stats.closed_sets_s += perf_counter() - started
    else:
        base_size = alphabet.size
        # The raw construction materialises all subsets AND a quadratic edge
        # relation over them; guard both.
        if 2**base_size > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified half step over {base_size} labels materialises "
                f"{2 ** base_size} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2**base_size,
            )
        if 4**base_size > max_candidate_configs:
            raise EngineLimitError(
                f"unsimplified half step over {base_size} labels materialises "
                f"a {4 ** base_size}-pair edge relation",
                limit_name="max_candidate_configs",
                limit=max_candidate_configs,
                observed=4**base_size,
            )
        half_masks = list(range(1, alphabet.full_mask + 1))

    name_of_mask = {mask: set_label_name(alphabet.members(mask)) for mask in half_masks}
    meaning = {name: alphabet.label_set(mask) for mask, name in name_of_mask.items()}
    meaning_mask = {name: mask for mask, name in name_of_mask.items()}

    if simplify:
        edge_configs = {
            edge_config(
                name_of_mask[mask],
                set_label_name(alphabet.members(comp.polar_mask(mask))),
            )
            for mask in half_masks
        }
    else:
        edge_configs = set()
        for first in half_masks:
            polar_of_first = comp.polar_mask(first)
            for second in half_masks:
                if second & ~polar_of_first == 0:
                    edge_configs.add(
                        edge_config(name_of_mask[first], name_of_mask[second])
                    )

    membership = _MaskMembership(problem)
    ordered_names = sorted(meaning)
    slot_masks = [meaning_mask[name] for name in ordered_names]
    candidate_count = _multiset_count(len(ordered_names), problem.delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"half step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )
    node_configs = _search_existential_configs(
        ordered_names, slot_masks, problem.delta, membership
    )

    derived = Problem(
        name=f"{problem.name}|half" + ("" if simplify else "|raw"),
        delta=problem.delta,
        labels=frozenset(meaning),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(node_configs),
    ).compressed()
    kept_meaning = {name: meaning[name] for name in derived.labels}
    return HalfStepResult(
        original=problem, problem=derived, meaning=kept_meaning, simplified=simplify
    )


def full_step(
    half: HalfStepResult,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    max_live_configs: int = MAX_LIVE_CONFIGS,
    kernel: str = "auto",
    stream_chunk: int = STREAM_CHUNK,
    stats: KernelStats | None = None,
) -> SpeedupResult:
    """Derive ``Pi_1`` (simplified: ``Pi'_1``) from a half-step result.

    The returned :class:`SpeedupResult` carries the derived problem's
    provenance (``full_meaning`` maps each short label of ``full`` to the
    set of half labels it stands for) and the renamed short-label problem
    (``full``), which is what iteration consumes.

    On the simplified (Theorem 2) path the candidate-configuration
    enumeration is *streaming*: prefix completions are generated lazily and
    fed through an on-the-fly domination frontier, so there is no a-priori
    ``C(candidates + delta - 1, delta)`` refusal -- ``max_candidate_configs``
    charges enumeration work incrementally and ``max_live_configs`` caps the
    undominated frontier actually held in memory.  The unsimplified
    (Theorem 1) path keeps the historical a-priori grid guard.  ``kernel``
    selects the scalar big-int or the bit-packed numpy evaluation tier;
    results are identical for every kernel, chunk size, and limit setting
    that does not trip.
    """
    half_problem = half.problem
    meaning = half.meaning
    original_alphabet = intern(half.original).alphabet
    membership = _MaskMembership(half.original)
    resolved = resolve_kernel(kernel)
    np_ = get_numpy() if resolved == "vector" else None
    if stats is None:
        stats = KernelStats(kernel=resolved)

    # Intern the half alphabet: half labels get their own bit positions, and
    # each gets its meaning as a mask over the *original* alphabet.
    half_alphabet = Alphabet(half_problem.labels)
    half_count = half_alphabet.size
    meaning_masks = [
        original_alphabet.mask(meaning[name]) for name in half_alphabet.names
    ]

    # The subset order on meanings, as mask tables over the half alphabet:
    # up[i] = labels j with meaning(i) <= meaning(j), down[i] the converse.
    up = [0] * half_count
    down = [0] * half_count
    for i in range(half_count):
        mi = meaning_masks[i]
        for j in range(half_count):
            if mi & ~meaning_masks[j] == 0:
                up[i] |= 1 << j
                down[j] |= 1 << i
    comparable = [up[i] | down[i] for i in range(half_count)]

    if simplify:
        started = perf_counter()
        if np_ is not None:
            candidate_masks = enumerate_filters_vector(
                half_count, up, comparable, max_derived_labels
            )
        else:
            candidate_masks = _enumerate_filters(
                half_count, up, comparable, max_derived_labels
            )
        stats.enumeration_s += perf_counter() - started
    else:
        if 2**half_count > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified full step over {half_count} labels "
                f"materialises {2 ** half_count} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2**half_count,
            )
        candidate_masks = list(range(1, (1 << half_count)))
    candidate_masks.sort(key=half_alphabet.indices)

    # The universal node check (Property 4) only needs the minimal elements of
    # each candidate set: h_{1/2} is monotone under the half-label order.
    mins = {
        candidate: tuple(
            i
            for i in half_alphabet.indices(candidate)
            if down[i] & candidate == 1 << i
        )
        for candidate in candidate_masks
    }

    universal_cache: dict[tuple[int, ...], bool] = {}

    def universal(config_masks: tuple[int, ...]) -> bool:
        key = tuple(sorted(config_masks))
        cached = universal_cache.get(key)
        if cached is not None:
            return cached
        result = all(
            # Memoised per sorted config key; min-choice fans are tiny.
            membership.allows(  # relint: allow[unbatched-matching]
                [meaning_masks[i] for i in choice]
            )
            for choice in product(*(mins[candidate] for candidate in key))
        )
        universal_cache[key] = result
        return result

    def extendable(config_masks: tuple[int, ...]) -> bool:
        """Prune: every min-choice of a partial configuration must extend."""
        return all(
            membership.extendable([meaning_masks[i] for i in choice])
            for choice in product(*(mins[candidate] for candidate in config_masks))
        )

    delta = half_problem.delta
    if simplify:
        # Only the *maximal* universal configurations survive Property 6, and
        # each one is the completion of its own (delta-1)-prefix: the last
        # component is forced to be the up-closure of the jointly-allowed
        # half labels.  Enumerating prefixes plus completions drops a whole
        # exponent from the search compared to walking every delta-tuple --
        # and the completions *stream* through a domination frontier, so the
        # historical a-priori grid refusal is retired on this path: memory is
        # bounded by the surviving frontier (``max_live_configs``) and time
        # by the incremental work charge (``max_candidate_configs``).
        allows_table = None
        if np_ is not None and delta <= 16:
            interned_original = intern(half.original)
            allows_table = AllowsTable(
                np_,
                delta,
                interned_original.config_supports,
                interned_original.config_position_masks,
                meaning_masks,
                original_alphabet.size,
            )
        frontier: _MaskFrontier | VectorFrontier
        if np_ is not None:
            frontier = VectorFrontier(
                np_, half_count, delta, max_live_configs, _config_dominates
            )
        else:
            frontier = _MaskFrontier(max_live_configs)
        _stream_maximal_configs(
            candidate_masks,
            delta,
            mins,
            meaning_masks,
            membership,
            up,
            half_count,
            extendable,
            half_alphabet.indices,
            allows_table,
            frontier,
            max_candidate_configs,
            stream_chunk,
            stats,
        )
        allowed_configs = frontier.survivors()
        stats.frontier_peak = max(stats.frontier_peak, frontier.peak)
    else:
        # The unsimplified (Theorem 1) path keeps the historical a-priori
        # grid bound: it needs *every* universal configuration, so the grid
        # really is the work and the materialised output.
        candidate_count = _multiset_count(len(candidate_masks), delta)
        if candidate_count > max_candidate_configs:
            raise EngineLimitError(
                f"full step would enumerate {candidate_count} node configurations",
                limit_name="max_candidate_configs",
                limit=max_candidate_configs,
                observed=candidate_count,
            )
        allowed_configs = _enumerate_universal_configs(
            candidate_masks, delta, universal, extendable
        )

    # Edge constraint (Property 3, existential).  Simplified: {W, X} allowed
    # iff some Y in W has its polar partner in X.  Unsimplified: some pair
    # (Y, Z) with Z a subset of comp(Y).  Both collapse to one precomputed
    # "partner bits" mask per candidate: the pair is allowed iff the partner
    # bits of one side intersect the other side.
    comp = Compatibility(half.original)
    mask_to_bit = {mask: 1 << i for i, mask in enumerate(meaning_masks)}
    partner_bits = [0] * half_count
    for i in range(half_count):
        polar = comp.polar_mask(meaning_masks[i])
        if simplify:
            # The polar partner participates only if it is itself a half label.
            partner_bits[i] = mask_to_bit.get(polar, 0)
        else:
            bits = 0
            for j in range(half_count):
                if meaning_masks[j] & ~polar == 0:
                    bits |= 1 << j
            partner_bits[i] = bits

    # Materialise the derived problem *directly* at index level: the historic
    # path built a full-size intermediate problem with ``{...}`` set-name
    # labels, compressed it, then renamed it -- three constructions (and three
    # validations) of a problem whose edge relation can run to tens of
    # millions of pairs.  The index-level pipeline below replays the exact
    # same steps (existential pair relation, ``compressed()`` fixpoint,
    # set-name sort, ``short_names`` rename) but builds the final short-name
    # problem once, which is where most of the wall clock of big derivations
    # went.  Byte equality with the historic construction is asserted by the
    # differential suite.
    started = perf_counter()
    used_masks = sorted(
        {candidate for config in allowed_configs for candidate in config},
        key=half_alphabet.indices,
    )
    used_count = len(used_masks)
    index_of = {candidate: index for index, candidate in enumerate(used_masks)}
    partner_union = []
    for candidate in used_masks:
        bits = 0
        remaining = candidate
        while remaining:
            low = remaining & -remaining
            bits |= partner_bits[low.bit_length() - 1]
            remaining ^= low
        partner_union.append(bits)
    # Components arrive sorted by the half-alphabet key used_masks is sorted
    # by, so the index tuples are canonical (non-decreasing) multisets.
    node_index_configs = [
        tuple(index_of[candidate] for candidate in config)
        for config in allowed_configs
    ]

    pair_arrays = None
    pair_set: set[tuple[int, int]] | None = None
    if np_ is not None:
        first_idx, second_idx = existential_edge_pairs(
            used_masks, partner_union, half_count
        )
        # The compressed() fixpoint on index arrays: usable = mentioned in
        # both relations; dropping labels invalidates configurations, so
        # iterate.
        alive = np_.ones(used_count, dtype=bool)
        while True:
            in_edges = np_.zeros(used_count, dtype=bool)
            in_edges[first_idx] = True
            in_edges[second_idx] = True
            in_nodes = np_.zeros(used_count, dtype=bool)
            if node_index_configs:
                flat = np_.fromiter(
                    (index for config in node_index_configs for index in config),
                    dtype=np_.int64,
                )
                in_nodes[flat] = True
            usable = in_edges & in_nodes
            if np_.array_equal(usable, alive):
                break
            alive = usable
            keep = usable[first_idx] & usable[second_idx]
            first_idx = first_idx[keep]
            second_idx = second_idx[keep]
            node_index_configs = [
                config
                for config in node_index_configs
                if all(usable[index] for index in config)
            ]
        surviving = np_.nonzero(alive)[0].tolist()
        pair_arrays = (first_idx, second_idx)
    else:
        pair_set = set()
        for first in range(used_count):
            first_partners = partner_union[first]
            for second in range(used_count):
                if first_partners & used_masks[second]:
                    pair_set.add(
                        (first, second) if first <= second else (second, first)
                    )
        alive_set = set(range(used_count))
        while True:
            in_edge_set = {index for pair in pair_set for index in pair}
            in_node_set = {
                index for config in node_index_configs for index in config
            }
            usable_set = in_edge_set & in_node_set
            if usable_set == alive_set:
                break
            alive_set = usable_set
            pair_set = {
                pair
                for pair in pair_set
                if pair[0] in usable_set and pair[1] in usable_set
            }
            node_index_configs = [
                config
                for config in node_index_configs
                if all(index in usable_set for index in config)
            ]
        surviving = sorted(alive_set)

    # Rename to short atomic labels for iteration; keep provenance.  The
    # fresh names avoid the original problem's own labels so a derived label
    # can never shadow a pre-existing user label (e.g. an input that already
    # uses ``A``); the rename order is the string sort of the set names,
    # exactly as the historic construction sorted the intermediate labels.
    set_name_of = {
        index: set_label_name(half_alphabet.members(used_masks[index]))
        for index in surviving
    }
    ordered = sorted(set_name_of.values())
    rename = dict(zip(ordered, short_names(len(ordered), avoid=half.original.labels)))
    short_of = {index: rename[set_name_of[index]] for index in surviving}

    node_constraint = frozenset(
        node_config(short_of[index] for index in config)
        for config in node_index_configs
    )
    if pair_arrays is not None:
        first_idx, second_idx = pair_arrays
        pair_arrays = None
        rank = np_.zeros(used_count, dtype=np_.int64)
        shorts: list[Label | None] = [None] * used_count
        for index in surviving:
            shorts[index] = short_of[index]
        for position, index in enumerate(
            sorted(surviving, key=lambda index: short_of[index])
        ):
            rank[index] = position
        swap = rank[first_idx] > rank[second_idx]
        low_idx = np_.where(swap, second_idx, first_idx)
        high_idx = np_.where(swap, first_idx, second_idx)
        # Drop the index arrays as soon as each Python-object view exists:
        # at tens of millions of pairs the final frozenset dominates peak
        # memory and the arrays would otherwise sit alongside it.
        del swap, first_idx, second_idx
        shorts_array = np_.array(shorts, dtype=object)
        low_labels = shorts_array[low_idx].tolist()
        del low_idx
        high_labels = shorts_array[high_idx].tolist()
        del high_idx
        edge_constraint = frozenset(zip(low_labels, high_labels))
        del low_labels, high_labels
    else:
        assert pair_set is not None
        edge_constraint = frozenset(
            edge_config(short_of[first], short_of[second])
            for first, second in pair_set
        )

    # Canonical by construction (pairs emitted low/high by rename rank, node
    # tuples sorted, labels freshly minted), so take the trusted constructor
    # and skip re-validating what can be hundreds of thousands of pairs.
    renamed = Problem._from_canonical(
        name=f"{half.original.name}+1",
        delta=delta,
        labels=frozenset(short_of.values()),
        edge_constraint=edge_constraint,
        node_constraint=node_constraint,
    )
    full_meaning = {
        rename[set_name_of[index]]: half_alphabet.label_set(used_masks[index])
        for index in surviving
    }
    stats.materialise_s += perf_counter() - started
    result = SpeedupResult(
        original=half.original,
        half=half_problem,
        half_meaning=dict(half.meaning),
        full=renamed,
        full_meaning=full_meaning,
        simplified=simplify and half.simplified,
    )
    result.__dict__["_kernel_stats"] = stats
    return result


def compute_speedup(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    max_live_configs: int = MAX_LIVE_CONFIGS,
    kernel: str = "auto",
    stream_chunk: int = STREAM_CHUNK,
) -> SpeedupResult:
    """The raw (uncached) derivation ``Pi -> Pi_{1/2} -> Pi_1``.

    This is the computational core behind :func:`speedup` and
    :meth:`repro.engine.Engine.speedup`; it never consults a cache.  The
    result is identical for every ``kernel`` / ``stream_chunk`` choice; the
    per-fold timing breakdown is attached as
    :attr:`SpeedupResult.kernel_stats`.
    """
    resolved = resolve_kernel(kernel)
    stats = KernelStats(kernel=resolved)
    half = half_step(
        problem,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
        kernel=resolved,
        stats=stats,
    )
    return full_step(
        half,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
        max_live_configs=max_live_configs,
        kernel=resolved,
        stream_chunk=stream_chunk,
        stats=stats,
    )


def speedup(problem: Problem, simplify: bool = True) -> SpeedupResult:
    """Apply one full speedup step: ``Pi -> Pi_1`` (Theorem 1 / Theorem 2).

    The derived problem is exactly one round easier than ``Pi`` on
    t-independent graph classes of girth at least ``2t + 2`` (with edge
    orientations available when ``simplify=True``, per Theorem 2).

    Compatibility shim: delegates to the process-wide default
    :class:`repro.engine.Engine`, so repeated derivations of the same (or a
    label-renamed) problem hit the content-addressed cache.  Use an explicit
    engine for custom limits or cache policy.
    """
    from repro.engine import get_default_engine

    return get_default_engine().speedup(problem, simplify=simplify)


def iterate_speedup(
    problem: Problem, steps: int, simplify: bool = True
) -> list[SpeedupResult]:
    """Apply the speedup ``steps`` times, returning every intermediate result.

    Compatibility shim over :meth:`repro.engine.Engine.iterate_speedup`.
    """
    from repro.engine import get_default_engine

    return get_default_engine().iterate_speedup(problem, steps, simplify=simplify)


# -- internal helpers -------------------------------------------------------


def _multiset_count(universe: int, size: int) -> int:
    """Number of multisets of ``size`` elements over ``universe`` symbols."""
    from math import comb

    return comb(universe + size - 1, size)


def _search_existential_configs(
    ordered_names: list[Label],
    slot_masks: list[int],
    delta: int,
    membership: _MaskMembership,
) -> list[tuple[Label, ...]]:
    """DFS for the half step's node constraint with extendability pruning.

    Enumerates non-decreasing name tuples (canonical multisets) but prunes
    any prefix whose slot masks already fail the extendability test, so the
    work tracks the viable part of the space instead of the full
    ``C(n + delta - 1, delta)`` grid the string path walked.  At depth
    ``delta`` extendability *is* membership, so no re-check is needed at the
    leaves.
    """
    results: list[tuple[Label, ...]] = []
    count = len(ordered_names)
    chosen_masks: list[int] = []
    chosen_names: list[Label] = []

    def extend(start: int) -> None:
        if len(chosen_names) == delta:
            results.append(tuple(chosen_names))
            return
        for index in range(start, count):
            chosen_masks.append(slot_masks[index])
            if membership.extendable(chosen_masks):
                chosen_names.append(ordered_names[index])
                extend(index)
                chosen_names.pop()
            chosen_masks.pop()

    extend(0)
    return results


def _enumerate_filters(
    count: int,
    up: list[int],
    comparable: list[int],
    max_derived_labels: int,
) -> list[int]:
    """Enumerate the non-empty filters (up-sets) of the half-label poset.

    Filters are in bijection with non-empty antichains (their minimal
    elements); the DFS walks antichains as bitmasks, accumulating each
    filter as the union of the ``up`` masks of its antichain.  Iterative so
    deep chain posets cannot overflow the recursion limit.
    """
    collected: list[int] = []
    stack: list[tuple[int, int, int]] = [(0, 0, 0)]
    while stack:
        index, antichain, filter_mask = stack.pop()
        if index == count:
            if antichain:
                collected.append(filter_mask)
                if len(collected) > max_derived_labels:
                    raise EngineLimitError(
                        f"full step over {count} half labels produces "
                        f"more than {max_derived_labels} filters",
                        limit_name="max_derived_labels",
                        limit=max_derived_labels,
                        observed=len(collected),
                    )
            continue
        if not comparable[index] & antichain:
            stack.append((index + 1, antichain | (1 << index), filter_mask | up[index]))
        stack.append((index + 1, antichain, filter_mask))
    return collected


def _enumerate_universal_configs(
    candidates: Sequence[int],
    delta: int,
    universal: Callable[[tuple[int, ...]], bool],
    extendable: Callable[[tuple[int, ...]], bool],
) -> list[tuple[int, ...]]:
    """DFS over non-decreasing candidate indices with extendability pruning.

    Used by the unsimplified (literal Theorem 1) path, which needs *every*
    universal configuration, not just the maximal ones.
    """
    results: list[tuple[int, ...]] = []
    chosen: list[int] = []

    def extend(start: int) -> None:
        if len(chosen) == delta:
            config = tuple(chosen)
            if universal(config):
                results.append(config)
            return
        for index in range(start, len(candidates)):
            chosen.append(candidates[index])
            if extendable(tuple(chosen)):
                extend(index)
            chosen.pop()

    extend(0)
    # Deduplicate; candidates are pre-sorted, so each config tuple is already
    # canonical (non-decreasing in the candidate order).
    return sorted(set(results))


def _stream_maximal_configs(
    candidates: Sequence[int],
    delta: int,
    mins: dict[int, tuple[int, ...]],
    meaning_masks: list[int],
    membership: _MaskMembership,
    up: list[int],
    half_count: int,
    extendable: Callable[[tuple[int, ...]], bool],
    sort_key: Callable[[int], object],
    allows_table: AllowsTable | None,
    frontier: "_MaskFrontier | VectorFrontier",
    max_candidate_configs: int,
    stream_chunk: int,
    stats: KernelStats,
) -> None:
    """Stream universal configurations via prefix completion (simplified path).

    For a fixed (delta-1)-prefix ``(F_1, ..., F_{d-1})`` the last component
    ``G`` of a universal configuration must satisfy ``mins(G) <= U`` where
    ``U`` is the set of half labels ``z`` with every min-choice of the prefix
    plus ``z`` allowed -- so the unique *maximal* completion is the
    up-closure of ``U``.  A maximal universal configuration equals the
    completion of the prefix obtained by deleting any one of its components
    (the completion dominates it componentwise, and maximality forces
    equality), so enumerating all extendable prefixes and completing each
    yields a superset of the maximal configurations consisting of universal
    configurations only; the domination ``frontier`` then keeps exactly the
    maximal set -- the same result the exhaustive delta-tuple walk produces,
    at a whole exponent less work, and *streamed*: completions are buffered
    ``stream_chunk`` at a time and filtered on the fly, so memory tracks the
    undominated frontier instead of the full completion multiset.

    ``max_candidate_configs`` is charged incrementally -- one unit per prefix
    extension attempted and per completion computed -- in deterministic DFS
    order, so the trip point is independent of kernel and chunk size.  With
    an :class:`~repro.core.vectorkernel.AllowsTable` the per-completion inner
    loop evaluates every last label in one batched Hall test; the scalar
    fallback walks the memoised matching per label.
    """
    all_labels = (1 << half_count) - 1
    prefix: list[int] = []
    buffer: list[tuple[int, ...]] = []
    work = 0

    def charge() -> None:
        nonlocal work
        work += 1
        if work > max_candidate_configs:
            raise EngineLimitError(
                f"streaming full step exceeded {max_candidate_configs} "
                f"enumeration steps (prefix extensions plus completions)",
                limit_name="max_candidate_configs",
                limit=max_candidate_configs,
                observed=work,
            )

    def flush() -> None:
        if buffer:
            started = perf_counter()
            frontier.insert_chunk(buffer)
            stats.domination_s += perf_counter() - started
            stats.configs_streamed += len(buffer)
            buffer.clear()

    def complete() -> None:
        """Compute U for the current prefix and stream its completion."""
        charge()
        started = perf_counter()
        allowed = all_labels
        if allows_table is not None:
            for choice in product(*(mins[candidate] for candidate in prefix)):
                allowed &= allows_table.allowed_last(choice)
                stats.matching_calls += 1
                if not allowed:
                    break
        else:
            for choice in product(*(mins[candidate] for candidate in prefix)):
                base = [meaning_masks[i] for i in choice]
                still_allowed = 0
                remaining = allowed
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    stats.matching_calls += 1
                    if membership.allows(  # relint: allow[unbatched-matching]
                        base + [meaning_masks[low.bit_length() - 1]]
                    ):
                        still_allowed |= low
                allowed = still_allowed
                if not allowed:
                    break
        stats.matching_s += perf_counter() - started
        if not allowed:
            return
        completion = 0
        remaining = allowed
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            completion |= up[low.bit_length() - 1]
        buffer.append(tuple(sorted([*prefix, completion], key=sort_key)))
        if len(buffer) >= stream_chunk:
            flush()

    def extend(start: int) -> None:
        if len(prefix) == delta - 1:
            complete()
            return
        for index in range(start, len(candidates)):
            charge()
            prefix.append(candidates[index])
            if extendable(tuple(prefix)):
                extend(index)
            prefix.pop()

    extend(0)
    flush()


class _MaskFrontier:
    """Scalar streaming domination frontier (the big-int twin of
    :class:`repro.core.vectorkernel.VectorFrontier`).

    Maintains the maximal antichain of the configurations inserted so far
    under componentwise set containment.  Mutual domination implies
    equality, so the surviving *set* is the unique maximal antichain of the
    stream -- independent of insertion order and chunking, which is what
    makes the streaming full step byte-identical to the historic collect-
    then-filter pass.  A strict dominator always has strictly more total
    bits, so only entries with a strictly larger total are dominator
    candidates (and only strictly smaller totals can be evicted), with the
    union-superset and sorted-popcount-profile prefilters skipping almost
    every exact matching test.

    ``max_live`` caps the *live* frontier: the error fires only when the
    undominated set itself -- and with it the derived problem's node
    constraint -- would exceed the cap, never on the raw completion count.
    """

    def __init__(self, max_live: int):
        self._max_live = max_live
        self._entries: dict[
            tuple[int, ...], tuple[int, tuple[int, ...], int]
        ] = {}
        self.peak = 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, config: tuple[int, ...]) -> None:
        entries = self._entries
        if config in entries:
            return
        union = 0
        for component in config:
            union |= component
        popcounts = tuple(
            sorted((component.bit_count() for component in config), reverse=True)
        )
        total = sum(popcounts)
        victims: list[tuple[int, ...]] = []
        for kept_config, (kept_total, kept_pops, kept_union) in entries.items():
            if kept_total > total:
                if union & ~kept_union:
                    continue
                if any(p > q for p, q in zip(popcounts, kept_pops)):
                    continue
                if _config_dominates(kept_config, config):
                    # A frontier member dominating the newcomer excludes any
                    # frontier member dominated by it (the frontier is an
                    # antichain and domination is transitive), so no evictions
                    # can have been collected; drop the newcomer.
                    return
            elif kept_total < total:
                if kept_union & ~union:
                    continue
                if any(q > p for p, q in zip(popcounts, kept_pops)):
                    continue
                if _config_dominates(config, kept_config):
                    victims.append(kept_config)
        for victim in victims:
            del entries[victim]
        entries[config] = (total, popcounts, union)
        if len(entries) > self.peak:
            self.peak = len(entries)
        if len(entries) > self._max_live:
            raise EngineLimitError(
                f"streaming full step holds more than {self._max_live} "
                f"undominated candidate configurations",
                limit_name="max_live_configs",
                limit=self._max_live,
                observed=self._max_live + 1,
            )

    def insert_chunk(self, configs: Sequence[tuple[int, ...]]) -> None:
        for config in configs:
            self.insert(config)

    def survivors(self) -> list[tuple[int, ...]]:
        return sorted(self._entries)


def _config_dominates(big: tuple[int, ...], small: tuple[int, ...]) -> bool:
    """``big`` dominates ``small``: some bijection pairs every component of
    ``small`` with a distinct superset component of ``big`` -- a perfect-
    matching test over position masks."""
    position_masks = []
    for component in small:
        allowed = 0
        for position, candidate in enumerate(big):
            if component & ~candidate == 0:
                allowed |= 1 << position
        if not allowed:
            return False
        position_masks.append(allowed)
    return mask_matching_exists(position_masks)


def _discard_dominated(configs: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Keep only configurations maximal under componentwise set containment.

    ``A`` dominates ``B`` iff some bijection pairs every component of ``B``
    with a distinct superset component of ``A`` -- a perfect-matching test
    over position masks.  Mutual domination implies equality, so the
    survivors are an antichain.

    A strict dominator always has strictly more total bits (a componentwise
    bijection onto supersets with equal totals forces equality), and
    domination is transitive, so processing configurations in decreasing
    total-popcount order and testing only against the already-kept maximal
    ones is exact while skipping almost all of the quadratic pair grid.

    The streaming full step maintains the same antichain incrementally
    (:class:`_MaskFrontier` / :class:`~repro.core.vectorkernel.
    VectorFrontier`); this one-shot filter remains as the order-insensitive
    reference the frontier equivalence tests check against.
    """
    dominates = _config_dominates
    annotated = []
    for config in configs:
        union = 0
        for component in config:
            union |= component
        popcounts = tuple(
            sorted((component.bit_count() for component in config), reverse=True)
        )
        annotated.append((sum(popcounts), popcounts, union, config))
    annotated.sort(key=lambda entry: -entry[0])

    kept: list[tuple[int, tuple[int, ...], int, tuple[int, ...]]] = []
    survivors: list[tuple[int, ...]] = []
    for total, popcounts, union, config in annotated:
        dominated = False
        for kept_total, kept_pops, kept_union, kept_config in kept:
            if kept_total == total:
                continue  # equal totals cannot strictly dominate
            if union & ~kept_union:
                continue
            if any(p > kp for p, kp in zip(popcounts, kept_pops)):
                continue
            if dominates(kept_config, config):
                dominated = True
                break
        if not dominated:
            kept.append((total, popcounts, union, config))
            survivors.append(config)
    return survivors
