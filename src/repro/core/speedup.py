"""The automatic speedup: derive ``Pi_{1/2}`` and ``Pi_1`` from ``Pi``.

This module implements the paper's Section 4.1 (the derivation behind
Theorem 1) and Section 4.2 (the maximality simplification, Theorem 2).

The derivation has two dual steps.

**Half step** ``Pi -> Pi_{1/2}``: output labels become *sets* of original
labels; the edge constraint becomes universal (Property 1: every pair of
choices must be allowed) and the node constraint becomes existential
(Property 2: some choice per set must form an allowed configuration).
Under the maximality simplification (Property 5), the usable labels are
exactly the Galois-*closed* sets ``Y = comp(comp(Y))`` and the edge
constraint collapses to the pairs ``{Y, comp(Y)}`` -- this is what
:mod:`repro.core.galois` computes.

**Full step** ``Pi_{1/2} -> Pi_1``: labels become sets of half-step labels;
now the edge constraint is existential (Property 3) and the node constraint
universal (Property 4), maximised under Property 6.  Because the half-step
node constraint is monotone in the subset order on half-labels, every
maximal node configuration of ``Pi_1`` uses only *upward-closed* sets
(filters) of the half-label poset, and the universal check only needs each
filter's minimal elements.  Filters are enumerated as antichains
(:mod:`repro.utils.orders`), which keeps the derived description small --
the same representation trick the Round Eliminator uses.

Both the simplified (Theorem 2) and the literal unsimplified (Theorem 1)
derivations are provided; the latter blows up quickly and is intended for
the small instances used by the executable Theorem 1 experiments.
"""

from __future__ import annotations

import string
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import chain, combinations, product

from repro.core.galois import Compatibility
from repro.core.problem import Label, NodeConfig, Problem, edge_config, node_config
from repro.utils.matching import maximum_bipartite_matching, perfect_matching_exists
from repro.utils.multiset import multisets_of_size
from repro.utils.orders import filters as poset_filters
from repro.utils.orders import minimal_elements


class EngineLimitError(RuntimeError):
    """Raised when a derivation would exceed the configured size limits.

    Attributes
    ----------
    limit_name:
        Which configured limit tripped: ``"max_derived_labels"`` or
        ``"max_candidate_configs"`` (both are :class:`repro.engine.EngineConfig`
        knobs).
    limit:
        The configured value of that limit.
    observed:
        The count the derivation hit (or predicted) when it gave up; always
        greater than ``limit``.
    """

    def __init__(
        self,
        message: str,
        *,
        limit_name: str | None = None,
        limit: int | None = None,
        observed: int | None = None,
    ):
        super().__init__(message)
        self.limit_name = limit_name
        self.limit = limit
        self.observed = observed


# Default caps keeping accidental exponential blow-ups debuggable instead of
# hanging the interpreter.  The unsimplified path hits these first.  They are
# the defaults of :class:`repro.engine.EngineConfig`; the derivation functions
# below accept per-call overrides so an :class:`repro.engine.Engine` can be
# configured without touching module state.
MAX_DERIVED_LABELS = 100_000
MAX_CANDIDATE_CONFIGS = 8_000_000


def set_label_name(members: Iterable[Label]) -> Label:
    """Canonical display name for a set-valued label: ``{a,b,c}``."""
    return "{" + ",".join(sorted(members)) + "}"


def short_names(count: int) -> list[Label]:
    """Deterministic short label names: A..Z then L26, L27, ..."""
    letters = list(string.ascii_uppercase)
    if count <= len(letters):
        return letters[:count]
    return letters + [f"L{i}" for i in range(len(letters), count)]


@dataclass(frozen=True)
class HalfStepResult:
    """The derived problem ``Pi_{1/2}`` plus the meaning of its labels."""

    original: Problem
    problem: Problem
    meaning: dict[Label, frozenset[Label]]
    simplified: bool

    def polar_name(self, label: Label) -> Label:
        """Name of ``comp(meaning(label))`` -- the partner in a maximal edge pair."""
        comp = Compatibility(self.original)
        return set_label_name(comp.polar(self.meaning[label]))

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "original": self.original.to_dict(),
            "problem": self.problem.to_dict(),
            "meaning": {name: sorted(members) for name, members in sorted(self.meaning.items())},
            "simplified": self.simplified,
        }

    @staticmethod
    def from_dict(data: dict) -> "HalfStepResult":
        return HalfStepResult(
            original=Problem.from_dict(data["original"]),
            problem=Problem.from_dict(data["problem"]),
            meaning={
                name: frozenset(members) for name, members in data["meaning"].items()
            },
            simplified=data["simplified"],
        )


@dataclass(frozen=True)
class SpeedupResult:
    """One full application of the speedup: ``Pi -> Pi_{1/2} -> Pi_1``.

    ``full`` carries short atomic labels (ready for iteration);
    ``full_meaning`` maps each of them to the set of half-step label names it
    stands for, and ``half_meaning`` maps half-step names to sets of original
    labels, so provenance is recoverable across iterations.
    """

    original: Problem
    half: Problem
    half_meaning: dict[Label, frozenset[Label]]
    full: Problem
    full_meaning: dict[Label, frozenset[Label]]
    simplified: bool

    def full_label_as_original_sets(self, label: Label) -> frozenset[frozenset[Label]]:
        """Expand a derived label to its set-of-sets over the original alphabet."""
        return frozenset(
            frozenset(self.half_meaning[half_name])
            for half_name in self.full_meaning[label]
        )

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`).

        This is the payload stored by the engine's on-disk cache and emitted
        by ``python -m repro speedup --json``.
        """
        return {
            "original": self.original.to_dict(),
            "half": self.half.to_dict(),
            "half_meaning": {
                name: sorted(members)
                for name, members in sorted(self.half_meaning.items())
            },
            "full": self.full.to_dict(),
            "full_meaning": {
                name: sorted(members)
                for name, members in sorted(self.full_meaning.items())
            },
            "simplified": self.simplified,
        }

    @staticmethod
    def from_dict(data: dict) -> "SpeedupResult":
        return SpeedupResult(
            original=Problem.from_dict(data["original"]),
            half=Problem.from_dict(data["half"]),
            half_meaning={
                name: frozenset(members)
                for name, members in data["half_meaning"].items()
            },
            full=Problem.from_dict(data["full"]),
            full_meaning={
                name: frozenset(members)
                for name, members in data["full_meaning"].items()
            },
            simplified=data["simplified"],
        )


class _HalfMembership:
    """Memoised membership test for the existential constraint ``h_{1/2}``.

    A tuple of label *sets* ``(Y_1, ..., Y_j)`` (``j <= delta``) is
    *extendable* iff some allowed configuration ``C`` of the original problem
    can assign a distinct position of ``C`` to every slot, with slot ``i``
    receiving a label from ``Y_i``; for ``j == delta`` this is exactly
    membership in ``h_{1/2}`` (Property 2).  Each test is a bipartite
    matching per candidate configuration.
    """

    def __init__(self, problem: Problem):
        self._configs = sorted(problem.node_constraint)
        self._delta = problem.delta
        self._cache: dict[tuple[frozenset[Label], ...], bool] = {}

    def extendable(self, slots: Sequence[frozenset[Label]]) -> bool:
        key = tuple(sorted(slots, key=sorted))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = any(self._partial_realizable(key, config) for config in self._configs)
        self._cache[key] = result
        return result

    def allows(self, slots: Sequence[frozenset[Label]]) -> bool:
        """Full membership: requires exactly ``delta`` slots."""
        if len(slots) != self._delta:
            return False
        return self.extendable(slots)

    @staticmethod
    def _partial_realizable(
        slots: tuple[frozenset[Label], ...], config: NodeConfig
    ) -> bool:
        adjacency = {
            index: [
                position for position, label in enumerate(config) if label in slot
            ]
            for index, slot in enumerate(slots)
        }
        matching = maximum_bipartite_matching(adjacency)
        return len(matching) == len(slots)


def half_step(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> HalfStepResult:
    """Derive ``Pi_{1/2}`` (simplified: ``Pi'_{1/2}``) from ``Pi``.

    With ``simplify=True`` the maximality constraint of Theorem 2
    (Property 5) is applied, so labels are the usable Galois-closed sets and
    the edge constraint pairs each closed set with its polar.  With
    ``simplify=False`` the literal Theorem 1 construction is used: labels are
    all non-empty subsets and the edge constraint contains every universally
    compatible pair.  (The empty set is omitted: the existential node
    constraint can never use it, so it is unusable by definition.)
    """
    comp = Compatibility(problem)
    if simplify:
        half_sets = sorted(comp.usable_closed_sets(), key=sorted)
    else:
        base = sorted(problem.labels)
        # The raw construction materialises all subsets AND a quadratic edge
        # relation over them; guard both.
        if 2 ** len(base) > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified half step over {len(base)} labels materialises "
                f"{2 ** len(base)} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2 ** len(base),
            )
        if 4 ** len(base) > max_candidate_configs:
            raise EngineLimitError(
                f"unsimplified half step over {len(base)} labels materialises "
                f"a {4 ** len(base)}-pair edge relation",
                limit_name="max_candidate_configs",
                limit=max_candidate_configs,
                observed=4 ** len(base),
            )
        half_sets = [
            frozenset(subset)
            for size in range(1, len(base) + 1)
            for subset in combinations(base, size)
        ]

    names = {subset: set_label_name(subset) for subset in half_sets}
    meaning = {name: subset for subset, name in names.items()}

    if simplify:
        edge_configs = {
            edge_config(names[subset], set_label_name(comp.polar(subset)))
            for subset in half_sets
        }
    else:
        edge_configs = set()
        for first in half_sets:
            polar_of_first = comp.polar(first)
            for second in half_sets:
                if second <= polar_of_first:
                    edge_configs.add(edge_config(names[first], names[second]))

    membership = _HalfMembership(problem)
    ordered_names = sorted(meaning)
    candidate_count = _multiset_count(len(ordered_names), problem.delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"half step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )
    node_configs = [
        config
        for config in multisets_of_size(ordered_names, problem.delta)
        if membership.allows([meaning[name] for name in config])
    ]

    derived = Problem(
        name=f"{problem.name}|half" + ("" if simplify else "|raw"),
        delta=problem.delta,
        labels=frozenset(meaning),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(node_configs),
    ).compressed()
    kept_meaning = {name: meaning[name] for name in derived.labels}
    return HalfStepResult(
        original=problem, problem=derived, meaning=kept_meaning, simplified=simplify
    )


def full_step(
    half: HalfStepResult,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> SpeedupResult:
    """Derive ``Pi_1`` (simplified: ``Pi'_1``) from a half-step result.

    The returned :class:`SpeedupResult` carries the derived problem twice:
    structured (labels are ``{...}`` set names over half labels -- stored in
    ``full_meaning``) and renamed to short atomic labels (``full``), which is
    what iteration consumes.
    """
    half_problem = half.problem
    meaning = half.meaning
    membership = _HalfMembership(half.original)

    def leq(a: Label, b: Label) -> bool:
        return meaning[a] <= meaning[b]

    half_names = sorted(half_problem.labels)
    if simplify:
        collected: list[frozenset[Label]] = []
        for candidate in poset_filters(half_names, leq):
            collected.append(candidate)
            if len(collected) > max_derived_labels:
                raise EngineLimitError(
                    f"full step over {len(half_names)} half labels produces "
                    f"more than {max_derived_labels} filters",
                    limit_name="max_derived_labels",
                    limit=max_derived_labels,
                    observed=len(collected),
                )
        candidate_sets = sorted(collected, key=sorted)
    else:
        if 2 ** len(half_names) > max_derived_labels:
            raise EngineLimitError(
                f"unsimplified full step over {len(half_names)} labels "
                f"materialises {2 ** len(half_names)} subset labels",
                limit_name="max_derived_labels",
                limit=max_derived_labels,
                observed=2 ** len(half_names),
            )
        candidate_sets = [
            frozenset(subset)
            for size in range(1, len(half_names) + 1)
            for subset in combinations(half_names, size)
        ]

    # The universal node check (Property 4) only needs the minimal elements of
    # each candidate set: h_{1/2} is monotone under the half-label order.
    mins = {
        candidate: tuple(sorted(minimal_elements(candidate, leq)))
        for candidate in candidate_sets
    }

    universal_cache: dict[tuple[frozenset[Label], ...], bool] = {}

    def universal(config_sets: tuple[frozenset[Label], ...]) -> bool:
        key = tuple(sorted(config_sets, key=sorted))
        cached = universal_cache.get(key)
        if cached is not None:
            return cached
        result = all(
            membership.allows([meaning[name] for name in choice])
            for choice in product(*(mins[candidate] for candidate in key))
        )
        universal_cache[key] = result
        return result

    def extendable(config_sets: tuple[frozenset[Label], ...]) -> bool:
        """Prune: every min-choice of a partial configuration must extend."""
        return all(
            membership.extendable([meaning[name] for name in choice])
            for choice in product(*(mins[candidate] for candidate in config_sets))
        )

    delta = half_problem.delta
    candidate_count = _multiset_count(len(candidate_sets), delta)
    if candidate_count > max_candidate_configs:
        raise EngineLimitError(
            f"full step would enumerate {candidate_count} node configurations",
            limit_name="max_candidate_configs",
            limit=max_candidate_configs,
            observed=candidate_count,
        )

    allowed_configs = _enumerate_universal_configs(
        candidate_sets, delta, universal, extendable
    )
    if simplify:
        allowed_configs = _discard_dominated(allowed_configs)

    # Edge constraint (Property 3, existential).  Simplified: {W, X} allowed
    # iff some Y in W has its polar partner in X.  Unsimplified: some pair
    # (Y, Z) with Z a subset of comp(Y).
    comp = Compatibility(half.original)
    polar_name = {
        name: set_label_name(comp.polar(meaning[name])) for name in half_names
    }
    used_sets = sorted({s for config in allowed_configs for s in config}, key=sorted)
    set_names = {candidate: set_label_name(candidate) for candidate in used_sets}

    edge_configs = set()
    for first in used_sets:
        for second in used_sets:
            if simplify:
                allowed = any(polar_name[y] in second for y in first)
            else:
                allowed = any(
                    meaning[z] <= comp.polar(meaning[y])
                    for y in first
                    for z in second
                )
            if allowed:
                edge_configs.add(edge_config(set_names[first], set_names[second]))

    structured = Problem(
        name=f"{half.original.name}|full" + ("" if simplify else "|raw"),
        delta=delta,
        labels=frozenset(set_names.values()),
        edge_constraint=frozenset(edge_configs),
        node_constraint=frozenset(
            node_config(set_names[s] for s in config) for config in allowed_configs
        ),
    ).compressed()

    # Rename to short atomic labels for iteration; keep provenance.
    ordered = sorted(structured.labels)
    rename = dict(zip(ordered, short_names(len(ordered))))
    renamed = structured.renamed(rename, name=f"{half.original.name}+1")
    name_of_set = {v: k for k, v in set_names.items()}
    full_meaning = {
        rename[structured_name]: frozenset(name_of_set[structured_name])
        for structured_name in ordered
    }
    return SpeedupResult(
        original=half.original,
        half=half_problem,
        half_meaning=dict(half.meaning),
        full=renamed,
        full_meaning=full_meaning,
        simplified=simplify and half.simplified,
    )


def compute_speedup(
    problem: Problem,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
) -> SpeedupResult:
    """The raw (uncached) derivation ``Pi -> Pi_{1/2} -> Pi_1``.

    This is the computational core behind :func:`speedup` and
    :meth:`repro.engine.Engine.speedup`; it never consults a cache.
    """
    half = half_step(
        problem,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
    )
    return full_step(
        half,
        simplify=simplify,
        max_derived_labels=max_derived_labels,
        max_candidate_configs=max_candidate_configs,
    )


def speedup(problem: Problem, simplify: bool = True) -> SpeedupResult:
    """Apply one full speedup step: ``Pi -> Pi_1`` (Theorem 1 / Theorem 2).

    The derived problem is exactly one round easier than ``Pi`` on
    t-independent graph classes of girth at least ``2t + 2`` (with edge
    orientations available when ``simplify=True``, per Theorem 2).

    Compatibility shim: delegates to the process-wide default
    :class:`repro.engine.Engine`, so repeated derivations of the same (or a
    label-renamed) problem hit the content-addressed cache.  Use an explicit
    engine for custom limits or cache policy.
    """
    from repro.engine import get_default_engine

    return get_default_engine().speedup(problem, simplify=simplify)


def iterate_speedup(
    problem: Problem, steps: int, simplify: bool = True
) -> list[SpeedupResult]:
    """Apply the speedup ``steps`` times, returning every intermediate result.

    Compatibility shim over :meth:`repro.engine.Engine.iterate_speedup`.
    """
    from repro.engine import get_default_engine

    return get_default_engine().iterate_speedup(problem, steps, simplify=simplify)


# -- internal helpers -------------------------------------------------------


def _multiset_count(universe: int, size: int) -> int:
    """Number of multisets of ``size`` elements over ``universe`` symbols."""
    from math import comb

    return comb(universe + size - 1, size)


def _enumerate_universal_configs(
    candidates: Sequence[frozenset[Label]],
    delta: int,
    universal,
    extendable,
) -> list[tuple[frozenset[Label], ...]]:
    """DFS over non-decreasing candidate indices with extendability pruning."""
    results: list[tuple[frozenset[Label], ...]] = []

    def extend(start: int, chosen: list[frozenset[Label]]) -> None:
        if len(chosen) == delta:
            config = tuple(chosen)
            if universal(config):
                results.append(tuple(sorted(config, key=sorted)))
            return
        for index in range(start, len(candidates)):
            chosen.append(candidates[index])
            if extendable(tuple(chosen)):
                extend(index, chosen)
            chosen.pop()

    extend(0, [])
    # Deduplicate (sorting may collapse distinct orders of equal multisets).
    unique = sorted(set(results), key=lambda cfg: [sorted(s) for s in cfg])
    return unique


def _discard_dominated(
    configs: list[tuple[frozenset[Label], ...]],
) -> list[tuple[frozenset[Label], ...]]:
    """Keep only configurations maximal under componentwise set containment.

    ``A`` dominates ``B`` iff some bijection pairs every component of ``B``
    with a distinct superset component of ``A`` -- a perfect-matching test.
    Mutual domination implies equality, so the survivors are an antichain.
    """

    def dominates(a: tuple[frozenset[Label], ...], b: tuple[frozenset[Label], ...]) -> bool:
        adjacency = {
            index: [j for j, big in enumerate(a) if small <= big]
            for index, small in enumerate(b)
        }
        return perfect_matching_exists(adjacency)

    kept: list[tuple[frozenset[Label], ...]] = []
    for config in configs:
        if any(other != config and dominates(other, config) for other in configs):
            continue
        kept.append(config)
    return kept
