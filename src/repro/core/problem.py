"""The paper's notion of a locally checkable problem, instantiated at fixed degree.

Section 3 of the paper defines a problem as a tuple ``(O, f, g, h)``:

* ``O`` -- a set of output labels,
* ``f(delta)`` -- the finite subset of ``O`` usable at maximum degree delta,
* ``g(delta)`` -- the allowed *edge configurations*: 2-element multisets of
  labels, one label per endpoint of the edge,
* ``h(delta)`` -- the allowed *node configurations*: multisets of at most
  delta labels, one label per incident edge (per port).

A :class:`Problem` is the instantiation at one fixed ``delta``: a finite label
set, a set of 2-multisets (edge constraint) and a set of ``delta``-multisets
(node constraint).  Multisets are canonical sorted tuples of label strings
(see :mod:`repro.utils.multiset`).

Degree-indexed families -- the paper's actual ``(O, f, g, h)`` -- live in
:mod:`repro.core.family`; everything the speedup engine does happens at a
fixed delta, exactly as in Theorem 1, which speaks about graph classes
``G_{n, delta}``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any
from functools import cached_property

from repro.utils.multiset import multiset

Label = str
EdgeConfig = tuple[Label, Label]
NodeConfig = tuple[Label, ...]


def edge_config(a: Label, b: Label) -> EdgeConfig:
    """Return the canonical (sorted) 2-multiset for an edge configuration."""
    return (a, b) if a <= b else (b, a)


def node_config(labels: Iterable[Label]) -> NodeConfig:
    """Return the canonical (sorted) multiset for a node configuration."""
    return multiset(labels)


class ProblemError(ValueError):
    """Raised when a problem description is malformed."""


@dataclass(frozen=True)
class Problem:
    """A locally checkable problem at a fixed maximum degree.

    Attributes
    ----------
    name:
        Human-readable identifier, carried through derivations.
    delta:
        The degree parameter; node configurations have exactly ``delta``
        entries.  (The paper allows "at most delta"; on the regular graph
        classes all lower bounds are proved for, configurations have exactly
        delta entries, and sub-delta nodes can be modelled by adding an
        explicit pad label, so we fix the arity.)
    labels:
        The finite output alphabet ``f(delta)``.
    edge_constraint:
        The allowed 2-multisets ``g(delta)``, canonical sorted pairs.
    node_constraint:
        The allowed ``delta``-multisets ``h(delta)``, canonical sorted tuples.
    """

    name: str
    delta: int
    labels: frozenset[Label]
    edge_constraint: frozenset[EdgeConfig]
    node_constraint: frozenset[NodeConfig]

    def __post_init__(self) -> None:
        # Validation runs on every construction, including the full step's
        # derived problems whose edge constraints reach hundreds of thousands
        # of pairs, so the checks below are written allocation-free (direct
        # comparisons instead of ``tuple(sorted(...))`` / ``set(...)``
        # round-trips) while raising the exact same errors.
        if self.delta < 1:
            raise ProblemError("delta must be at least 1")
        labels = self.labels
        for pair in self.edge_constraint:
            if len(pair) != 2:
                raise ProblemError(f"edge configuration {pair!r} is not a pair")
            first, second = pair
            if second < first:
                raise ProblemError(f"edge configuration {pair!r} is not canonical")
            if first not in labels or second not in labels:
                raise ProblemError(f"edge configuration {pair!r} uses unknown labels")
        delta = self.delta
        for config in self.node_constraint:
            if len(config) != delta:
                raise ProblemError(
                    f"node configuration {config!r} does not have {self.delta} entries"
                )
            for index in range(len(config) - 1):
                if config[index + 1] < config[index]:
                    raise ProblemError(f"node configuration {config!r} is not canonical")
            for label in config:
                if label not in labels:
                    raise ProblemError(
                        f"node configuration {config!r} uses unknown labels"
                    )

    # -- construction helpers ---------------------------------------------

    @classmethod
    def _from_canonical(
        cls,
        name: str,
        delta: int,
        labels: frozenset[Label],
        edge_constraint: frozenset[EdgeConfig],
        node_constraint: frozenset[NodeConfig],
    ) -> "Problem":
        """Trusted constructor that skips ``__post_init__`` validation.

        For internal callers whose constraints are canonical by construction
        -- the full step's direct materialisation emits sorted pairs and
        tuples over its own freshly minted alphabet, and re-checking hundreds
        of thousands of pairs would dominate the derivation.  Mirrors the
        pickle path (:meth:`__setstate__`), which likewise restores fields
        without re-validation.  All other construction goes through
        ``Problem(...)`` or :meth:`make`.
        """
        problem = object.__new__(cls)
        object.__setattr__(problem, "name", name)
        object.__setattr__(problem, "delta", delta)
        object.__setattr__(problem, "labels", labels)
        object.__setattr__(problem, "edge_constraint", edge_constraint)
        object.__setattr__(problem, "node_constraint", node_constraint)
        return problem

    @staticmethod
    def make(
        name: str,
        delta: int,
        edge_configs: Iterable[Iterable[Label]],
        node_configs: Iterable[Iterable[Label]],
        labels: Iterable[Label] | None = None,
    ) -> "Problem":
        """Build a problem, canonicalising configurations.

        If ``labels`` is omitted, the alphabet is inferred as the union of
        labels mentioned by the constraints.
        """
        edges = frozenset(edge_config(*sorted(pair)) for pair in map(list, edge_configs))
        nodes = frozenset(node_config(config) for config in node_configs)
        if labels is None:
            inferred: set[Label] = set()
            for pair in edges:
                inferred.update(pair)
            for config in nodes:
                inferred.update(config)
            label_set = frozenset(inferred)
        else:
            label_set = frozenset(labels)
        return Problem(
            name=name,
            delta=delta,
            labels=label_set,
            edge_constraint=edges,
            node_constraint=nodes,
        )

    # -- queries ------------------------------------------------------------

    def allows_edge(self, a: Label, b: Label) -> bool:
        """Return True iff the multiset {a, b} is an allowed edge configuration."""
        return edge_config(a, b) in self.edge_constraint

    def allows_node(self, labels: Iterable[Label]) -> bool:
        """Return True iff the multiset of ``labels`` is an allowed node configuration."""
        return node_config(labels) in self.node_constraint

    @cached_property
    def usable_labels(self) -> frozenset[Label]:
        """Labels that occur in both some edge and some node configuration.

        Only these can appear in a correct solution (the paper's compression
        remark in Section 4.2).
        """
        in_edges = {label for pair in self.edge_constraint for label in pair}
        in_nodes = {label for config in self.node_constraint for label in config}
        return frozenset(in_edges & in_nodes)

    @cached_property
    def is_empty(self) -> bool:
        """True iff no output can ever be valid (no node or edge configuration)."""
        return not self.node_constraint or not self.edge_constraint

    # -- transformations ------------------------------------------------------

    def compressed(self, name: str | None = None) -> "Problem":
        """Drop labels that cannot occur in any correct solution.

        Removing a label invalidates configurations that mention it, which can
        make further labels unusable, so the pruning iterates to a fixpoint.
        The resulting problem has the same solutions as the original.
        """
        labels = set(self.labels)
        edges = set(self.edge_constraint)
        nodes = set(self.node_constraint)
        while True:
            in_edges = {label for pair in edges for label in pair}
            in_nodes = {label for config in nodes for label in config}
            usable = in_edges & in_nodes
            if usable == labels:
                break
            labels = usable
            edges = {pair for pair in edges if set(pair) <= usable}
            nodes = {config for config in nodes if set(config) <= usable}
        return Problem(
            name=name if name is not None else self.name,
            delta=self.delta,
            labels=frozenset(labels),
            edge_constraint=frozenset(edges),
            node_constraint=frozenset(nodes),
        )

    def renamed(
        self, mapping: Mapping[Label, Label], name: str | None = None
    ) -> "Problem":
        """Apply an injective label renaming.

        Raises :class:`ProblemError` if ``mapping`` is not injective on the
        problem's labels or does not cover all of them.
        """
        missing = self.labels - set(mapping)
        if missing:
            raise ProblemError(f"renaming does not cover labels {sorted(missing)}")
        images = [mapping[label] for label in self.labels]
        if len(set(images)) != len(images):
            raise ProblemError("renaming is not injective")
        return Problem(
            name=name if name is not None else self.name,
            delta=self.delta,
            labels=frozenset(images),
            edge_constraint=frozenset(
                edge_config(mapping[a], mapping[b]) for a, b in self.edge_constraint
            ),
            node_constraint=frozenset(
                node_config(mapping[label] for label in config)
                for config in self.node_constraint
            ),
        )

    def restricted(self, keep: Iterable[Label], name: str | None = None) -> "Problem":
        """Return the sub-problem using only the labels in ``keep``.

        This is the *hardening* direction from Section 2.1 (dual of
        relaxation): a solution of the restricted problem is a solution of the
        original, so the restriction is at least as hard.
        """
        keep_set = frozenset(keep)
        unknown = keep_set - self.labels
        if unknown:
            raise ProblemError(f"cannot restrict to unknown labels {sorted(unknown)}")
        return Problem(
            name=name if name is not None else f"{self.name}|restricted",
            delta=self.delta,
            labels=keep_set,
            edge_constraint=frozenset(
                pair for pair in self.edge_constraint if set(pair) <= keep_set
            ),
            node_constraint=frozenset(
                config for config in self.node_constraint if set(config) <= keep_set
            ),
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready description of the problem (inverse of :meth:`from_dict`).

        This is the wire format used by the engine's on-disk cache and the
        ``python -m repro`` CLI: plain lists, deterministically sorted, so the
        output is stable across runs and diff-friendly.
        """
        return {
            "name": self.name,
            "delta": self.delta,
            "labels": sorted(self.labels),
            "edge_constraint": [list(pair) for pair in sorted(self.edge_constraint)],
            "node_constraint": [list(cfg) for cfg in sorted(self.node_constraint)],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Problem":
        """Rebuild a problem from :meth:`to_dict` output.

        Raises :class:`ProblemError` on missing keys or malformed payloads.
        """
        try:
            name = data["name"]
            delta = data["delta"]
            labels = data["labels"]
            edges = data["edge_constraint"]
            nodes = data["node_constraint"]
        except (KeyError, TypeError) as exc:
            raise ProblemError(f"problem payload is missing key {exc}") from exc
        if not isinstance(name, str) or not isinstance(delta, int):
            raise ProblemError("problem payload has malformed 'name' or 'delta'")
        try:
            return Problem.make(
                name=name,
                delta=delta,
                edge_configs=edges,
                node_configs=nodes,
                labels=labels,
            )
        except ProblemError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProblemError(f"malformed problem payload: {exc}") from exc

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        """Pickle only the declared fields.

        ``__dict__`` accumulates derived state -- ``cached_property`` values
        and the interned bitmask view attached by
        :func:`repro.core.alphabet.intern` -- that can dwarf the description
        itself on large derived problems.  Process-pool transfers (ROADMAP
        item (a)) must ship the five fields and let the receiver re-derive.
        """
        from dataclasses import fields

        return {field.name: getattr(self, field.name) for field in fields(self)}

    def __setstate__(self, state: dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    # -- presentation ---------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable description of the problem."""
        lines = [f"problem {self.name} (delta={self.delta})"]
        lines.append("labels: " + " ".join(sorted(self.labels)))
        lines.append("node configurations:")
        for config in sorted(self.node_constraint):
            lines.append("  " + " ".join(config))
        lines.append("edge configurations:")
        for pair in sorted(self.edge_constraint):
            lines.append("  " + " ".join(pair))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Problem({self.name!r}, delta={self.delta}, "
            f"|labels|={len(self.labels)}, |edge|={len(self.edge_constraint)}, "
            f"|node|={len(self.node_constraint)})"
        )

    # -- metrics ---------------------------------------------------------------

    @cached_property
    def description_size(self) -> int:
        """A size measure of the problem description (for growth experiments).

        Counts every label occurrence in every configuration plus the
        alphabet size; this is the quantity whose per-step explosion motivates
        the paper's relaxation technique (Section 2.1).
        """
        return (
            len(self.labels)
            + sum(2 for _ in self.edge_constraint)
            + sum(self.delta for _ in self.node_constraint)
        )
