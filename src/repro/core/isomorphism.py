"""Problem isomorphism: label bijections preserving both constraints.

Round elimination produces problems whose labels are freshly generated, so
recognising that a derived problem *is* a known problem (for example that the
half-step of sinkless coloring is sinkless orientation, Section 4.4, or that
``Pi_1`` of sinkless coloring is sinkless coloring again -- the fixed point
behind the Omega(log n) bound) requires isomorphism testing.  Label counts in
this library stay small, so a signature-pruned backtracking search is exact
and fast.
"""

from __future__ import annotations

from collections import Counter

from repro.core.problem import Label, Problem, edge_config, node_config


def _label_signature(problem: Problem, label: Label) -> tuple:
    """An isomorphism-invariant fingerprint of a label.

    Combines how often the label appears in edge configurations (split by
    whether the partner equals the label), and the multiset of
    (multiplicity-in-configuration) counts over node configurations.
    """
    self_pairs = sum(1 for pair in problem.edge_constraint if pair == (label, label))
    other_pairs = sum(
        1 for pair in problem.edge_constraint if label in pair and pair[0] != pair[1]
    )
    node_profile = Counter(
        config.count(label) for config in problem.node_constraint if label in config
    )
    return (self_pairs, other_pairs, tuple(sorted(node_profile.items())))


def find_isomorphism(first: Problem, second: Problem) -> dict[Label, Label] | None:
    """Return a label bijection mapping ``first`` onto ``second``, or None.

    The bijection must map the edge constraint of ``first`` exactly onto that
    of ``second`` and likewise for the node constraint.  Labels unused by any
    configuration still participate (they must map to similarly-unused
    labels), so problems differing only in dead labels are not isomorphic;
    call :meth:`Problem.compressed` first if that distinction is unwanted.
    """
    if first.delta != second.delta:
        return None
    if len(first.labels) != len(second.labels):
        return None
    if len(first.edge_constraint) != len(second.edge_constraint):
        return None
    if len(first.node_constraint) != len(second.node_constraint):
        return None

    first_sig = {label: _label_signature(first, label) for label in first.labels}
    second_sig = {label: _label_signature(second, label) for label in second.labels}
    if sorted(first_sig.values()) != sorted(second_sig.values()):
        return None

    candidates = {
        label: sorted(
            other for other in second.labels if second_sig[other] == first_sig[label]
        )
        for label in first.labels
    }
    # Assign most-constrained labels first.
    order = sorted(first.labels, key=lambda lbl: (len(candidates[lbl]), lbl))
    mapping: dict[Label, Label] = {}
    used: set[Label] = set()

    def consistent_so_far(new_label: Label) -> bool:
        """Check constraints among already-mapped labels involving ``new_label``."""
        for pair in first.edge_constraint:
            if new_label in pair and all(lbl in mapping for lbl in pair):
                image = edge_config(mapping[pair[0]], mapping[pair[1]])
                if image not in second.edge_constraint:
                    return False
        for config in first.node_constraint:
            if new_label in config and all(lbl in mapping for lbl in config):
                image = node_config(mapping[lbl] for lbl in config)
                if image not in second.node_constraint:
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(order):
            return _is_exact_mapping(first, second, mapping)
        label = order[index]
        for candidate in candidates[label]:
            if candidate in used:
                continue
            mapping[label] = candidate
            used.add(candidate)
            if consistent_so_far(label) and backtrack(index + 1):
                return True
            del mapping[label]
            used.discard(candidate)
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def _is_exact_mapping(
    first: Problem, second: Problem, mapping: dict[Label, Label]
) -> bool:
    """Verify the mapping sends constraints of ``first`` exactly onto ``second``'s."""
    mapped_edges = {
        edge_config(mapping[a], mapping[b]) for a, b in first.edge_constraint
    }
    if mapped_edges != second.edge_constraint:
        return False
    mapped_nodes = {
        node_config(mapping[lbl] for lbl in config)
        for config in first.node_constraint
    }
    return mapped_nodes == second.node_constraint


def are_isomorphic(first: Problem, second: Problem) -> bool:
    """Return True iff a constraint-preserving label bijection exists."""
    return find_isomorphism(first, second) is not None
