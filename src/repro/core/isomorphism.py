"""Problem isomorphism: label bijections preserving both constraints.

Round elimination produces problems whose labels are freshly generated, so
recognising that a derived problem *is* a known problem (for example that the
half-step of sinkless coloring is sinkless orientation, Section 4.4, or that
``Pi_1`` of sinkless coloring is sinkless coloring again -- the fixed point
behind the Omega(log n) bound) requires isomorphism testing.  Label counts in
this library stay small, so a signature-pruned backtracking search is exact
and fast.

The search runs over the interned index view (:mod:`repro.core.alphabet`):
candidates are index arrays, partial-consistency checks walk precomputed
per-label incidence lists (only the constraints touching the newly assigned
label, instead of rescanning everything), and configuration membership tests
are set lookups on index tuples.
"""

from __future__ import annotations

from collections import Counter

from repro.core.alphabet import InternedProblem, intern
from repro.core.problem import Label, Problem


def _index_signatures(interned: InternedProblem) -> list[tuple]:
    """Isomorphism-invariant fingerprints, one per label index.

    Combines how often the label appears in edge configurations (split by
    whether the partner equals the label), and the multiset of
    (multiplicity-in-configuration) counts over node configurations.
    """
    size = interned.alphabet.size
    self_pairs = [0] * size
    other_pairs = [0] * size
    node_profiles: list[Counter] = [Counter() for _ in range(size)]
    for a, b in interned.edge_pairs:
        if a == b:
            self_pairs[a] += 1
        else:
            other_pairs[a] += 1
            other_pairs[b] += 1
    for config in interned.node_configs:
        for label_index, count in Counter(config).items():
            node_profiles[label_index][count] += 1
    return [
        (self_pairs[i], other_pairs[i], tuple(sorted(node_profiles[i].items())))
        for i in range(size)
    ]


def find_isomorphism(first: Problem, second: Problem) -> dict[Label, Label] | None:
    """Return a label bijection mapping ``first`` onto ``second``, or None.

    The bijection must map the edge constraint of ``first`` exactly onto that
    of ``second`` and likewise for the node constraint.  Labels unused by any
    configuration still participate (they must map to similarly-unused
    labels), so problems differing only in dead labels are not isomorphic;
    call :meth:`Problem.compressed` first if that distinction is unwanted.
    """
    if first.delta != second.delta:
        return None
    if len(first.labels) != len(second.labels):
        return None
    if len(first.edge_constraint) != len(second.edge_constraint):
        return None
    if len(first.node_constraint) != len(second.node_constraint):
        return None

    left = intern(first)
    right = intern(second)
    left_sigs = _index_signatures(left)
    right_sigs = _index_signatures(right)
    if sorted(left_sigs) != sorted(right_sigs):
        return None

    size = left.alphabet.size
    candidates = [
        [j for j in range(size) if right_sigs[j] == left_sigs[i]] for i in range(size)
    ]
    # Assign most-constrained labels first (candidate indices ascend in name
    # order, so ties break by name exactly as in the string path).
    order = sorted(range(size), key=lambda i: (len(candidates[i]), left.alphabet.names[i]))

    # Incidence of `first`, used to check only the constraints touching the
    # newly assigned label.
    edges_of: list[list[tuple[int, int]]] = [[] for _ in range(size)]
    for a, b in left.edge_pairs:
        edges_of[a].append((a, b))
        if a != b:
            edges_of[b].append((a, b))
    configs_of: list[list[tuple[int, ...]]] = [[] for _ in range(size)]
    for config in left.node_configs:
        for label_index in set(config):
            configs_of[label_index].append(config)

    unassigned = -1
    mapping = [unassigned] * size
    used = [False] * size
    right_edges = right.edge_pairs
    right_configs = right.node_config_set

    def consistent_so_far(new_index: int) -> bool:
        """Check constraints among already-mapped labels involving ``new_index``."""
        for a, b in edges_of[new_index]:
            ia, ib = mapping[a], mapping[b]
            if ia == unassigned or ib == unassigned:
                continue
            if ((ia, ib) if ia <= ib else (ib, ia)) not in right_edges:
                return False
        for config in configs_of[new_index]:
            image = []
            complete = True
            for label_index in config:
                target = mapping[label_index]
                if target == unassigned:
                    complete = False
                    break
                image.append(target)
            if complete and tuple(sorted(image)) not in right_configs:
                return False
        return True

    def backtrack(position: int) -> bool:
        if position == size:
            return _is_exact_mapping(left, right, mapping)
        i = order[position]
        for candidate in candidates[i]:
            if used[candidate]:
                continue
            mapping[i] = candidate
            used[candidate] = True
            if consistent_so_far(i) and backtrack(position + 1):
                return True
            mapping[i] = unassigned
            used[candidate] = False
        return False

    if backtrack(0):
        left_names = left.alphabet.names
        right_names = right.alphabet.names
        return {left_names[i]: right_names[mapping[i]] for i in range(size)}
    return None


def _is_exact_mapping(
    left: InternedProblem, right: InternedProblem, mapping: list[int]
) -> bool:
    """Verify the mapping sends constraints of ``first`` exactly onto ``second``'s."""
    mapped_edges = set()
    for a, b in left.edge_pairs:
        ia, ib = mapping[a], mapping[b]
        mapped_edges.add((ia, ib) if ia <= ib else (ib, ia))
    if mapped_edges != right.edge_pairs:
        return False
    mapped_nodes = {
        tuple(sorted(mapping[label_index] for label_index in config))
        for config in left.node_configs
    }
    return mapped_nodes == right.node_config_set


def are_isomorphic(first: Problem, second: Problem) -> bool:
    """Return True iff a constraint-preserving label bijection exists."""
    return find_isomorphism(first, second) is not None
