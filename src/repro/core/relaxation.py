"""Relaxations between problems, certified by label maps.

Section 2.1 describes the simplification strategy that makes iterated
round elimination tractable: after each speedup step, replace the derived
problem by a *relaxation* -- a problem provably no harder -- with a much
simpler description.  The basic certified relaxation is a label map: if a
(not necessarily injective) function ``m`` from the labels of ``P`` to the
labels of ``Q`` sends every allowed edge configuration of ``P`` to an
allowed edge configuration of ``Q`` and likewise for node configurations,
then any algorithm solving ``P`` solves ``Q`` in the same time by
post-composing the map; hence ``Q`` is a relaxation of ``P``.

The same machinery run in the opposite direction certifies the *hardening*
used for upper bounds (Section 4.5): restricting the derived problem's labels
yields a problem at least as hard whose solutions still solve the original.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.problem import Label, Problem, edge_config, node_config


@dataclass(frozen=True)
class RelaxationCertificate:
    """A verified witness that ``target`` is a relaxation of ``source``."""

    source_name: str
    target_name: str
    mapping: dict[Label, Label]

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "source_name": self.source_name,
            "target_name": self.target_name,
            "mapping": dict(sorted(self.mapping.items())),
        }

    @staticmethod
    def from_dict(data: dict) -> "RelaxationCertificate":
        return RelaxationCertificate(
            source_name=data["source_name"],
            target_name=data["target_name"],
            mapping=dict(data["mapping"]),
        )

    def describe(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in sorted(self.mapping.items()))
        return (
            f"{self.target_name} relaxes {self.source_name} via {{{pairs}}}"
        )


def is_relaxation_map(
    source: Problem, target: Problem, mapping: Mapping[Label, Label]
) -> bool:
    """Check that ``mapping`` certifies ``target`` as a relaxation of ``source``.

    Every usable label of ``source`` must be mapped; every allowed edge and
    node configuration of ``source`` must map into the corresponding allowed
    set of ``target``.
    """
    if source.delta != target.delta:
        return False
    if not source.usable_labels <= set(mapping):
        return False
    if not set(mapping.values()) <= target.labels:
        return False
    for pair in source.edge_constraint:
        if not set(pair) <= set(mapping):
            continue  # configurations over unusable labels never occur
        if edge_config(mapping[pair[0]], mapping[pair[1]]) not in target.edge_constraint:
            return False
    for config in source.node_constraint:
        if not set(config) <= set(mapping):
            continue
        if node_config(mapping[lbl] for lbl in config) not in target.node_constraint:
            return False
    return True


def certify_relaxation(
    source: Problem, target: Problem, mapping: Mapping[Label, Label]
) -> RelaxationCertificate:
    """Validate ``mapping`` and wrap it in a certificate; raise on failure."""
    if not is_relaxation_map(source, target, mapping):
        raise ValueError(
            f"map does not certify {target.name} as a relaxation of {source.name}"
        )
    return RelaxationCertificate(
        source_name=source.name, target_name=target.name, mapping=dict(mapping)
    )


def find_relaxation_map(
    source: Problem, target: Problem
) -> dict[Label, Label] | None:
    """Search for a certifying label map, or return None.

    Backtracking over assignments of the usable labels of ``source`` (most
    used in constraints first), checking partial configurations eagerly.
    Non-injective maps are allowed -- collapsing labels is the typical way a
    relaxation simplifies a problem.
    """
    if source.delta != target.delta:
        return None
    source_labels = sorted(
        source.usable_labels,
        key=lambda lbl: -sum(config.count(lbl) for config in source.node_constraint),
    )
    target_labels = sorted(target.labels)
    mapping: dict[Label, Label] = {}

    def partial_ok() -> bool:
        for pair in source.edge_constraint:
            if all(lbl in mapping for lbl in pair):
                if (
                    edge_config(mapping[pair[0]], mapping[pair[1]])
                    not in target.edge_constraint
                ):
                    return False
        for config in source.node_constraint:
            if all(lbl in mapping for lbl in config):
                if (
                    node_config(mapping[lbl] for lbl in config)
                    not in target.node_constraint
                ):
                    return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(source_labels):
            return True
        label = source_labels[index]
        for candidate in target_labels:
            mapping[label] = candidate
            if partial_ok() and backtrack(index + 1):
                return True
            del mapping[label]
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def is_harder_restriction(source: Problem, restricted: Problem) -> bool:
    """Check the dual (upper-bound) direction: ``restricted`` embeds in ``source``.

    True iff ``restricted``'s labels are a subset of ``source``'s and its
    constraints are subsets of the corresponding ``source`` constraints; then
    every solution of ``restricted`` is verbatim a solution of ``source``.
    This certifies the Section 4.5 maneuver of making a derived problem
    harder to obtain a clean upper-bound problem.
    """
    return (
        restricted.delta == source.delta
        and restricted.labels <= source.labels
        and restricted.edge_constraint <= source.edge_constraint
        and restricted.node_constraint <= source.node_constraint
    )
