"""Relaxations between problems, certified by label maps.

Section 2.1 describes the simplification strategy that makes iterated
round elimination tractable: after each speedup step, replace the derived
problem by a *relaxation* -- a problem provably no harder -- with a much
simpler description.  The basic certified relaxation is a label map: if a
(not necessarily injective) function ``m`` from the labels of ``P`` to the
labels of ``Q`` sends every allowed edge configuration of ``P`` to an
allowed edge configuration of ``Q`` and likewise for node configurations,
then any algorithm solving ``P`` solves ``Q`` in the same time by
post-composing the map; hence ``Q`` is a relaxation of ``P``.

The same machinery run in the opposite direction certifies the *hardening*
used for upper bounds (Section 4.5): restricting the derived problem's labels
yields a problem at least as hard whose solutions still solve the original.

Both the map checker and the map search run on the interned index view
(:mod:`repro.core.alphabet`): label maps become index arrays, configuration
images are sorted index tuples checked against the target's interned
constraint sets, and the backtracking search validates only the constraints
completed by each new assignment instead of rescanning everything.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.alphabet import Direction, intern
from repro.core.problem import Label, Problem

# The two certified directions: a *relaxation* target is provably no harder
# than its source (the lower-bound chain step); a *hardening* target is
# provably at least as hard (the Section 4.5 upper-bound maneuver).  Typed
# as the closed :data:`repro.core.alphabet.Direction` literal so a stray
# direction string is a type error, not just a runtime ValueError.
RELAXES: Direction = "relaxation"
HARDENS: Direction = "hardening"


@dataclass(frozen=True)
class RelaxationCertificate:
    """A verified witness relating ``target`` to ``source`` by a label map.

    ``direction`` is :data:`RELAXES` (the map sends every allowed source
    configuration into an allowed target configuration, so ``target`` is no
    harder) or :data:`HARDENS` (the map is the inclusion of a restriction,
    so ``target`` is at least as hard and its solutions solve ``source``
    verbatim).  Lower-bound chains only accept :data:`RELAXES` steps;
    hardenings serve the upper-bound direction.
    """

    source_name: str
    target_name: str
    mapping: dict[Label, Label]
    direction: Direction = RELAXES

    def __post_init__(self) -> None:
        if self.direction not in (RELAXES, HARDENS):
            raise ValueError(f"unknown certificate direction {self.direction!r}")

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "source_name": self.source_name,
            "target_name": self.target_name,
            "mapping": dict(sorted(self.mapping.items())),
            "direction": self.direction,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RelaxationCertificate":
        return RelaxationCertificate(
            source_name=data["source_name"],
            target_name=data["target_name"],
            mapping=dict(data["mapping"]),
            # Pre-direction payloads (schema version 1) are all relaxations.
            direction=data.get("direction", RELAXES),
        )

    def describe(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in sorted(self.mapping.items()))
        verb = "relaxes" if self.direction == RELAXES else "hardens"
        return (
            f"{self.target_name} {verb} {self.source_name} via {{{pairs}}}"
        )


_UNMAPPED = -1


def check_index_image(
    image: Sequence[int],
    source_edge_pairs: Collection[tuple[int, int]],
    source_node_configs: Collection[tuple[int, ...]],
    target_edge_pairs: Collection[tuple[int, int]],
    target_node_configs: Collection[tuple[int, ...]],
) -> bool:
    """The mask-level core of the relaxation check: image validity on indices.

    ``image[i]`` is the target index of source label ``i`` (``_UNMAPPED``
    for unmapped labels).  Every source edge pair and node configuration
    fully inside the mapped labels must land inside the target's interned
    constraint sets; configurations touching an unmapped (hence unusable)
    label never occur in a correct solution and are skipped.  This is the
    path the mask-native move generator certifies candidates on before any
    string surface exists; :func:`is_relaxation_map` wraps it for the
    public string API.
    """
    for a, b in source_edge_pairs:
        ia, ib = image[a], image[b]
        if ia == _UNMAPPED or ib == _UNMAPPED:
            continue
        if ((ia, ib) if ia <= ib else (ib, ia)) not in target_edge_pairs:
            return False
    for config in source_node_configs:
        mapped = []
        complete = True
        for label_index in config:
            target_label = image[label_index]
            if target_label == _UNMAPPED:
                complete = False
                break
            mapped.append(target_label)
        if complete and tuple(sorted(mapped)) not in target_node_configs:
            return False
    return True


def is_relaxation_map(
    source: Problem, target: Problem, mapping: Mapping[Label, Label]
) -> bool:
    """Check that ``mapping`` certifies ``target`` as a relaxation of ``source``.

    Every usable label of ``source`` must be mapped -- and nothing else: a
    map mentioning labels outside ``source``'s alphabet is rejected outright
    (no honest producer emits one, and certificate verification must not
    accept padded maps).  Every allowed edge and node configuration of
    ``source`` must map into the corresponding allowed set of ``target``.
    Configurations mentioning unmapped (hence unusable) labels never occur
    in a correct solution and are skipped.
    """
    if source.delta != target.delta:
        return False
    if not source.usable_labels <= set(mapping) <= source.labels:
        return False
    if not set(mapping.values()) <= target.labels:
        return False

    left = intern(source)
    right = intern(target)
    target_index = right.alphabet.index
    image = [
        target_index[mapping[name]] if name in mapping else _UNMAPPED
        for name in left.alphabet.names
    ]
    return check_index_image(
        image,
        left.edge_pairs,
        left.node_configs,
        right.edge_pairs,
        right.node_config_set,
    )


def certify_relaxation(
    source: Problem, target: Problem, mapping: Mapping[Label, Label]
) -> RelaxationCertificate:
    """Validate ``mapping`` and wrap it in a certificate; raise on failure."""
    if not is_relaxation_map(source, target, mapping):
        raise ValueError(
            f"map does not certify {target.name} as a relaxation of {source.name}"
        )
    return RelaxationCertificate(
        source_name=source.name, target_name=target.name, mapping=dict(mapping)
    )


def find_relaxation_map(
    source: Problem, target: Problem
) -> dict[Label, Label] | None:
    """Search for a certifying label map, or return None.

    Backtracking over assignments of the usable labels of ``source`` (most
    used in constraints first, ties by name), checking each constraint as
    soon as its last label is assigned.  Non-injective maps are allowed --
    collapsing labels is the typical way a relaxation simplifies a problem.
    """
    if source.delta != target.delta:
        return None

    left = intern(source)
    right = intern(target)
    source_names = left.alphabet.names
    source_index = left.alphabet.index
    usable = [source_index[name] for name in sorted(source.usable_labels)]
    node_use = [0] * left.alphabet.size
    for config in left.node_configs:
        for label_index in config:
            node_use[label_index] += 1
    # Stable sort over the name-ordered list: ties break by name.
    usable.sort(key=lambda i: -node_use[i])

    # position_of[i]: when (in assignment order) source index i gets bound.
    position_of = {label_index: k for k, label_index in enumerate(usable)}
    # Constraints become checkable exactly when their last label is bound.
    edge_checks: list[list[tuple[int, int]]] = [[] for _ in usable]
    node_checks: list[list[tuple[int, ...]]] = [[] for _ in usable]
    for a, b in left.edge_pairs:
        if a in position_of and b in position_of:
            edge_checks[max(position_of[a], position_of[b])].append((a, b))
    for config in left.node_configs:
        positions = [position_of.get(label_index) for label_index in set(config)]
        if all(p is not None for p in positions):
            node_checks[max(positions)].append(config)

    right_edges = right.edge_pairs
    right_configs = right.node_config_set
    target_count = right.alphabet.size
    image = [_UNMAPPED] * left.alphabet.size

    def consistent(position: int) -> bool:
        for a, b in edge_checks[position]:
            ia, ib = image[a], image[b]
            if ((ia, ib) if ia <= ib else (ib, ia)) not in right_edges:
                return False
        for config in node_checks[position]:
            mapped = tuple(sorted(image[label_index] for label_index in config))
            if mapped not in right_configs:
                return False
        return True

    def backtrack(position: int) -> bool:
        if position == len(usable):
            return True
        label_index = usable[position]
        for candidate in range(target_count):
            image[label_index] = candidate
            if consistent(position) and backtrack(position + 1):
                return True
        image[label_index] = _UNMAPPED
        return False

    if backtrack(0):
        right_names = right.alphabet.names
        return {
            source_names[label_index]: right_names[image[label_index]]
            for label_index in usable
        }
    return None


def is_harder_restriction(source: Problem, restricted: Problem) -> bool:
    """Check the dual (upper-bound) direction: ``restricted`` embeds in ``source``.

    True iff ``restricted``'s labels are a subset of ``source``'s and its
    constraints are subsets of the corresponding ``source`` constraints; then
    every solution of ``restricted`` is verbatim a solution of ``source``.
    This certifies the Section 4.5 maneuver of making a derived problem
    harder to obtain a clean upper-bound problem.
    """
    return (
        restricted.delta == source.delta
        and restricted.labels <= source.labels
        and restricted.edge_constraint <= source.edge_constraint
        and restricted.node_constraint <= source.node_constraint
    )


def certify_hardening(source: Problem, restricted: Problem) -> RelaxationCertificate:
    """Validate the Section 4.5 restriction and wrap it in a certificate.

    The certificate's map is the inclusion (identity on the kept labels) and
    its ``direction`` is :data:`HARDENS`: the target is at least as hard as
    the source, and any solution of it solves the source verbatim.  Raises
    ``ValueError`` when ``restricted`` does not embed in ``source``.
    """
    if not is_harder_restriction(source, restricted):
        raise ValueError(
            f"{restricted.name} is not a constraint restriction of {source.name}"
        )
    return RelaxationCertificate(
        source_name=source.name,
        target_name=restricted.name,
        mapping={label: label for label in restricted.labels},
        direction=HARDENS,
    )
