"""The label strength diagram: which labels dominate which.

Round-elimination practice (and Olivetti's Round Eliminator) leans on a
partial order between output labels: ``a <= b`` ("b is at least as strong as
a") iff replacing one occurrence of ``a`` by ``b`` keeps every allowed
configuration allowed -- in both the edge and the node constraint.  Strong
labels are always safe substitutes, so:

* relaxations can collapse a label up to a stronger one;
* derived set-labels can be normalised to upward-closed sets;
* problem descriptions shrink by merging equivalent labels.

The diagram of a *derived* problem is particularly structured: after a half
step, set-labels compare by inclusion of their meanings, which is exactly
the order :mod:`repro.core.speedup` exploits.  This module computes the
diagram of an arbitrary problem directly from its constraints and offers the
resulting normalisations.

The computation runs on the bitmask kernel (:mod:`repro.core.alphabet`): the
edge-side replaceability condition is one adjacency-mask subset test
(``adj(weak) <= adj(strong)``), and the node side swaps indices inside
interned configuration tuples with set-membership lookups.  The public
:class:`Diagram` keeps the string surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alphabet import InternedProblem, intern
from repro.core.problem import Label, Problem


def _node_replaceable(interned: InternedProblem, weak: int, strong: int) -> bool:
    """Node side of replaceability: swap one ``weak`` for ``strong`` everywhere."""
    config_set = interned.node_config_set
    for config in interned.node_configs:
        if weak not in config:
            continue
        swapped = list(config)
        swapped.remove(weak)
        swapped.append(strong)
        swapped.sort()
        if tuple(swapped) not in config_set:
            return False
    return True


def _replaceable_indices(interned: InternedProblem, weak: int, strong: int) -> bool:
    # Edge side: every partner of `weak` must also be a partner of `strong`
    # (the self-pair {weak, weak} asks for {strong, weak}, which the
    # adjacency-mask subset test covers).
    adjacency = interned.adjacency
    if adjacency[weak] & ~adjacency[strong]:
        return False
    return _node_replaceable(interned, weak, strong)


def replaceable(problem: Problem, weak: Label, strong: Label) -> bool:
    """True iff ``strong`` may replace ``weak`` in every allowed configuration.

    Checked exhaustively: for each edge configuration containing ``weak``,
    the configuration with one ``weak`` swapped for ``strong`` must be
    allowed; likewise for node configurations.
    """
    interned = intern(problem)
    index = interned.alphabet.index
    return _replaceable_indices(interned, index[weak], index[strong])


@dataclass(frozen=True)
class Diagram:
    """The full strength relation of a problem's labels.

    ``stronger[a]`` is the set of labels that can replace ``a`` everywhere
    (always contains ``a`` itself).  The relation is a preorder; labels with
    ``a <= b`` and ``b <= a`` are *equivalent* and can be merged without
    changing the problem's solvability.
    """

    problem: Problem
    stronger: dict[Label, frozenset[Label]]

    def leq(self, weak: Label, strong: Label) -> bool:
        return strong in self.stronger[weak]

    def equivalent(self, a: Label, b: Label) -> bool:
        return self.leq(a, b) and self.leq(b, a)

    def equivalence_classes(self) -> list[frozenset[Label]]:
        """Partition the labels into strength-equivalence classes."""
        remaining = set(self.problem.labels)
        classes = []
        while remaining:
            pivot = min(remaining)
            cls = frozenset(
                label for label in remaining if self.equivalent(pivot, label)
            )
            classes.append(cls)
            remaining -= cls
        return sorted(classes, key=sorted)

    def maximal_labels(self) -> frozenset[Label]:
        """Labels not strictly dominated by any other label."""
        return frozenset(
            a
            for a in self.problem.labels
            if not any(
                self.leq(a, b) and not self.leq(b, a)
                for b in self.problem.labels
                if b != a
            )
        )

    def edges(self) -> list[tuple[Label, Label]]:
        """The Hasse-style cover list (without reflexive pairs), sorted."""
        pairs = []
        for weak in sorted(self.problem.labels):
            for strong in sorted(self.stronger[weak]):
                if strong != weak:
                    pairs.append((weak, strong))
        return pairs


def compute_diagram(problem: Problem) -> Diagram:
    """Compute the strength preorder by exhaustive replaceability checks."""
    interned = intern(problem)
    names = interned.alphabet.names
    size = interned.alphabet.size
    stronger: dict[Label, frozenset[Label]] = {}
    for weak in range(size):
        stronger[names[weak]] = frozenset(
            names[strong]
            for strong in range(size)
            if strong == weak or _replaceable_indices(interned, weak, strong)
        )
    return Diagram(problem=problem, stronger=stronger)


def merge_equivalent_labels(
    problem: Problem, diagram: Diagram | None = None
) -> tuple[Problem, dict[Label, Label]]:
    """Collapse strength-equivalent labels to one representative each.

    Returns the merged problem and the label map applied.  The map is a
    relaxation certificate in both directions, so the merged problem has
    exactly the same round complexity.  Pass an already-computed ``diagram``
    of ``problem`` to avoid recomputing it (the move generator shares one
    diagram across all move families).
    """
    if diagram is None:
        diagram = compute_diagram(problem)
    mapping: dict[Label, Label] = {}
    for cls in diagram.equivalence_classes():
        representative = min(cls)
        for label in cls:
            mapping[label] = representative
    merged = Problem.make(
        name=f"{problem.name}|merged",
        delta=problem.delta,
        edge_configs=[
            (mapping[a], mapping[b]) for a, b in problem.edge_constraint
        ],
        node_configs=[
            tuple(mapping[label] for label in config)
            for config in problem.node_constraint
        ],
        labels={mapping[label] for label in problem.labels},
    )
    return merged, mapping
