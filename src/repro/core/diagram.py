"""The label strength diagram: which labels dominate which.

Round-elimination practice (and Olivetti's Round Eliminator) leans on a
partial order between output labels: ``a <= b`` ("b is at least as strong as
a") iff replacing one occurrence of ``a`` by ``b`` keeps every allowed
configuration allowed -- in both the edge and the node constraint.  Strong
labels are always safe substitutes, so:

* relaxations can collapse a label up to a stronger one;
* derived set-labels can be normalised to upward-closed sets;
* problem descriptions shrink by merging equivalent labels.

The diagram of a *derived* problem is particularly structured: after a half
step, set-labels compare by inclusion of their meanings, which is exactly
the order :mod:`repro.core.speedup` exploits.  This module computes the
diagram of an arbitrary problem directly from its constraints and offers the
resulting normalisations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import Label, Problem, edge_config, node_config


def replaceable(problem: Problem, weak: Label, strong: Label) -> bool:
    """True iff ``strong`` may replace ``weak`` in every allowed configuration.

    Checked exhaustively: for each edge configuration containing ``weak``,
    the configuration with one ``weak`` swapped for ``strong`` must be
    allowed; likewise for node configurations.
    """
    for pair in problem.edge_constraint:
        if weak not in pair:
            continue
        other = pair[1] if pair[0] == weak else pair[0]
        if edge_config(strong, other) not in problem.edge_constraint:
            return False
    for config in problem.node_constraint:
        if weak not in config:
            continue
        swapped = list(config)
        swapped.remove(weak)
        swapped.append(strong)
        if node_config(swapped) not in problem.node_constraint:
            return False
    return True


@dataclass(frozen=True)
class Diagram:
    """The full strength relation of a problem's labels.

    ``stronger[a]`` is the set of labels that can replace ``a`` everywhere
    (always contains ``a`` itself).  The relation is a preorder; labels with
    ``a <= b`` and ``b <= a`` are *equivalent* and can be merged without
    changing the problem's solvability.
    """

    problem: Problem
    stronger: dict[Label, frozenset[Label]]

    def leq(self, weak: Label, strong: Label) -> bool:
        return strong in self.stronger[weak]

    def equivalent(self, a: Label, b: Label) -> bool:
        return self.leq(a, b) and self.leq(b, a)

    def equivalence_classes(self) -> list[frozenset[Label]]:
        """Partition the labels into strength-equivalence classes."""
        remaining = set(self.problem.labels)
        classes = []
        while remaining:
            pivot = min(remaining)
            cls = frozenset(
                label for label in remaining if self.equivalent(pivot, label)
            )
            classes.append(cls)
            remaining -= cls
        return sorted(classes, key=sorted)

    def maximal_labels(self) -> frozenset[Label]:
        """Labels not strictly dominated by any other label."""
        return frozenset(
            a
            for a in self.problem.labels
            if not any(
                self.leq(a, b) and not self.leq(b, a)
                for b in self.problem.labels
                if b != a
            )
        )

    def edges(self) -> list[tuple[Label, Label]]:
        """The Hasse-style cover list (without reflexive pairs), sorted."""
        pairs = []
        for weak in sorted(self.problem.labels):
            for strong in sorted(self.stronger[weak]):
                if strong != weak:
                    pairs.append((weak, strong))
        return pairs


def compute_diagram(problem: Problem) -> Diagram:
    """Compute the strength preorder by exhaustive replaceability checks."""
    stronger = {
        weak: frozenset(
            strong
            for strong in problem.labels
            if strong == weak or replaceable(problem, weak, strong)
        )
        for weak in problem.labels
    }
    return Diagram(problem=problem, stronger=stronger)


def merge_equivalent_labels(problem: Problem) -> tuple[Problem, dict[Label, Label]]:
    """Collapse strength-equivalent labels to one representative each.

    Returns the merged problem and the label map applied.  The map is a
    relaxation certificate in both directions, so the merged problem has
    exactly the same round complexity.
    """
    diagram = compute_diagram(problem)
    mapping: dict[Label, Label] = {}
    for cls in diagram.equivalence_classes():
        representative = min(cls)
        for label in cls:
            mapping[label] = representative
    merged = Problem.make(
        name=f"{problem.name}|merged",
        delta=problem.delta,
        edge_configs=[
            (mapping[a], mapping[b]) for a, b in problem.edge_constraint
        ],
        node_configs=[
            tuple(mapping[label] for label in config)
            for config in problem.node_constraint
        ],
        labels={mapping[label] for label in problem.labels},
    )
    return merged, mapping
