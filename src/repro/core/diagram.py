"""The label strength diagram: which labels dominate which.

Round-elimination practice (and Olivetti's Round Eliminator) leans on a
partial order between output labels: ``a <= b`` ("b is at least as strong as
a") iff replacing one occurrence of ``a`` by ``b`` keeps every allowed
configuration allowed -- in both the edge and the node constraint.  Strong
labels are always safe substitutes, so:

* relaxations can collapse a label up to a stronger one;
* derived set-labels can be normalised to upward-closed sets;
* problem descriptions shrink by merging equivalent labels.

The diagram of a *derived* problem is particularly structured: after a half
step, set-labels compare by inclusion of their meanings, which is exactly
the order :mod:`repro.core.speedup` exploits.  This module computes the
diagram of an arbitrary problem directly from its constraints and offers the
resulting normalisations.

The computation runs on the bitmask kernel (:mod:`repro.core.alphabet`): the
edge-side replaceability condition is one adjacency-mask subset test
(``adj(weak) <= adj(strong)``), and the node side swaps indices inside
interned configuration tuples with set-membership lookups.  The public
:class:`Diagram` keeps the string surface.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.alphabet import InternedProblem, intern, iter_bits
from repro.core.problem import Label, Problem

# -- construction counter hook ------------------------------------------------
#
# Diagram computation is quadratic in the alphabet and shows up in search
# profiles; the full replaceability grid is therefore computed at most once
# per interned problem (cached on the :class:`InternedProblem` instance) and
# shared by every consumer -- ``compute_diagram``, the move generator, and
# the search driver.  The counter lets regression tests assert that the
# sharing holds: ``diagram_build_count()`` is a monotone process-wide count
# of actual grid constructions (cache hits do not count).

_build_lock = threading.Lock()
_builds = 0


def diagram_build_count() -> int:
    """How many times the replaceability grid has been built in this process.

    A testing/profiling hook: take a snapshot before an operation and assert
    the delta afterwards (see ``tests/test_search.py``).  Cached reuse via
    :func:`compute_stronger_masks` / :func:`compute_diagram` on the same
    interned problem does not increment the count.
    """
    return _builds


def _count_build() -> None:
    global _builds
    with _build_lock:
        _builds += 1


def _node_replaceable(interned: InternedProblem, weak: int, strong: int) -> bool:
    """Node side of replaceability: swap one ``weak`` for ``strong`` everywhere."""
    config_set = interned.node_config_set
    configs = interned.node_configs
    for config_index in interned.configs_with_label(weak):
        config = configs[config_index]
        swapped = list(config)
        swapped.remove(weak)
        swapped.append(strong)
        swapped.sort()
        if tuple(swapped) not in config_set:
            return False
    return True


def _replaceable_indices(interned: InternedProblem, weak: int, strong: int) -> bool:
    # Edge side: every partner of `weak` must also be a partner of `strong`
    # (the self-pair {weak, weak} asks for {strong, weak}, which the
    # adjacency-mask subset test covers).
    adjacency = interned.adjacency
    if adjacency[weak] & ~adjacency[strong]:
        return False
    return _node_replaceable(interned, weak, strong)


def replaceable(problem: Problem, weak: Label, strong: Label) -> bool:
    """True iff ``strong`` may replace ``weak`` in every allowed configuration.

    Checked exhaustively: for each edge configuration containing ``weak``,
    the configuration with one ``weak`` swapped for ``strong`` must be
    allowed; likewise for node configurations.
    """
    interned = intern(problem)
    index = interned.alphabet.index
    return _replaceable_indices(interned, index[weak], index[strong])


@dataclass(frozen=True)
class Diagram:
    """The full strength relation of a problem's labels.

    ``stronger[a]`` is the set of labels that can replace ``a`` everywhere
    (always contains ``a`` itself).  The relation is a preorder; labels with
    ``a <= b`` and ``b <= a`` are *equivalent* and can be merged without
    changing the problem's solvability.
    """

    problem: Problem
    stronger: dict[Label, frozenset[Label]]

    def leq(self, weak: Label, strong: Label) -> bool:
        return strong in self.stronger[weak]

    def equivalent(self, a: Label, b: Label) -> bool:
        return self.leq(a, b) and self.leq(b, a)

    def equivalence_classes(self) -> list[frozenset[Label]]:
        """Partition the labels into strength-equivalence classes."""
        remaining = set(self.problem.labels)
        classes = []
        while remaining:
            pivot = min(remaining)
            cls = frozenset(
                label for label in remaining if self.equivalent(pivot, label)
            )
            classes.append(cls)
            remaining -= cls
        return sorted(classes, key=sorted)

    def maximal_labels(self) -> frozenset[Label]:
        """Labels not strictly dominated by any other label."""
        return frozenset(
            a
            for a in self.problem.labels
            if not any(
                self.leq(a, b) and not self.leq(b, a)
                for b in self.problem.labels
                if b != a
            )
        )

    def edges(self) -> list[tuple[Label, Label]]:
        """The Hasse-style cover list (without reflexive pairs), sorted."""
        pairs = []
        for weak in sorted(self.problem.labels):
            for strong in sorted(self.stronger[weak]):
                if strong != weak:
                    pairs.append((weak, strong))
        return pairs


def compute_stronger_masks(interned: InternedProblem) -> tuple[int, ...]:
    """The strength preorder as masks: ``masks[i]`` = labels replacing ``i``.

    This is the mask-native surface the move generator consumes directly
    (``stronger`` bit ``j`` of entry ``i`` means label ``j`` may replace
    label ``i`` everywhere; bit ``i`` itself is always set).  The grid is
    computed once per interned problem and cached on the instance, so every
    consumer of the same problem -- move generation across a whole search
    branch, :func:`compute_diagram`, equivalence merging -- shares one
    construction.

    The adjacency-mask subset test screens each ordered pair before the node
    scan touches any configuration, and the node scan only visits the
    configurations actually containing the weak label (the interned inverted
    index), so large antichain alphabets -- where almost every pair fails on
    the edge side -- cost one mask operation per pair.
    """
    cached = interned._stronger_masks
    if cached is not None:
        return cached
    _count_build()
    size = interned.alphabet.size
    masks = []
    for weak in range(size):
        mask = 1 << weak
        for strong in range(size):
            if strong != weak and _replaceable_indices(interned, weak, strong):
                mask |= 1 << strong
        masks.append(mask)
    interned._stronger_masks = tuple(masks)
    return interned._stronger_masks


def compute_diagram(problem: Problem) -> Diagram:
    """Compute the strength preorder by exhaustive replaceability checks.

    A string-surface view over :func:`compute_stronger_masks`; repeated
    calls on the same problem instance reuse the cached mask grid.
    """
    interned = intern(problem)
    masks = compute_stronger_masks(interned)
    names = interned.alphabet.names
    stronger: dict[Label, frozenset[Label]] = {
        names[weak]: frozenset(names[strong] for strong in iter_bits(mask))
        for weak, mask in enumerate(masks)
    }
    return Diagram(problem=problem, stronger=stronger)


def merge_equivalent_labels(
    problem: Problem, diagram: Diagram | None = None
) -> tuple[Problem, dict[Label, Label]]:
    """Collapse strength-equivalent labels to one representative each.

    Returns the merged problem and the label map applied.  The map is a
    relaxation certificate in both directions, so the merged problem has
    exactly the same round complexity.  Pass an already-computed ``diagram``
    of ``problem`` to avoid recomputing it (the move generator shares one
    diagram across all move families).
    """
    if diagram is None:
        diagram = compute_diagram(problem)
    mapping: dict[Label, Label] = {}
    for cls in diagram.equivalence_classes():
        representative = min(cls)
        for label in cls:
            mapping[label] = representative
    merged = Problem.make(
        name=f"{problem.name}|merged",
        delta=problem.delta,
        edge_configs=[
            (mapping[a], mapping[b]) for a, b in problem.edge_constraint
        ],
        node_configs=[
            tuple(mapping[label] for label in config)
            for config in problem.node_constraint
        ],
        labels={mapping[label] for label in problem.labels},
    )
    return merged, mapping
