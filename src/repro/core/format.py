"""A Round-Eliminator-style textual syntax for problems.

The format is line-oriented and round-trips exactly::

    problem sinkless-coloring delta=3
    labels: 0 1
    node:
    0 0 1
    edge:
    0 0
    0 1

Node and edge configurations are whitespace-separated label lists (order
inside a line does not matter; the parser canonicalises).  Lines starting
with ``#`` and blank lines are ignored.  This mirrors the input syntax of
Olivetti's Round Eliminator closely enough that problems can be transcribed
between the two tools by hand.
"""

from __future__ import annotations

import re

from repro.core.problem import Problem, ProblemError

_HEADER_RE = re.compile(r"^problem\s+(?P<name>\S+)\s+delta=(?P<delta>\d+)\s*$")


def format_problem(problem: Problem) -> str:
    """Serialise a problem to the textual format (inverse of :func:`parse_problem`)."""
    lines = [f"problem {problem.name} delta={problem.delta}"]
    lines.append("labels: " + " ".join(sorted(problem.labels)))
    lines.append("node:")
    lines.extend(" ".join(config) for config in sorted(problem.node_constraint))
    lines.append("edge:")
    lines.extend(" ".join(pair) for pair in sorted(problem.edge_constraint))
    return "\n".join(lines) + "\n"


def parse_problem(text: str) -> Problem:
    """Parse the textual format produced by :func:`format_problem`.

    Raises :class:`ProblemError` on malformed input; messages carry the
    1-based line number of the offending line.  Duplicate ``problem``
    headers, ``labels:`` lines, and ``node:``/``edge:`` section headers are
    rejected (historically a second section silently absorbed the first).
    When the ``labels:`` line is omitted, the alphabet is inferred as the
    union of labels mentioned by the configurations.
    """
    name: str | None = None
    delta: int | None = None
    labels: list[str] | None = None
    node_lines: list[tuple[int, list[str]]] = []
    edge_lines: list[tuple[int, list[str]]] = []
    section: str | None = None
    seen_sections: set[str] = set()

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        header = _HEADER_RE.match(line)
        if header:
            if name is not None:
                raise ProblemError(f"line {lineno}: duplicate 'problem' header")
            name = header.group("name")
            delta = int(header.group("delta"))
            continue
        if line.startswith("labels:"):
            if labels is not None:
                raise ProblemError(f"line {lineno}: duplicate 'labels:' line")
            labels = line[len("labels:") :].split()
            duplicates = sorted({lbl for lbl in labels if labels.count(lbl) > 1})
            if duplicates:
                raise ProblemError(
                    f"line {lineno}: duplicate labels {duplicates} in 'labels:' line"
                )
            continue
        if line in ("node:", "edge:"):
            kind = line[:-1]
            if kind in seen_sections:
                raise ProblemError(f"line {lineno}: duplicate '{kind}:' section")
            seen_sections.add(kind)
            section = kind
            continue
        tokens = line.split()
        if section == "node":
            node_lines.append((lineno, tokens))
        elif section == "edge":
            edge_lines.append((lineno, tokens))
        else:
            raise ProblemError(
                f"line {lineno}: configuration line outside a section: {line!r}"
            )

    if name is None or delta is None:
        raise ProblemError("missing 'problem <name> delta=<d>' header")
    for lineno, tokens in edge_lines:
        if len(tokens) != 2:
            raise ProblemError(
                f"line {lineno}: edge configuration {tokens!r} is not a pair"
            )
    for lineno, tokens in node_lines:
        if len(tokens) != delta:
            raise ProblemError(
                f"line {lineno}: node configuration {tokens!r} "
                f"does not have {delta} entries"
            )

    if labels is None:
        # Explicit inference: the alphabet is exactly what the configurations
        # mention (previously delegated silently to Problem.make).
        inferred: set[str] = set()
        for _, tokens in edge_lines:
            inferred.update(tokens)
        for _, tokens in node_lines:
            inferred.update(tokens)
        labels = sorted(inferred)
    else:
        known = set(labels)
        for lineno, tokens in edge_lines + node_lines:
            unknown = sorted(set(tokens) - known)
            if unknown:
                raise ProblemError(
                    f"line {lineno}: configuration uses labels {unknown} "
                    f"not declared on the 'labels:' line"
                )

    return Problem.make(
        name=name,
        delta=delta,
        edge_configs=[tokens for _, tokens in edge_lines],
        node_configs=[tokens for _, tokens in node_lines],
        labels=labels,
    )
