"""A Round-Eliminator-style textual syntax for problems.

The format is line-oriented and round-trips exactly::

    problem sinkless-coloring delta=3
    labels: 0 1
    node:
    0 0 1
    edge:
    0 0
    0 1

Node and edge configurations are whitespace-separated label lists (order
inside a line does not matter; the parser canonicalises).  Lines starting
with ``#`` and blank lines are ignored.  This mirrors the input syntax of
Olivetti's Round Eliminator closely enough that problems can be transcribed
between the two tools by hand.
"""

from __future__ import annotations

import re

from repro.core.problem import Problem, ProblemError

_HEADER_RE = re.compile(r"^problem\s+(?P<name>\S+)\s+delta=(?P<delta>\d+)\s*$")


def format_problem(problem: Problem) -> str:
    """Serialise a problem to the textual format (inverse of :func:`parse_problem`)."""
    lines = [f"problem {problem.name} delta={problem.delta}"]
    lines.append("labels: " + " ".join(sorted(problem.labels)))
    lines.append("node:")
    lines.extend(" ".join(config) for config in sorted(problem.node_constraint))
    lines.append("edge:")
    lines.extend(" ".join(pair) for pair in sorted(problem.edge_constraint))
    return "\n".join(lines) + "\n"


def parse_problem(text: str) -> Problem:
    """Parse the textual format produced by :func:`format_problem`.

    Raises :class:`ProblemError` on malformed input.
    """
    name: str | None = None
    delta: int | None = None
    labels: list[str] | None = None
    node_lines: list[list[str]] = []
    edge_lines: list[list[str]] = []
    section: str | None = None

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        header = _HEADER_RE.match(line)
        if header:
            name = header.group("name")
            delta = int(header.group("delta"))
            continue
        if line.startswith("labels:"):
            labels = line[len("labels:") :].split()
            continue
        if line == "node:":
            section = "node"
            continue
        if line == "edge:":
            section = "edge"
            continue
        tokens = line.split()
        if section == "node":
            node_lines.append(tokens)
        elif section == "edge":
            edge_lines.append(tokens)
        else:
            raise ProblemError(f"configuration line outside a section: {line!r}")

    if name is None or delta is None:
        raise ProblemError("missing 'problem <name> delta=<d>' header")
    for tokens in edge_lines:
        if len(tokens) != 2:
            raise ProblemError(f"edge configuration {tokens!r} is not a pair")
    for tokens in node_lines:
        if len(tokens) != delta:
            raise ProblemError(
                f"node configuration {tokens!r} does not have {delta} entries"
            )
    return Problem.make(
        name=name,
        delta=delta,
        edge_configs=edge_lines,
        node_configs=node_lines,
        labels=labels,
    )
