"""``python -m repro``: the engine behind a command line.

Subcommands (all built on :class:`repro.engine.Engine` and the JSON wire
format of the core dataclasses):

``parse``
    Validate a problem file (or stdin) and echo it back canonically, as text
    or JSON -- a syntax/round-trip checker for the Round-Eliminator-style
    format.
``speedup``
    Apply the automatic speedup one or more times, printing each derived
    problem (text) or the full provenance-carrying results (JSON).
``run``
    Run the iterated round-elimination pipeline: prints the input problem,
    the lower-bound summary, and every derived step -- the same output as
    ``examples/round_eliminator_repl.py``.
``catalog``
    List the built-in problem families, or instantiate one at a degree.
``search``
    Automatically search for a lower-bound certificate: beam search over
    speedup steps interleaved with certified relaxations, emitting a
    machine-checkable :class:`repro.core.certificate.LowerBoundCertificate`
    that is re-verified from scratch before the command reports success.
``classify``
    Bracket a problem's complexity from both sides: the lower-bound search
    plus the upper-bound chase (speedup steps interleaved with certified
    hardening restrictions toward a 0-round-solvable terminal), emitting a
    :class:`repro.search.classify.ComplexityBracket` with a ``tight`` /
    ``gap`` / ``open`` verdict; every certificate present is re-verified
    from scratch before the command reports success.
``moves``
    List the certified relaxation moves of a problem (merge-equivalents /
    drop / merge / addarrow, generated mask-natively) and, with
    ``--harden``, the Section 4.5 hardening restrictions for upper-bound
    chasing.

Examples::

    python -m repro run                                # bundled MIS demo
    python -m repro run problem.txt --max-steps 5 --json
    python -m repro speedup problem.txt --steps 2
    python -m repro catalog --name sinkless-coloring --delta 3
    python -m repro search sinkless_orientation        # fixed point, auto
    python -m repro search problem.txt --max-steps 4 --json
    python -m repro classify indegree-handshake --delta 2
    python -m repro moves mis --harden --json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

import os

from repro.core.format import format_problem, parse_problem
from repro.core.problem import Problem, ProblemError
from repro.core.sequence import EliminationResult
from repro.engine import (
    EXECUTOR_NAMES,
    KERNEL_NAMES,
    Engine,
    EngineConfig,
    EngineLimitError,
)
from repro.problems.catalog import catalog, get_problem, resolve_problem_spec

DEMO_PROBLEM = """
problem mis delta=3
labels: I P O
node:
I I I
O O P
edge:
I O
I P
O O
"""


def elimination_report(problem: Problem, result: EliminationResult) -> str:
    """The classic REPL rendering: input, summary, then each derived step."""
    lines = [format_problem(problem), result.summary(), ""]
    for step in result.steps[1:]:
        lines.append(f"--- step {step.index} ---")
        lines.append(format_problem(step.problem))
        if step.zero_round_solvable:
            lines.append("(0-round solvable -- chain stops here)")
            break
    return "\n".join(lines)


def _read_problem(path: str | None, *, allow_demo: bool = False) -> tuple[Problem, bool]:
    """Load a problem from a file, stdin (``-``), or the bundled demo.

    Returns the problem and whether the demo was used.
    """
    if path is None:
        if allow_demo and sys.stdin.isatty():
            return parse_problem(DEMO_PROBLEM), True
        text = sys.stdin.read()
        if not text.strip() and allow_demo:
            return parse_problem(DEMO_PROBLEM), True
    elif path == "-":
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    return parse_problem(text), False


def _resolve_max_candidate_configs(args: argparse.Namespace, defaults: EngineConfig) -> int:
    """``--max-candidate-configs``, honoring the deprecated ``--max-configs``.

    Resolution order: the canonical spelling, then the deprecated alias
    (with a warning), then the subcommand's tighter default (the search
    command fails fast), then the engine default.
    """
    value = getattr(args, "max_candidate_configs", None)
    legacy = getattr(args, "max_configs", None)
    if legacy is not None:
        print(
            "warning: --max-configs is deprecated; use --max-candidate-configs "
            "(it matches EngineConfig.max_candidate_configs)",
            file=sys.stderr,
        )
        if value is None:
            value = legacy
    if value is None:
        value = getattr(args, "default_max_candidate_configs", None)
    return value if value is not None else defaults.max_candidate_configs


def _engine_from_args(args: argparse.Namespace) -> Engine:
    defaults = EngineConfig()
    policy = defaults.retry_policy
    retries = getattr(args, "retries", None)
    if retries is not None:
        policy = policy.replace(max_retries=retries)
    task_timeout = getattr(args, "task_timeout", None)
    if task_timeout is not None:
        policy = policy.replace(task_timeout_s=task_timeout)
    config = EngineConfig(
        simplify=not getattr(args, "no_simplify", False),
        max_derived_labels=getattr(args, "max_labels", None) or defaults.max_derived_labels,
        max_candidate_configs=_resolve_max_candidate_configs(args, defaults),
        max_live_configs=getattr(args, "max_live_configs", None)
        or defaults.max_live_configs,
        kernel=getattr(args, "kernel", None) or defaults.kernel,
        cache_dir=getattr(args, "cache_dir", None),
        zero_round_memo=not getattr(args, "no_zero_memo", False),
        executor=getattr(args, "backend", None) or defaults.executor,
        max_workers=getattr(args, "workers", None),
        retry_policy=policy,
    )
    return Engine(config)


def _read_problem_spec(args: argparse.Namespace) -> Problem | None:
    """Resolve a file / stdin / catalog-name spec; None (after stderr) on error."""
    if args.spec == "-" or os.path.exists(args.spec):
        problem, _ = _read_problem(args.spec)
        return problem
    try:
        return resolve_problem_spec(args.spec, args.delta)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return None


# -- subcommands -------------------------------------------------------------


def cmd_parse(args: argparse.Namespace) -> int:
    problem, _ = _read_problem(args.file)
    if args.json:
        print(json.dumps(problem.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(format_problem(problem))
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    problem, _ = _read_problem(args.file)
    engine = _engine_from_args(args)
    try:
        results = engine.iterate_speedup(problem, args.steps)
    except EngineLimitError as exc:
        print(f"error: derivation exceeded size limits: {exc}", file=sys.stderr)
        if args.json:
            # Stable machine-readable shape (limit_name is always one of
            # EngineLimitError.LIMIT_NAMES), so JSON consumers need not
            # parse the message.
            print(json.dumps(exc.to_dict(), indent=2, sort_keys=True))
        return 2
    if args.json:
        print(
            json.dumps(
                {"steps": [result.to_dict() for result in results]},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for result in results:
            sys.stdout.write(format_problem(result.full))
            print()
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    problem, used_demo = _read_problem(args.file, allow_demo=True)
    if used_demo:
        print("(no input file given; using the bundled MIS encoding)\n")
    engine = _engine_from_args(args)
    progress = None
    if args.progress:
        progress = lambda step: print(  # noqa: E731
            f"[step {step.index}] {step.problem.name}: "
            f"{len(step.problem.labels)} labels",
            file=sys.stderr,
        )
    result = engine.run(problem, max_steps=args.max_steps, progress=progress)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(elimination_report(problem, result))
        sys.stdout.write("\n")
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    families = catalog()
    if args.name is not None:
        if args.delta is None:
            family = families.get(args.name)
            if family is None:
                print(f"error: unknown family {args.name!r}", file=sys.stderr)
                return 2
            print(f"{family.name} (min_delta={family.min_delta})")
            if family.description:
                print(family.description)
            return 0
        try:
            problem = get_problem(args.name, args.delta)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(problem.to_dict(), indent=2, sort_keys=True))
        else:
            sys.stdout.write(format_problem(problem))
        return 0
    if args.json:
        print(
            json.dumps(
                {
                    name: {"min_delta": family.min_delta, "description": family.description}
                    for name, family in sorted(families.items())
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for name in sorted(families):
            print(name)
    return 0


def cmd_moves(args: argparse.Namespace) -> int:
    from repro.search.moves import generate_hardenings, generate_moves

    problem = _read_problem_spec(args)
    if problem is None:
        return 2
    moves = generate_moves(problem, max_moves=args.max_moves)
    if args.harden:
        moves = moves + generate_hardenings(problem, max_moves=args.max_moves)
    if args.json:
        payload = {
            "problem": problem.to_dict(),
            "moves": [
                {
                    "kind": move.kind,
                    "target": move.target.to_dict(),
                    "certificate": move.certificate().to_dict(),
                }
                for move in moves
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{len(moves)} certified move(s) of {problem.name}:")
    for move in moves:
        target = move.target
        print(
            f"  {move.describe()}  "
            f"(labels={len(target.labels)}, node={len(target.node_constraint)}, "
            f"edge={len(target.edge_constraint)})"
        )
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    # The spec is a file, "-" for stdin, or a catalog family name (with
    # underscores tolerated); files win when both readings are possible.
    problem = _read_problem_spec(args)
    if problem is None:
        return 2
    if (args.checkpoint or args.resume) and not args.cache_dir:
        print(
            "error: --checkpoint/--resume require --cache-dir "
            "(checkpoints live in <cache-dir>/checkpoints/)",
            file=sys.stderr,
        )
        return 2
    engine = _engine_from_args(args)
    result = engine.search_lower_bound(
        problem,
        max_steps=args.max_steps,
        beam_width=args.beam_width,
        max_moves=args.max_moves,
        budget=args.budget,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    check = None
    if result.certificate is not None:
        # Never report a certificate the independent checker rejects.
        check = result.certificate.verify()
    if args.json:
        payload = result.to_dict()
        payload["verified"] = None if check is None else check.valid
        if check is not None and check.failures:
            payload["verification_failures"] = list(check.failures)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.summary())
        if result.certificate is not None:
            print()
            print(result.certificate.describe())
            assert check is not None
            print(f"independently re-verified: {'ok' if check.valid else 'FAILED'}")
            for failure in check.failures:
                print(f"  {failure}", file=sys.stderr)
    if check is None:
        return 1
    return 0 if check.valid else 2


def cmd_classify(args: argparse.Namespace) -> int:
    problem = _read_problem_spec(args)
    if problem is None:
        return 2
    if (args.checkpoint or args.resume) and not args.cache_dir:
        print(
            "error: --checkpoint/--resume require --cache-dir "
            "(checkpoints live in <cache-dir>/checkpoints/)",
            file=sys.stderr,
        )
        return 2
    engine = _engine_from_args(args)
    result = engine.classify(
        problem,
        max_steps=args.max_steps,
        beam_width=args.beam_width,
        max_moves=args.max_moves,
        budget=args.budget,
        chase_beam_width=args.chase_beam_width,
        chase_max_hardenings=args.chase_max_hardenings,
        chase_budget=args.chase_budget,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    bracket = result.bracket
    # Never report a bracket whose certificates the independent checker
    # rejects; a bracket with no certificate at all is "nothing found".
    check = None
    if bracket.lower is not None or bracket.upper is not None:
        check = bracket.verify()
    if args.json:
        payload = result.to_dict()
        payload["verified"] = None if check is None else check.valid
        if check is not None and check.failures:
            payload["verification_failures"] = list(check.failures)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.summary())
        if bracket.lower is not None:
            print()
            print(bracket.lower.describe())
        if bracket.upper is not None:
            print()
            print(bracket.upper.describe())
        if check is not None:
            print()
            print(f"independently re-verified: {'ok' if check.valid else 'FAILED'}")
            for failure in check.failures:
                print(f"  {failure}", file=sys.stderr)
    if check is None:
        return 1
    return 0 if check.valid else 2


# -- parser ------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Round elimination for locally checkable problems "
        "(Brandt, PODC 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_io(p: argparse.ArgumentParser, *, optional_file: bool) -> None:
        p.add_argument(
            "file",
            nargs="?" if optional_file else None,
            default=None,
            help="problem file in the textual format ('-' for stdin)",
        )
        p.add_argument("--json", action="store_true", help="emit JSON output")

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=EXECUTOR_NAMES,
            help="execution backend for batch fan-out: serial, thread "
            "(default; or set REPRO_EXECUTOR), or process (true parallelism "
            "for CPU-heavy batches)",
        )
        p.add_argument(
            "--workers",
            type=int,
            help="worker-pool width for batch fan-out (default: min(8, cores))",
        )
        p.add_argument(
            "--retries",
            type=int,
            help="transient-fault retries per task before quarantine "
            "(default 2; crashes/timeouts retry, size-limit errors never do)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            help="per-task deadline in seconds under the process backend "
            "(a hung worker is terminated and the task retried)",
        )

    def add_kernel(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--kernel",
            choices=KERNEL_NAMES,
            help="derivation kernel tier: auto (default; or set REPRO_KERNEL) "
            "picks the vectorized numpy tier when numpy is usable, mask "
            "forces the scalar big-int kernel, vector requests numpy "
            "(falling back to mask without it); results are identical",
        )
        p.add_argument(
            "--max-live-configs",
            type=int,
            help="streaming full-step cap on the undominated candidate "
            "frontier held in memory (default 1000000)",
        )

    p_parse = sub.add_parser("parse", help="validate and canonicalise a problem")
    add_io(p_parse, optional_file=True)
    p_parse.set_defaults(func=cmd_parse)

    p_speedup = sub.add_parser("speedup", help="apply the automatic speedup")
    add_io(p_speedup, optional_file=True)
    p_speedup.add_argument("--steps", type=int, default=1, help="speedup applications")
    p_speedup.add_argument(
        "--no-simplify",
        action="store_true",
        help="use the literal Theorem 1 derivation (no maximality simplification)",
    )
    p_speedup.add_argument("--max-labels", type=int, help="derived-label size guard")
    p_speedup.add_argument(
        "--max-candidate-configs",
        type=int,
        help="candidate-configuration work guard "
        "(matches EngineConfig.max_candidate_configs)",
    )
    p_speedup.add_argument(
        "--max-configs",
        type=int,
        help=argparse.SUPPRESS,  # deprecated alias for --max-candidate-configs
    )
    p_speedup.add_argument("--cache-dir", help="persistent JSON cache directory")
    add_kernel(p_speedup)
    add_backend(p_speedup)
    p_speedup.set_defaults(func=cmd_speedup)

    p_run = sub.add_parser("run", help="run the round-elimination pipeline")
    add_io(p_run, optional_file=True)
    p_run.add_argument(
        "--max-steps", type=int, default=2, help="maximum speedup applications"
    )
    p_run.add_argument(
        "--no-simplify",
        action="store_true",
        help="use the literal Theorem 1 derivation",
    )
    p_run.add_argument("--cache-dir", help="persistent JSON cache directory")
    p_run.add_argument(
        "--progress", action="store_true", help="print per-step progress to stderr"
    )
    add_kernel(p_run)
    add_backend(p_run)
    p_run.set_defaults(func=cmd_run)

    p_catalog = sub.add_parser("catalog", help="list or instantiate built-in problems")
    p_catalog.add_argument("--name", help="family name to show")
    p_catalog.add_argument("--delta", type=int, help="degree to instantiate at")
    p_catalog.add_argument("--json", action="store_true", help="emit JSON output")
    p_catalog.set_defaults(func=cmd_catalog)

    p_search = sub.add_parser(
        "search", help="automatically search for a lower-bound certificate"
    )
    p_search.add_argument(
        "spec",
        help="problem file ('-' for stdin) or catalog family name "
        "(underscores accepted, e.g. sinkless_orientation)",
    )
    p_search.add_argument(
        "--delta", type=int, default=3, help="degree for catalog names (default 3)"
    )
    p_search.add_argument(
        "--max-steps", type=int, default=5, help="maximum speedup depth (default 5)"
    )
    p_search.add_argument(
        "--beam-width", type=int, help="chain states kept per depth (default 4)"
    )
    p_search.add_argument(
        "--max-moves", type=int, help="relaxation moves per derived problem (default 24)"
    )
    p_search.add_argument(
        "--budget", type=int, help="maximum speedup derivations (default 256)"
    )
    # Searches meet blow-ups constantly; default to tight fail-fast guards so
    # a hopeless state dies in milliseconds instead of minutes.
    p_search.add_argument(
        "--max-labels",
        type=int,
        default=20_000,
        help="derived-label size guard (default 20000)",
    )
    p_search.add_argument(
        "--max-candidate-configs",
        type=int,
        help="candidate-configuration work guard (default 500000; matches "
        "EngineConfig.max_candidate_configs)",
    )
    p_search.add_argument(
        "--max-configs",
        type=int,
        help=argparse.SUPPRESS,  # deprecated alias for --max-candidate-configs
    )
    p_search.set_defaults(default_max_candidate_configs=500_000)
    p_search.add_argument("--cache-dir", help="persistent JSON cache directory")
    p_search.add_argument(
        "--checkpoint",
        action="store_true",
        help="serialize the beam state to <cache-dir>/checkpoints/ after "
        "every completed depth (requires --cache-dir)",
    )
    p_search.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed checkpointed search from its saved state; "
        "the resumed run emits the identical certificate (requires "
        "--cache-dir; starts fresh when no matching checkpoint exists)",
    )
    p_search.add_argument(
        "--no-zero-memo",
        action="store_true",
        help="disable the cross-branch 0-round verdict memo",
    )
    add_kernel(p_search)
    add_backend(p_search)
    p_search.add_argument("--json", action="store_true", help="emit JSON output")
    p_search.set_defaults(func=cmd_search)

    p_classify = sub.add_parser(
        "classify",
        help="bracket a problem's complexity: lower-bound search plus "
        "upper-bound chase",
    )
    p_classify.add_argument(
        "spec",
        help="problem file ('-' for stdin) or catalog family name "
        "(underscores accepted, e.g. indegree_handshake)",
    )
    p_classify.add_argument(
        "--delta", type=int, default=3, help="degree for catalog names (default 3)"
    )
    p_classify.add_argument(
        "--max-steps",
        type=int,
        default=5,
        help="maximum speedup depth per direction (default 5)",
    )
    p_classify.add_argument(
        "--beam-width",
        type=int,
        help="lower-search chain states kept per depth (default 4)",
    )
    p_classify.add_argument(
        "--max-moves",
        type=int,
        help="lower-search relaxation moves per derived problem (default 24)",
    )
    p_classify.add_argument(
        "--budget",
        type=int,
        help="lower-search maximum speedup derivations (default 256)",
    )
    p_classify.add_argument(
        "--chase-beam-width",
        type=int,
        help="upper-chase chain states kept per depth (default 4)",
    )
    p_classify.add_argument(
        "--chase-max-hardenings",
        type=int,
        help="hardening restrictions tried per chase state (default 8)",
    )
    p_classify.add_argument(
        "--chase-budget",
        type=int,
        help="upper-chase maximum speedup derivations (default 128)",
    )
    # Same fail-fast guards as `search`: classification meets the same
    # blow-ups, twice.
    p_classify.add_argument(
        "--max-labels",
        type=int,
        default=20_000,
        help="derived-label size guard (default 20000)",
    )
    p_classify.add_argument(
        "--max-candidate-configs",
        type=int,
        help="candidate-configuration work guard (default 500000; matches "
        "EngineConfig.max_candidate_configs)",
    )
    p_classify.add_argument(
        "--max-configs",
        type=int,
        help=argparse.SUPPRESS,  # deprecated alias for --max-candidate-configs
    )
    p_classify.set_defaults(default_max_candidate_configs=500_000)
    p_classify.add_argument("--cache-dir", help="persistent JSON cache directory")
    p_classify.add_argument(
        "--checkpoint",
        action="store_true",
        help="serialize both directions' beam states to "
        "<cache-dir>/checkpoints/ after every completed depth "
        "(requires --cache-dir)",
    )
    p_classify.add_argument(
        "--resume",
        action="store_true",
        help="continue a killed checkpointed classification from its saved "
        "state; the resumed run emits the identical bracket (requires "
        "--cache-dir; starts fresh when no matching checkpoint exists)",
    )
    p_classify.add_argument(
        "--no-zero-memo",
        action="store_true",
        help="disable the cross-branch 0-round verdict memo",
    )
    add_kernel(p_classify)
    add_backend(p_classify)
    p_classify.add_argument("--json", action="store_true", help="emit JSON output")
    p_classify.set_defaults(func=cmd_classify)

    p_moves = sub.add_parser(
        "moves", help="list certified relaxation / hardening moves of a problem"
    )
    p_moves.add_argument(
        "spec",
        help="problem file ('-' for stdin) or catalog family name "
        "(underscores accepted)",
    )
    p_moves.add_argument(
        "--delta", type=int, default=3, help="degree for catalog names (default 3)"
    )
    p_moves.add_argument(
        "--max-moves",
        type=int,
        default=24,
        help="total cap across all relaxation move families, and separately "
        "for the hardening list (default 24)",
    )
    p_moves.add_argument(
        "--harden",
        action="store_true",
        help="also list Section 4.5 hardening restrictions (upper-bound direction)",
    )
    p_moves.add_argument("--json", action="store_true", help="emit JSON output")
    p_moves.set_defaults(func=cmd_moves)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (e.g. `... | head`); exit quietly with the
        # conventional SIGPIPE status, muting the interpreter's flush error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except ProblemError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
