"""Iterated-logarithm helpers: ``log2``, ``log*`` and finite power towers.

Theorem 4's lower bound is Omega(log* Delta); the Naor-Stockmeyer upper bound
is O(log* Delta) as well.  These helpers provide the exact integer versions of
``log*`` used by the bound calculators and by the analysis layer when it
tabulates lower/upper-bound curves over a sweep of degrees.
"""

from __future__ import annotations


def log2_ceil(n: int) -> int:
    """Return ``ceil(log2(n))`` for a positive integer ``n``.

    >>> [log2_ceil(n) for n in (1, 2, 3, 4, 5, 8, 9)]
    [0, 1, 2, 2, 3, 3, 4]
    """
    if n <= 0:
        raise ValueError("log2_ceil requires a positive integer")
    return (n - 1).bit_length()


def log2_floor(n: int) -> int:
    """Return ``floor(log2(n))`` for a positive integer ``n``."""
    if n <= 0:
        raise ValueError("log2_floor requires a positive integer")
    return n.bit_length() - 1


def log_star(n: int, base: int = 2) -> int:
    """Return the iterated logarithm ``log*`` of ``n``.

    ``log*(n)`` is the number of times ``log_base`` must be applied before the
    value drops to at most 1.  We use the conventional exact-integer variant
    with ``ceil`` logs, so ``log*(1) = 0``, ``log*(2) = 1``, ``log*(4) = 2``,
    ``log*(16) = 3``, ``log*(65536) = 4``.

    >>> [log_star(n) for n in (1, 2, 3, 4, 5, 16, 17, 65536, 65537)]
    [0, 1, 2, 2, 3, 3, 4, 4, 5]
    """
    if n < 1:
        raise ValueError("log_star requires n >= 1")
    count = 0
    value = n
    while value > 1:
        if base == 2:
            value = log2_ceil(value)
        else:
            bits = 0
            v = value - 1
            while v > 0:
                v //= base
                bits += 1
            value = bits
        count += 1
    return count


def tower(height: int, top: int = 2, base: int = 2) -> int:
    """Return the power tower ``base^base^...^top`` of the given height.

    ``tower(0, t) == t`` and ``tower(h, t) == base ** tower(h - 1, t)``.
    Heights that would overflow practical integer sizes raise ``OverflowError``
    (callers that need symbolic towers use :class:`repro.utils.tower.Tower`).

    >>> tower(0), tower(1), tower(2), tower(3)
    (2, 4, 16, 65536)
    """
    if height < 0:
        raise ValueError("tower height must be non-negative")
    value = top
    for _ in range(height):
        if value > 1 << 24:
            raise OverflowError(
                "power tower too large to materialise; use repro.utils.tower.Tower"
            )
        value = base**value
    return value
