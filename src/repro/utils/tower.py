"""Exact power-tower arithmetic for the Theorem 4 bound chain.

The weak 2-coloring lower bound (Section 5.2) iterates the map
``k_{i+1} = F(F(F(F(F(k_i)))))`` with ``F(x) = 2^x`` starting from
``k_0 = 2``.  Already ``k_1 = 2^2^2^2^4 = 2^(2^65536)`` cannot be
materialised as a Python integer, yet the proof needs *exact* comparisons
such as ``k_{T+1} <= log(Delta)``.  A :class:`Tower` value represents
``2^2^...^2^top`` (``height`` applications of ``2^`` on top of the plain
integer ``top``) and supports exact comparison against integers and other
towers, exact ``log2`` (peeling one exponential), exact ``exp2`` and exact
``log*``.

The representation is closed under exactly the operations the bound chain
needs; sums like ``4^k + 1`` that are *not* exactly representable are handled
by the callers in :mod:`repro.superweak.lowerbound` with documented
conservative sandwiches.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.utils.logstar import log_star

# Integers with at most this many bits are kept as plain ints by exp2();
# larger values get promoted into a Tower.  2**20 bits is ~128 KiB.
_MATERIALISE_BIT_LIMIT = 1 << 20


@total_ordering
@dataclass(frozen=True)
class Tower:
    """The exact value ``2^(2^(...(2^top)))`` with ``height`` exponentiations.

    ``Tower(0, n)`` is the plain integer ``n``; ``Tower(h, n)`` is
    ``2 ** Tower(h - 1, n)``.  ``top`` must be a positive integer.
    """

    height: int
    top: int

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError("Tower height must be non-negative")
        if self.top < 1:
            raise ValueError("Tower top must be a positive integer")

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_int(value: int) -> "Tower":
        """Wrap a plain positive integer as a height-0 tower."""
        return Tower(0, value)

    def normalized(self) -> "Tower":
        """Return an equal tower with the top materialised as far as practical.

        ``Tower(h, t)`` with small ``2^t`` is rewritten to
        ``Tower(h - 1, 2^t)`` repeatedly, so that e.g. ``Tower(2, 2)``
        compares as the plain number 16 and ``materialize`` succeeds whenever
        the value fits.
        """
        height, top = self.height, self.top
        # Materialise 2**top only while the *result* stays within the bit
        # limit, i.e. while the exponent itself is at most the limit.
        while height > 0 and top <= _MATERIALISE_BIT_LIMIT:
            top = 2**top
            height -= 1
        return Tower(height, top)

    # -- conversions ------------------------------------------------------

    def materialize(self) -> int:
        """Return the exact integer value; raise OverflowError if impractical."""
        norm = self.normalized()
        if norm.height > 0:
            raise OverflowError(f"{self} is too large to materialise")
        return norm.top

    def is_materializable(self) -> bool:
        """Return True iff :meth:`materialize` would succeed."""
        return self.normalized().height == 0

    # -- arithmetic -------------------------------------------------------

    def exp2(self) -> "Tower":
        """Return the exact value ``2 ** self``."""
        return Tower(self.height + 1, self.top)

    def log2(self) -> "Tower":
        """Return the exact ``log2`` of this tower.

        Only defined when the value is an exact power of two, i.e. when
        ``height >= 1`` or the top itself is a power of two.
        """
        norm = self.normalized()
        if norm.height >= 1:
            return Tower(norm.height - 1, norm.top)
        if norm.top >= 1 and norm.top & (norm.top - 1) == 0:
            return Tower(0, max(norm.top.bit_length() - 1, 1))
        raise ValueError(f"{self} is not an exact power of two")

    def log_star(self) -> int:
        """Return the exact iterated logarithm of the tower's value.

        ``log*(2^x) = 1 + log*(x)`` for the ceil-based integer ``log*``, so
        the answer is ``height + log*(top)``.
        """
        return self.height + log_star(self.top)

    # -- comparison -------------------------------------------------------

    def _compare(self, other: "Tower") -> int:
        """Exact three-way comparison; returns -1, 0 or 1."""
        a, b = self.normalized(), other.normalized()
        if a.height == 0 and b.height == 0:
            return (a.top > b.top) - (a.top < b.top)
        if a.height > 0 and b.height > 0:
            # Compare exponents: 2^x vs 2^y has the order of x vs y.
            return Tower(a.height - 1, a.top)._compare(Tower(b.height - 1, b.top))
        if a.height == 0:
            return _int_vs_tower(a.top, b)
        return -_int_vs_tower(b.top, a)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            if other < 1:
                return False  # towers are always >= 1
            other = Tower.from_int(other)
        if not isinstance(other, Tower):
            return NotImplemented
        return self._compare(other) == 0

    def __lt__(self, other: object) -> bool:
        if isinstance(other, int):
            if other < 1:
                return False  # towers are always >= 1 > any non-positive int
            other = Tower.from_int(other)
        if not isinstance(other, Tower):
            return NotImplemented
        return self._compare(other) < 0

    def __hash__(self) -> int:
        norm = self.normalized()
        return hash((norm.height, norm.top))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        norm = self.normalized()
        if norm.height == 0:
            if norm.top.bit_length() > 64:
                return f"Tower(~2^{norm.top.bit_length() - 1})"
            return f"Tower({norm.top})"
        top = (
            str(norm.top)
            if norm.top.bit_length() <= 64
            else f"~2^{norm.top.bit_length() - 1}"
        )
        return "Tower(" + "2^" * norm.height + top + ")"


def _int_vs_tower(value: int, tower_value: Tower) -> int:
    """Exact three-way comparison of a plain int against ``Tower(h>=1, t)``.

    ``2^x > n``  iff ``x >= floor(log2 n) + 1``;
    ``2^x == n`` iff ``n`` is a power of two with exponent ``x``;
    otherwise ``2^x < n``.  The exponent ``x`` is itself a tower, so the
    test recurses with an integer at least one exponential smaller.
    """
    assert tower_value.height >= 1
    if value <= 1:
        return -1  # any tower of height >= 1 is at least 2^1 = 2
    exponent = Tower(tower_value.height - 1, tower_value.top)
    floor_log = value.bit_length() - 1
    cmp_exponent = exponent._compare(Tower.from_int(floor_log))
    if cmp_exponent > 0:
        return -1  # 2^x >= 2^(floor_log + 1) > value
    if cmp_exponent < 0:
        return 1  # 2^x <= 2^(floor_log - 1) <= value / 2 < value
    # exponent == floor(log2 value): 2^x == value iff value is a power of two.
    if value & (value - 1) == 0:
        return 0
    return 1  # 2^floor_log < value because value is not a power of two


TowerLike = Tower | int


def as_tower(value: TowerLike) -> Tower:
    """Coerce an int or Tower to a Tower."""
    if isinstance(value, Tower):
        return value
    return Tower.from_int(value)


def exp2(value: TowerLike) -> TowerLike:
    """Return ``2 ** value`` exactly, staying a plain int while practical.

    This is the map ``F`` from the proof of Theorem 4.
    """
    if isinstance(value, int):
        if value <= _MATERIALISE_BIT_LIMIT:
            return 2**value
        return Tower(1, value)
    return value.exp2()


def iterate_exp2(value: TowerLike, times: int) -> TowerLike:
    """Return ``F^times(value)`` with ``F(x) = 2^x``, exactly."""
    result = value
    for _ in range(times):
        result = exp2(result)
    return result


def tower_log_star(value: TowerLike) -> int:
    """Exact ``log*`` for ints and towers alike."""
    if isinstance(value, int):
        return log_star(value)
    return value.log_star()
