"""Shared utilities: multisets, posets, log-star arithmetic, power towers.

These modules are substrate-free helpers used across the round-elimination
engine (:mod:`repro.core`), the superweak-coloring machinery
(:mod:`repro.superweak`) and the simulation layer (:mod:`repro.sim`).
"""

from repro.utils.logstar import log2_ceil, log_star, tower
from repro.utils.matching import maximum_bipartite_matching, perfect_matching_exists
from repro.utils.multiset import (
    Multiset,
    multiset,
    multiset_contains,
    multisets_of_size,
    submultisets_of_size,
)
from repro.utils.orders import antichains, is_antichain, minimal_elements, upward_closure
from repro.utils.tower import Tower

__all__ = [
    "Multiset",
    "Tower",
    "antichains",
    "is_antichain",
    "log2_ceil",
    "log_star",
    "maximum_bipartite_matching",
    "minimal_elements",
    "multiset",
    "multiset_contains",
    "multisets_of_size",
    "perfect_matching_exists",
    "submultisets_of_size",
    "tower",
    "upward_closure",
]
