"""Robust JSON file I/O shared by the persistent caches.

The engine's on-disk caches (speedup derivations, 0-round verdicts) share a
directory across processes; a crashed writer, a full disk, or a concurrent
truncation can leave an entry in any broken state.  These helpers implement
the two halves of the required contract:

* :func:`load_json` treats *every* unreadable or non-JSON file as an absent
  entry (returns ``None``) -- callers recompute and overwrite;
* :func:`atomic_write_json` writes via a unique temp file and ``rename`` so
  readers never observe a half-written entry, and swallows ``OSError`` so a
  read-only or full cache directory never fails the computation being
  cached.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path


def load_json(path: Path) -> object | None:
    """Parse one JSON file; any I/O or decode failure reads as ``None``.

    ``ValueError`` covers both JSON and Unicode decoding; the caller is
    responsible for validating the payload's *shape* (a parse that succeeds
    can still be a lie).
    """
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def atomic_write_json(path: Path, payload: object) -> None:
    """Atomically replace ``path`` with the serialized payload, best effort."""
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
