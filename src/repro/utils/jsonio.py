"""Robust JSON file I/O shared by the persistent caches.

The engine's on-disk caches (speedup derivations, 0-round verdicts) share a
directory across processes; a crashed writer, a full disk, or a concurrent
truncation can leave an entry in any broken state.  These helpers implement
the three halves of the required contract:

* :func:`load_json` treats *every* unreadable or non-JSON file as an absent
  entry (returns ``None``) -- callers recompute and overwrite;
* :func:`atomic_write_json` writes via a unique temp file and ``rename`` so
  readers never observe a half-written entry, and swallows ``OSError`` so a
  read-only or full cache directory never fails the computation being
  cached;
* :func:`sweep_stale_tmp_files` reclaims the temp files a writer that died
  between ``write_text`` and ``replace`` leaves behind.  The caches call it
  on open: temp files are named ``<entry>.tmp.<pid>.<tid>``, so one whose
  writing process no longer exists (or whose age exceeds the bound, against
  pid reuse and writers on other hosts) is garbage by construction.  Temp
  files never collide with the ``*.json`` names entries are loaded from, so
  a leaked temp file can occupy disk but can never be read back as an entry.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

#: Infix separating an entry name from the writer's pid/tid in temp names.
TMP_MARKER = ".tmp."

#: Age beyond which a temp file is considered abandoned even if a process
#: with the recorded pid exists (pid reuse, or a writer on another host
#: sharing the directory).  A healthy write lives for milliseconds.
STALE_TMP_AGE_S = 3600.0


def load_json(path: Path) -> object | None:
    """Parse one JSON file; any I/O or decode failure reads as ``None``.

    ``ValueError`` covers both JSON and Unicode decoding; the caller is
    responsible for validating the payload's *shape* (a parse that succeeds
    can still be a lie).
    """
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def atomic_write_json(path: Path, payload: object) -> None:
    """Atomically replace ``path`` with the serialized payload, best effort."""
    tmp = path.with_suffix(f"{TMP_MARKER.rstrip('.')}.{os.getpid()}.{threading.get_ident()}")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass


def _writer_pid(name: str) -> int | None:
    """The pid embedded in a temp-file name, or ``None`` if it is not one."""
    marker = name.rfind(TMP_MARKER)
    if marker < 0:
        return None
    parts = name[marker + len(TMP_MARKER):].split(".")
    if len(parts) != 2 or not all(part.isdigit() for part in parts):
        return None
    return int(parts[0])


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown -- err on the side of keeping the file
    return True


def sweep_stale_tmp_files(
    directory: Path, max_age_s: float = STALE_TMP_AGE_S
) -> int:
    """Delete abandoned ``atomic_write_json`` temp files in ``directory``.

    A temp file is stale when its writer pid is dead, or when it is older
    than ``max_age_s`` (covering pid reuse and writers on other machines).
    Live writes -- young files whose pid exists -- are left alone, so a
    concurrent store in a shared cache directory is never disturbed.
    Returns the number of files removed; every failure is best-effort
    tolerated (a sweep must never fail a cache open).
    """
    try:
        entries = list(directory.iterdir())
    except OSError:
        return 0
    removed = 0
    now = time.time()
    for entry in entries:
        pid = _writer_pid(entry.name)
        if pid is None:
            continue
        stale = not _pid_alive(pid)
        if not stale:
            try:
                stale = now - entry.stat().st_mtime > max_age_s
            except OSError:
                continue  # vanished mid-sweep (another sweeper won the race)
        if not stale:
            continue
        try:
            entry.unlink(missing_ok=True)
            removed += 1
        except OSError:
            continue  # read-only dir or concurrent unlink: leave it
    return removed
