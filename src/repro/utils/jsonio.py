"""Robust JSON file I/O shared by the persistent caches.

The engine's on-disk caches (speedup derivations, 0-round verdicts) share a
directory across processes; a crashed writer, a full disk, or a concurrent
truncation can leave an entry in any broken state.  These helpers implement
the three halves of the required contract:

* :func:`load_json` treats *every* unreadable or non-JSON file as an absent
  entry (returns ``None``) -- callers recompute and overwrite;
* :func:`atomic_write_json` writes via a unique temp file and ``rename`` so
  readers never observe a half-written entry, and swallows ``OSError`` so a
  read-only or full cache directory never fails the computation being
  cached;
* :func:`sweep_stale_tmp_files` reclaims the temp files a writer that died
  between ``write_text`` and ``replace`` leaves behind.  The caches call it
  on open: temp files are named ``<entry>.tmp.<pid>.<tid>``, so one whose
  writing process no longer exists (or whose age exceeds the bound, against
  pid reuse and writers on other hosts) is garbage by construction.  Temp
  files never collide with the ``*.json`` names entries are loaded from, so
  a leaked temp file can occupy disk but can never be read back as an entry.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from collections.abc import Callable
from pathlib import Path

#: Infix separating an entry name from the writer's pid/tid in temp names.
TMP_MARKER = ".tmp."

# Fault-injection seam: when set (by repro.engine.faultinject.activate), the
# hook is consulted before every atomic write and may script a failure.
# Living here keeps utils ignorant of the engine package; the hook costs one
# ``is None`` check when no chaos plan is active.
_write_fault_hook: Callable[[Path], str | None] | None = None


def set_write_fault_hook(hook: Callable[[Path], str | None] | None) -> None:
    """Install (or clear) the scripted write-fault hook.

    The hook returns ``"enospc"`` to make the next write fail like a full
    disk, ``"corrupt"`` to make it complete with invalid JSON, or ``None``
    to leave it alone.  Only the fault-injection harness sets this.
    """
    global _write_fault_hook
    _write_fault_hook = hook

#: Age beyond which a temp file is considered abandoned even if a process
#: with the recorded pid exists (pid reuse, or a writer on another host
#: sharing the directory).  A healthy write lives for milliseconds.
STALE_TMP_AGE_S = 3600.0


def load_json(path: Path) -> object | None:
    """Parse one JSON file; any I/O or decode failure reads as ``None``.

    ``ValueError`` covers both JSON and Unicode decoding; the caller is
    responsible for validating the payload's *shape* (a parse that succeeds
    can still be a lie).
    """
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def atomic_write_json(path: Path, payload: object) -> bool:
    """Atomically replace ``path`` with the serialized payload, best effort.

    Returns True when the entry was replaced, False when the write failed
    (read-only directory, full disk, an injected fault); a failed write
    never touches the previously stored entry -- the temp file absorbs the
    failure and is cleaned up -- so callers can count the failure and keep
    serving the old entry.
    """
    text = json.dumps(payload, sort_keys=True)
    if _write_fault_hook is not None:
        fault = _write_fault_hook(path)
        if fault == "enospc":
            return False
        if fault == "corrupt":
            # A torn write that still completed its rename: the entry file
            # ends up with non-JSON bytes, which readers must treat as a miss.
            text = text[: max(1, len(text) // 2)] + "\x00corrupt"
    tmp = path.with_suffix(f"{TMP_MARKER.rstrip('.')}.{os.getpid()}.{threading.get_ident()}")
    try:
        tmp.write_text(text)
        tmp.replace(path)
        return True
    except OSError:
        with contextlib.suppress(OSError):
            tmp.unlink(missing_ok=True)
        return False


def _writer_pid(name: str) -> int | None:
    """The pid embedded in a temp-file name, or ``None`` if it is not one."""
    marker = name.rfind(TMP_MARKER)
    if marker < 0:
        return None
    parts = name[marker + len(TMP_MARKER):].split(".")
    if len(parts) != 2 or not all(part.isdigit() for part in parts):
        return None
    return int(parts[0])


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown -- err on the side of keeping the file
    return True


def sweep_stale_tmp_files(
    directory: Path, max_age_s: float = STALE_TMP_AGE_S
) -> int:
    """Delete abandoned ``atomic_write_json`` temp files in ``directory``.

    A temp file is stale when its writer pid is dead, or when it is older
    than ``max_age_s`` (covering pid reuse and writers on other machines).
    Live writes -- young files whose pid exists -- are left alone, so a
    concurrent store in a shared cache directory is never disturbed.
    Returns the number of files removed; every failure is best-effort
    tolerated (a sweep must never fail a cache open).
    """
    try:
        entries = list(directory.iterdir())
    except OSError:
        return 0
    removed = 0
    now = time.time()
    for entry in entries:
        pid = _writer_pid(entry.name)
        if pid is None:
            continue
        stale = not _pid_alive(pid)
        if not stale:
            try:
                stale = now - entry.stat().st_mtime > max_age_s
            except OSError:
                continue  # vanished mid-sweep (another sweeper won the race)
        if not stale:
            continue
        try:
            entry.unlink(missing_ok=True)
            removed += 1
        except OSError:
            continue  # read-only dir or concurrent unlink: leave it
    return removed
