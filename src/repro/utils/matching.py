"""Bipartite matching: maximum matching, Hall violators, realizability.

Three places in the reproduction need matchings:

* the speedup engine checks whether a multiset of label *sets* can realise a
  concrete configuration (a system of distinct-representatives question);
* Lemma 2's proof is driven by Hall's marriage theorem -- the algorithmic
  version finds either a matching saturating the index set ``I`` or a *Hall
  violator* ``J`` with ``|J| > |N(J)|``, which is exactly the set the lemma's
  pointer construction needs;
* domination tests between derived node configurations reduce to perfect
  matchings in a containment graph.

The implementation is a plain augmenting-path maximum matching (Kuhn's
algorithm).  All instances in this library are tiny (tens of vertices), so
the simple O(V * E) algorithm is the right tool; it also makes violator
extraction by alternating reachability straightforward.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

L = TypeVar("L", bound=Hashable)
R = TypeVar("R", bound=Hashable)

Adjacency = Mapping[L, Iterable[R]]


def maximum_bipartite_matching(adjacency: Adjacency) -> dict[L, R]:
    """Return a maximum matching of the bipartite graph ``left -> rights``.

    ``adjacency`` maps each left vertex to the right vertices it may be
    matched to.  The result maps matched left vertices to their partners.
    """
    match_of_right: dict[R, L] = {}
    match_of_left: dict[L, R] = {}

    def try_augment(left: L, visited: set[R]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            holder = match_of_right.get(right)
            if holder is None or try_augment(holder, visited):
                match_of_right[right] = left
                match_of_left[left] = right
                return True
        return False

    for left in adjacency:
        if left not in match_of_left:
            try_augment(left, set())
    return match_of_left


def perfect_matching_exists(adjacency: Adjacency) -> bool:
    """Return True iff every left vertex can be matched simultaneously."""
    return len(maximum_bipartite_matching(adjacency)) == len(adjacency)


def hall_violator(adjacency: Adjacency) -> frozenset[L] | None:
    """Return a set ``J`` of left vertices with ``|J| > |N(J)|``, or None.

    By Koenig's theorem, such a *Hall violator* exists iff no matching
    saturates the left side.  When the maximum matching leaves some left
    vertex unmatched, the set of left vertices reachable from unmatched left
    vertices by alternating paths is a violator with deficiency equal to the
    number of unmatched vertices.
    """
    matching = maximum_bipartite_matching(adjacency)
    unmatched = [left for left in adjacency if left not in matching]
    if not unmatched:
        return None
    match_of_right: dict[R, L] = {right: left for left, right in matching.items()}

    reachable_left: set[L] = set(unmatched)
    reachable_right: set[R] = set()
    frontier = list(unmatched)
    while frontier:
        left = frontier.pop()
        for right in adjacency[left]:
            if right in reachable_right:
                continue
            reachable_right.add(right)
            holder = match_of_right.get(right)
            if holder is not None and holder not in reachable_left:
                reachable_left.add(holder)
                frontier.append(holder)
    # N(reachable_left) == reachable_right and
    # |reachable_right| == |reachable_left| - len(unmatched) < |reachable_left|.
    return frozenset(reachable_left)


def can_realize(slots: Sequence[Iterable[L]], target: Sequence[L]) -> bool:
    """Return True iff each slot can pick a distinct position of ``target``.

    ``slots`` is a sequence of label sets; ``target`` a multiset (sequence) of
    labels of the same length.  The question is whether there is a bijection
    between slots and positions of ``target`` such that every slot contains
    the label at its assigned position -- a perfect-matching instance.  The
    engine uses this to test whether a node configuration of *sets* can
    produce a given configuration of the underlying problem.
    """
    if len(slots) != len(target):
        return False
    adjacency = {
        index: [
            position
            for position, label in enumerate(target)
            if label in slot_labels
        ]
        for index, slot_labels in enumerate(
            frozenset(slot) for slot in slots
        )
    }
    return perfect_matching_exists(adjacency)
