"""Finite partial orders: antichains, filters (up-sets) and minimal elements.

The maximality simplification of the full speedup step (Theorem 2, Property 6)
admits a classical reformulation: because the half-step node constraint
``h_{1/2}`` is *monotone* in the subset order on half-labels, the maximal node
configurations of the derived problem only ever use *upward-closed* sets of
half-labels.  Upward-closed sets are in bijection with antichains (their sets
of minimal elements), so enumerating candidate labels for the derived problem
reduces to enumerating antichains of a small poset.  This module provides that
machinery for arbitrary finite posets given by a ``leq`` predicate.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Iterator
from typing import TypeVar

T = TypeVar("T", bound=Hashable)

Leq = Callable[[T, T], bool]


def minimal_elements(items: Iterable[T], leq: Leq) -> frozenset[T]:
    """Return the minimal elements of ``items`` under the partial order ``leq``."""
    pool = list(items)
    result = []
    for candidate in pool:
        dominated = any(
            other != candidate and leq(other, candidate) and not leq(candidate, other)
            for other in pool
        )
        if not dominated:
            result.append(candidate)
    # Collapse order-equivalent duplicates (leq both ways) to one representative
    # per equivalence class so the result is a genuine antichain.
    chosen: list[T] = []
    for candidate in result:
        if not any(leq(candidate, kept) and leq(kept, candidate) for kept in chosen):
            chosen.append(candidate)
    return frozenset(chosen)


def maximal_elements(items: Iterable[T], leq: Leq) -> frozenset[T]:
    """Return the maximal elements of ``items`` under ``leq``."""
    return minimal_elements(items, lambda a, b: leq(b, a))


def upward_closure(seed: Iterable[T], universe: Iterable[T], leq: Leq) -> frozenset[T]:
    """Return ``{u in universe : exists s in seed with s <= u}``."""
    seeds = list(seed)
    return frozenset(u for u in universe if any(leq(s, u) for s in seeds))


def is_antichain(items: Iterable[T], leq: Leq) -> bool:
    """Return True iff no two distinct elements of ``items`` are comparable."""
    pool = list(items)
    for i, a in enumerate(pool):
        for b in pool[i + 1 :]:
            if leq(a, b) or leq(b, a):
                return False
    return True


def antichains(universe: Iterable[T], leq: Leq) -> Iterator[frozenset[T]]:
    """Yield every antichain of the poset ``(universe, leq)``, including the empty one.

    The poset is assumed small (the engine uses it on half-label sets, which
    the maximality simplification keeps to at most a few dozen elements).  The
    enumeration is a depth-first search over elements in a fixed order,
    branching on inclusion, and pruning branches that would create a
    comparable pair.
    """
    pool = sorted(set(universe), key=repr)

    def extend(index: int, current: list[T]) -> Iterator[frozenset[T]]:
        if index == len(pool):
            yield frozenset(current)
            return
        candidate = pool[index]
        # Branch 1: skip the candidate.
        yield from extend(index + 1, current)
        # Branch 2: take it, if it stays incomparable with everything chosen.
        if all(not leq(candidate, c) and not leq(c, candidate) for c in current):
            current.append(candidate)
            yield from extend(index + 1, current)
            current.pop()

    yield from extend(0, [])


def filters(universe: Iterable[T], leq: Leq) -> Iterator[frozenset[T]]:
    """Yield every non-empty upward-closed subset (filter) of the poset.

    Each filter is produced exactly once, as the upward closure of one of the
    poset's antichains.
    """
    pool = sorted(set(universe), key=repr)
    for chain in antichains(pool, leq):
        if chain:
            yield upward_closure(chain, pool, leq)
