"""Immutable multisets represented as sorted tuples.

The paper defines both edge and node constraints as *sets of multisets* of
output labels (Section 3, "Problems").  We represent a multiset as a sorted
tuple, which is hashable, canonical (two multisets are equal iff their tuples
are equal) and cheap to build.  The helpers here provide the small amount of
multiset combinatorics the engine needs: enumeration of all multisets of a
given size over a ground set, sub-multiset tests and sub-multiset
enumeration.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Sequence
from itertools import combinations_with_replacement
from typing import TypeVar

T = TypeVar("T", bound=Hashable)

# A multiset over T is canonically a sorted tuple of T.
Multiset = tuple


def multiset(items: Iterable[T]) -> tuple[T, ...]:
    """Return the canonical (sorted-tuple) form of a multiset.

    >>> multiset(["b", "a", "b"])
    ('a', 'b', 'b')
    """
    return tuple(sorted(items))


def multisets_of_size(ground: Iterable[T], size: int) -> Iterator[tuple[T, ...]]:
    """Yield every multiset of exactly ``size`` elements over ``ground``.

    Elements are drawn with repetition; each multiset is yielded once in
    canonical form.  The count is ``C(len(ground) + size - 1, size)``.
    """
    ordered = sorted(set(ground))
    yield from combinations_with_replacement(ordered, size)


def multiset_contains(big: Sequence[T], small: Sequence[T]) -> bool:
    """Return True iff ``small`` is a sub-multiset of ``big``.

    Both arguments are multisets in any order; multiplicities are respected.

    >>> multiset_contains(("a", "a", "b"), ("a", "b"))
    True
    >>> multiset_contains(("a", "b"), ("a", "a"))
    False
    """
    remaining = Counter(big)
    remaining.subtract(Counter(small))
    return all(count >= 0 for count in remaining.values())


def submultisets_of_size(items: Sequence[T], size: int) -> Iterator[tuple[T, ...]]:
    """Yield every distinct sub-multiset of ``items`` with exactly ``size`` elements.

    >>> sorted(submultisets_of_size(("a", "a", "b"), 2))
    [('a', 'a'), ('a', 'b')]
    """
    if size > len(items):
        return
    seen: set[tuple[T, ...]] = set()
    for combo in combinations_with_replacement(sorted(set(items)), size):
        if combo not in seen and multiset_contains(items, combo):
            seen.add(combo)
            yield combo


def multiset_union(*parts: Sequence[T]) -> tuple[T, ...]:
    """Return the canonical multiset union (sum) of the given multisets."""
    merged: list[T] = []
    for part in parts:
        merged.extend(part)
    return tuple(sorted(merged))


def multiset_difference(big: Sequence[T], small: Sequence[T]) -> tuple[T, ...]:
    """Return ``big`` minus ``small`` as a canonical multiset.

    Raises ``ValueError`` if ``small`` is not a sub-multiset of ``big``.
    """
    remaining = Counter(big)
    remaining.subtract(Counter(small))
    if any(count < 0 for count in remaining.values()):
        raise ValueError(f"{small!r} is not a sub-multiset of {big!r}")
    return tuple(sorted(remaining.elements()))


def counter_to_multiset(counts: Counter) -> tuple:
    """Expand a ``Counter`` into the canonical sorted-tuple multiset."""
    return tuple(sorted(counts.elements()))
