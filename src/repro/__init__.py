"""repro: round elimination for locally checkable problems.

A Python reproduction of Sebastian Brandt, *An Automatic Speedup Theorem for
Distributed Problems* (PODC 2019, arXiv:1902.09958).

The library is organised in six layers:

* :mod:`repro.core` -- the round-elimination derivations (Theorems 1 and 2):
  the problem model, the ``Pi -> Pi_{1/2} -> Pi_1`` derivations with the
  maximality simplification, 0-round solvability, isomorphism, canonical
  hashing, relaxations and iterated pipelines;
* :mod:`repro.engine` -- the unified Engine API: configuration
  (:class:`EngineConfig`), a content-addressed derivation cache (renamed
  twins hit via canonical problem hashes, optionally persisted as JSON),
  batch fan-out (``speedup_many`` / ``run_many``) and streaming pipelines
  (``iter_elimination``);
* :mod:`repro.problems` -- the catalog of concrete problems (sinkless
  orientation/coloring, colorings, weak and superweak colorings, MIS,
  matchings);
* :mod:`repro.superweak` -- the Section 5 machinery behind the
  Omega(log* Delta) weak 2-coloring lower bound (Lemmas 1-4, Theorem 4);
* :mod:`repro.search` -- automated lower-bound search: beam search over
  speedup steps interleaved with certified relaxations, emitting
  machine-checkable :class:`LowerBoundCertificate` chains that re-verify
  independently of the search;
* :mod:`repro.sim` -- the port-numbering/LOCAL simulation substrate:
  graphs, views, executors, verifiers, t-independence, and Theorem 1 run on
  real graph classes;
* :mod:`repro.analysis` -- experiment drivers regenerating every checkable
  claim of the paper (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import Engine, sinkless_coloring, are_isomorphic

    engine = Engine()
    problem = sinkless_coloring(delta=3)
    derived = engine.speedup(problem).full          # cached content-addressed
    assert are_isomorphic(derived.compressed(), problem.compressed())

    result = engine.run(problem, max_steps=5)       # iterated pipeline
    assert result.unbounded                         # Omega(log n) fixed point

    payload = result.to_dict()                      # JSON wire format

The classic function surface (``speedup``, ``iterate_speedup``,
``run_round_elimination``) remains available as compatibility shims over a
process-wide default engine, and the whole API is scriptable from the shell
via ``python -m repro`` (subcommands ``parse``, ``speedup``, ``run``,
``catalog``, ``search``, ``classify``).
"""

from repro.core import (
    CertificateStep,
    EliminationResult,
    LowerBoundCertificate,
    Problem,
    ProblemFamily,
    SequenceStep,
    are_isomorphic,
    find_isomorphism,
    format_problem,
    half_step,
    is_zero_round_solvable,
    iterate_speedup,
    parse_problem,
    run_round_elimination,
    speedup,
)
from repro.engine import (
    Engine,
    EngineConfig,
    canonical_hash,
    get_default_engine,
    set_default_engine,
)
from repro.problems import (
    catalog,
    coloring,
    get_family,
    get_problem,
    indegree_handshake,
    maximal_matching,
    mis,
    perfect_matching,
    sinkless_coloring,
    sinkless_orientation,
    superweak,
    weak_coloring_pointer,
)
from repro.core import UpperBoundCertificate
from repro.search import (
    ChaseResult,
    ClassifyResult,
    ComplexityBracket,
    SearchResult,
    classify,
    search_lower_bound,
    search_upper_bound,
)

__version__ = "1.3.0"

__all__ = [
    "CertificateStep",
    "ChaseResult",
    "ClassifyResult",
    "ComplexityBracket",
    "EliminationResult",
    "Engine",
    "EngineConfig",
    "LowerBoundCertificate",
    "Problem",
    "ProblemFamily",
    "SearchResult",
    "SequenceStep",
    "UpperBoundCertificate",
    "are_isomorphic",
    "canonical_hash",
    "catalog",
    "classify",
    "coloring",
    "find_isomorphism",
    "format_problem",
    "get_default_engine",
    "get_family",
    "get_problem",
    "half_step",
    "indegree_handshake",
    "is_zero_round_solvable",
    "iterate_speedup",
    "maximal_matching",
    "mis",
    "parse_problem",
    "perfect_matching",
    "run_round_elimination",
    "search_lower_bound",
    "search_upper_bound",
    "set_default_engine",
    "sinkless_coloring",
    "sinkless_orientation",
    "speedup",
    "superweak",
    "weak_coloring_pointer",
    "__version__",
]
