"""repro: round elimination for locally checkable problems.

A Python reproduction of Sebastian Brandt, *An Automatic Speedup Theorem for
Distributed Problems* (PODC 2019, arXiv:1902.09958).

The library is organised in five layers:

* :mod:`repro.core` -- the round-elimination engine (Theorems 1 and 2): the
  problem model, the ``Pi -> Pi_{1/2} -> Pi_1`` derivations with the
  maximality simplification, 0-round solvability, isomorphism, relaxations
  and iterated pipelines;
* :mod:`repro.problems` -- the catalog of concrete problems (sinkless
  orientation/coloring, colorings, weak and superweak colorings, MIS,
  matchings);
* :mod:`repro.superweak` -- the Section 5 machinery behind the
  Omega(log* Delta) weak 2-coloring lower bound (Lemmas 1-4, Theorem 4);
* :mod:`repro.sim` -- the port-numbering/LOCAL simulation substrate:
  graphs, views, executors, verifiers, t-independence, and Theorem 1 run on
  real graph classes;
* :mod:`repro.analysis` -- experiment drivers regenerating every checkable
  claim of the paper (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import speedup, sinkless_coloring, are_isomorphic

    problem = sinkless_coloring(delta=3)
    derived = speedup(problem).full
    assert are_isomorphic(derived.compressed(), problem.compressed())
"""

from repro.core import (
    EliminationResult,
    Problem,
    ProblemFamily,
    are_isomorphic,
    find_isomorphism,
    format_problem,
    half_step,
    is_zero_round_solvable,
    iterate_speedup,
    parse_problem,
    run_round_elimination,
    speedup,
)
from repro.problems import (
    catalog,
    coloring,
    get_family,
    get_problem,
    maximal_matching,
    mis,
    perfect_matching,
    sinkless_coloring,
    sinkless_orientation,
    superweak,
    weak_coloring_pointer,
)

__version__ = "1.0.0"

__all__ = [
    "EliminationResult",
    "Problem",
    "ProblemFamily",
    "are_isomorphic",
    "catalog",
    "coloring",
    "find_isomorphism",
    "format_problem",
    "get_family",
    "get_problem",
    "half_step",
    "is_zero_round_solvable",
    "iterate_speedup",
    "maximal_matching",
    "mis",
    "parse_problem",
    "perfect_matching",
    "run_round_elimination",
    "sinkless_coloring",
    "sinkless_orientation",
    "speedup",
    "superweak",
    "weak_coloring_pointer",
    "__version__",
]
