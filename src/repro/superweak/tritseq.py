"""Trit sequences: the compact label alphabet of Sections 4.6 and 5.1.

The derived problem ``Pi'_{1/2}`` of (super)weak coloring admits an
equivalent description whose labels are *trit sequences* -- strings over
``{0, 1, 2}`` of length ``k`` (one trit per color).  The mapping (Section
5.1) is per color ``c``:

* trit ``0``: the half-label contains only ``(c, accepting)``;
* trit ``1``: it contains ``(c, accepting)`` and ``(c, plain)``;
* trit ``2``: it contains all three of ``(c, demanding/accepting/plain)``.

(For plain weak 2-coloring, Section 4.6, there is no accepting pointer and
the trit counts ``|Y ∩ {(c,->), (c,.)}|`` instead.)

The edge constraint of the equivalent description is "tritwise sums to
``22...2``", i.e. each sequence is paired with its tritwise complement.
"""

from __future__ import annotations

from itertools import product

TritSeq = str


def all_tritseqs(k: int) -> list[TritSeq]:
    """All ``3^k`` trit sequences of length ``k``, lexicographically."""
    return ["".join(digits) for digits in product("012", repeat=k)]


def tritwise_sum(a: TritSeq, b: TritSeq) -> TritSeq | None:
    """Return the tritwise sum, or None if any position exceeds 2."""
    if len(a) != len(b):
        raise ValueError("trit sequences must have equal length")
    out = []
    for x, y in zip(a, b):
        total = int(x) + int(y)
        if total > 2:
            return None
        out.append(str(total))
    return "".join(out)


def complement(a: TritSeq) -> TritSeq:
    """The unique partner with tritwise sum ``22...2``."""
    return "".join(str(2 - int(x)) for x in a)


def sums_to_twos(a: TritSeq, b: TritSeq) -> bool:
    """True iff the tritwise sum of ``a`` and ``b`` is ``22...2``."""
    return all(int(x) + int(y) == 2 for x, y in zip(a, b))


def all_ones(k: int) -> TritSeq:
    """The self-complementary sequence ``11...1`` central to Lemma 1."""
    return "1" * k


def count_at_position(seqs: list[TritSeq], position: int, digit: str) -> int:
    """How many sequences have ``digit`` at ``position``."""
    return sum(1 for seq in seqs if seq[position] == digit)


def node_choice_is_good(choice: list[TritSeq], k: int) -> bool:
    """The half-step node condition on a concrete choice of trit sequences.

    Per Section 5.1's equivalent description of ``h_{1/2}`` for superweak
    k-coloring: some position ``j`` has strictly more 2s than 0s and at most
    ``k`` zeros.
    """
    for position in range(k):
        zeros = count_at_position(choice, position, "0")
        twos = count_at_position(choice, position, "2")
        if twos > zeros and zeros <= k:
            return True
    return False


def weak2_choice_is_good(choice: list[TritSeq]) -> bool:
    """Section 4.6's condition for weak 2-coloring (k = 2, no accepting).

    Some position has at least one 2 and no 0.
    """
    for position in range(2):
        zeros = count_at_position(choice, position, "0")
        twos = count_at_position(choice, position, "2")
        if twos >= 1 and zeros == 0:
            return True
    return False
