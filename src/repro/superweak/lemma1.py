"""Lemma 1: the dominant element ``P_infinity`` of an ``h_1`` configuration.

Lemma 1 states that every ``Q in h_1(Delta)`` with ``Delta >= 2^(4^k) + 1``
contains a *unique* element ``P_infinity`` of multiplicity at least
``Delta - 2^(4^k)``, and that ``P_infinity`` contains the all-ones sequence
``11...1``.  The proof bounds every other element's multiplicity by
``(k + 1) * 3^k`` and the number of distinct elements by ``2^(3^k)``.

This module extracts ``P_infinity`` from a condensed configuration and
checks the lemma's quantitative guarantees, so experiments can verify the
statement on engine-derived and synthetically scaled configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.superweak.membership import CondensedConfig
from repro.superweak.tritseq import TritSeq, all_ones


def small_multiplicity_bound(k: int) -> int:
    """The proof's per-element multiplicity bound for non-dominant elements."""
    return (k + 1) * 3**k


def total_small_bound(k: int) -> int:
    """The proof's bound ``2^(4^k)`` on the total multiplicity of non-dominant elements.

    (The paper uses the convenient over-estimate
    ``(k+1) * 3^k * 2^(3^k) <= 2^(4^k)`` for ``k >= 2``.)
    """
    return 2 ** (4**k)


def delta_hypothesis(k: int) -> int:
    """The smallest Delta for which Lemma 1's hypothesis holds: ``2^(4^k) + 1``."""
    return total_small_bound(k) + 1


@dataclass(frozen=True)
class PInfinityResult:
    """Outcome of the ``P_infinity`` extraction."""

    p_infinity: frozenset[TritSeq]
    multiplicity: int
    delta: int
    unique_dominant: bool
    contains_all_ones: bool
    meets_multiplicity_bound: bool

    @property
    def lemma_conclusion_holds(self) -> bool:
        return (
            self.unique_dominant
            and self.contains_all_ones
            and self.meets_multiplicity_bound
        )


def find_p_infinity(config: CondensedConfig, k: int) -> PInfinityResult:
    """Locate the dominant element of ``config`` and check Lemma 1's claims.

    The dominant element is taken to be the one with the largest
    multiplicity (ties broken toward sets containing ``11...1``, then
    canonically).  The returned record reports whether it is the *unique*
    element with multiplicity above the proof's ``(k+1) * 3^k`` threshold,
    whether it contains ``11...1`` and whether its multiplicity is at least
    ``Delta - 2^(4^k)``.
    """
    if not config.counts:
        raise ValueError("empty configuration has no dominant element")
    ones = all_ones(k)

    def sort_key(item: tuple[tuple[TritSeq, ...], int]) -> tuple:
        members, multiplicity = item
        return (multiplicity, ones in members, tuple(sorted(members)))

    dominant_members, dominant_multiplicity = max(config.counts, key=sort_key)
    threshold = small_multiplicity_bound(k)
    heavy = [
        members
        for members, multiplicity in config.counts
        if multiplicity > threshold
    ]
    delta = config.delta
    return PInfinityResult(
        p_infinity=frozenset(dominant_members),
        multiplicity=dominant_multiplicity,
        delta=delta,
        unique_dominant=len(heavy) <= 1,
        contains_all_ones=ones in dominant_members,
        meets_multiplicity_bound=(
            dominant_multiplicity >= delta - total_small_bound(k)
        ),
    )
