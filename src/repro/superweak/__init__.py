"""Section 5 machinery: superweak coloring and the weak 2-coloring lower bound.

* :mod:`repro.superweak.tritseq` -- the trit-sequence label alphabet;
* :mod:`repro.superweak.equivalents` -- the equivalent ``Pi'_{1/2}``
  descriptions of Sections 4.6 and 5.1;
* :mod:`repro.superweak.membership` -- ``h_1`` membership at huge degree
  (condensed counts + MILP adversary search);
* :mod:`repro.superweak.lemma1` -- the dominant element ``P_infinity``;
* :mod:`repro.superweak.lemma2` -- pointer sets via Hall violators;
* :mod:`repro.superweak.lemma3` -- the superweak k'-coloring transformation;
* :mod:`repro.superweak.lowerbound` -- Theorem 4's exact tower-arithmetic
  bound chain;
* :mod:`repro.superweak.adversary` -- the executable 0-round adversary.
"""

from repro.superweak.adversary import (
    Violation,
    ZeroRoundAlgorithm,
    canonical_pattern,
    constant_algorithm,
    find_violation,
    id_parity_algorithm,
    random_algorithm,
)
from repro.superweak.equivalents import superweak_half_equivalent, weak2_half_equivalent
from repro.superweak.lemma1 import (
    PInfinityResult,
    delta_hypothesis,
    find_p_infinity,
    small_multiplicity_bound,
    total_small_bound,
)
from repro.superweak.lemma2 import Lemma2Error, PointerSets, compute_pointer_sets, g1_allows
from repro.superweak.lemma3 import (
    SuperweakColoringTransformer,
    SuperweakNodeOutput,
    canonical_r,
    log2_distinct_r_bound,
    log2_k_prime,
)
from repro.superweak.lowerbound import (
    BoundRow,
    ChainReport,
    bound_table,
    delta_supports_k,
    k_sequence,
    max_certified_rounds,
    naor_stockmeyer_upper_shape,
    theorem4_lower_bound,
    theorem4_shape,
    verify_chain,
)
from repro.superweak.membership import (
    CondensedConfig,
    is_h1_member,
    is_maximal,
    property_a_bruteforce,
    property_a_holds,
)
from repro.superweak.weak9 import (
    SpecialElementReport,
    analyze_special_element,
    fully_self_compatible_configs,
)
from repro.superweak.tritseq import (
    all_ones,
    all_tritseqs,
    complement,
    node_choice_is_good,
    sums_to_twos,
    tritwise_sum,
    weak2_choice_is_good,
)

__all__ = [
    "BoundRow",
    "ChainReport",
    "CondensedConfig",
    "Lemma2Error",
    "PInfinityResult",
    "PointerSets",
    "SuperweakColoringTransformer",
    "SuperweakNodeOutput",
    "SpecialElementReport",
    "Violation",
    "ZeroRoundAlgorithm",
    "all_ones",
    "analyze_special_element",
    "all_tritseqs",
    "bound_table",
    "canonical_pattern",
    "canonical_r",
    "complement",
    "compute_pointer_sets",
    "constant_algorithm",
    "delta_hypothesis",
    "delta_supports_k",
    "log2_distinct_r_bound",
    "find_p_infinity",
    "find_violation",
    "fully_self_compatible_configs",
    "g1_allows",
    "id_parity_algorithm",
    "is_h1_member",
    "is_maximal",
    "k_sequence",
    "log2_k_prime",
    "max_certified_rounds",
    "naor_stockmeyer_upper_shape",
    "node_choice_is_good",
    "property_a_bruteforce",
    "property_a_holds",
    "random_algorithm",
    "small_multiplicity_bound",
    "sums_to_twos",
    "superweak_half_equivalent",
    "theorem4_lower_bound",
    "theorem4_shape",
    "total_small_bound",
    "tritwise_sum",
    "verify_chain",
    "weak2_choice_is_good",
    "weak2_half_equivalent",
]
