"""Section 4.6's weak 9-coloring analysis: the special element Q.

The paper motivates superweak coloring through a failed first attempt: map
each of the 9 elements of ``h_1(Delta)`` (for weak 2-coloring) to a color,
hoping to relax ``Pi'_1`` to weak 9-coloring.  This works for 8 of the 9
elements, but one special element ``Q`` can be output by a node *and all its
neighbors* simultaneously, and then no valid pointer exists.  The paper
observes ``Q``'s saving structure: it can be written as
``{Q_1, Q_2, Q_3, Q_4, ..., Q_4}`` where ``{Q_1, Q_3}`` and ``{Q_2, Q_3}``
are the only ``g_1`` pairs inside ``Q`` involving ``Q_1`` or ``Q_2`` -- so a
node outputting ``Q`` can emit two *demanding* pointers (at ``Q_1, Q_2``)
and one *accepting* pointer (at ``Q_3``), which is precisely the shape
generalised into superweak coloring.

This module extracts those facts mechanically from the engine's derived
problem, so the motivation chapter of the paper is itself reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import Label, NodeConfig, Problem


@dataclass(frozen=True)
class SpecialElementReport:
    """Mechanical findings about ``h'_1`` of weak 2-coloring.

    ``fully_self_compatible`` lists the elements a node *and all its
    neighbors* could output simultaneously (every entry of the multiset has
    an edge partner inside the multiset); among those, ``q_structured``
    lists the ones with the paper's Q shape -- a strict majority of
    *demanding* positions whose only internal partners are a minority
    *accepting* label -- and ``special`` is the first of them, with its
    split recorded in ``demanding_labels`` / ``accepting_label``.
    """

    h1_size: int
    fully_self_compatible: tuple[NodeConfig, ...]
    q_structured: tuple[NodeConfig, ...]
    special: NodeConfig | None
    demanding_labels: tuple[Label, ...]
    accepting_label: Label | None

    @property
    def matches_paper(self) -> bool:
        """The Section 4.6 narrative, mechanised: exactly one element has the
        Q shape ``{Q_1, Q_2, Q_3, ...}`` with ``{Q_1, Q_3}, {Q_2, Q_3}`` the
        only internal pairs through Q_1, Q_2."""
        return (
            self.h1_size == 9
            and len(self.q_structured) == 1
            and self.special is not None
            and len(self.demanding_labels) >= 2
            and self.accepting_label is not None
        )


def fully_self_compatible_configs(problem: Problem) -> list[NodeConfig]:
    """Configs a node and *all* its neighbors could share.

    Each neighbor freely arranges the same multiset on its own ports, so the
    situation is realisable (pairwise) iff every entry of the multiset has
    some edge partner within the multiset's support.
    """
    result = []
    for config in sorted(problem.node_constraint):
        support = sorted(set(config))
        if all(
            any(problem.allows_edge(x, y) for y in support) for x in support
        ):
            result.append(config)
    return result


def _q_split(problem: Problem, config: NodeConfig) -> tuple[list[Label], Label] | None:
    """Find the paper's demanding/accepting split of a configuration.

    Looks for an *accepting* label whose multiplicity is strictly smaller
    than the total multiplicity of the *demanding* labels -- those whose only
    internal partner is the accepting label.
    """
    support = sorted(set(config))

    def partners(label: Label) -> set[Label]:
        return {other for other in support if problem.allows_edge(label, other)}

    for accepting in support:
        demanding = [
            label
            for label in support
            if label != accepting and partners(label) == {accepting}
        ]
        if len(demanding) < 2:
            continue
        demanding_count = sum(1 for entry in config if entry in demanding)
        if demanding_count > config.count(accepting):
            return demanding, accepting
    return None


def analyze_special_element(derived: Problem) -> SpecialElementReport:
    """Extract the Section 4.6 narrative from the engine's ``Pi'_1``.

    ``derived`` must be the engine's derived problem of the pointer version
    of weak 2-coloring.  The report records the fully-self-compatible
    elements, identifies the one(s) with the paper's Q structure, and
    returns the demanding/accepting split that motivates superweak coloring.
    """
    compatible = fully_self_compatible_configs(derived)
    q_structured = []
    chosen_split: tuple[list[Label], Label] | None = None
    special: NodeConfig | None = None
    for config in compatible:
        split = _q_split(derived, config)
        if split is not None:
            q_structured.append(config)
            if special is None:
                special = config
                chosen_split = split
    demanding, accepting = chosen_split if chosen_split else ([], None)
    return SpecialElementReport(
        h1_size=len(derived.node_constraint),
        fully_self_compatible=tuple(compatible),
        q_structured=tuple(q_structured),
        special=special,
        demanding_labels=tuple(sorted(demanding)),
        accepting_label=accepting,
    )
