"""Lemma 2: the pointer index sets ``J*`` and ``N(J*)`` via Hall violators.

Given a node's ``Pi'_1`` output ``Q = {Q_1, ..., Q_Delta}`` (one set of trit
sequences per port) and an in/out orientation ``alpha`` per port, Lemma 2
guarantees an index set ``J* subset I`` with

* ``|J*| > |N(J*)|``,
* every ``j in J*`` has the same orientation, opposite to every
  ``i in N(J*)``,

where ``I`` collects the ports whose set is incompatible with the dominant
element ``P_infinity`` (and misses ``11...1``), and ``N(J)`` collects ports
edge-compatible (in ``g_1``, with opposite orientation) with some port of
``J``.  The paper proves existence by contradiction through Hall's marriage
theorem; algorithmically that contradiction *is* the algorithm: build the
bipartite compatibility graph, compute a maximum matching, and extract the
Hall violator when the matching fails to saturate ``I`` (it must, whenever
``Q`` genuinely satisfies Property A).  The violator is then split by
orientation; one side satisfies the strict inequality.

The construction is deterministic given the multiset
``R = {(Q_i, beta_i)}`` -- ports are processed in a canonical order -- which
is exactly the consistency Lemma 3 requires of two adjacent nodes with equal
``R``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.superweak.lemma1 import find_p_infinity
from repro.superweak.membership import CondensedConfig
from repro.superweak.tritseq import TritSeq, all_ones, sums_to_twos
from repro.utils.matching import hall_violator

Orientation = str  # "in" or "out"
NONE_BETA = "none"


class Lemma2Error(RuntimeError):
    """Raised when no Hall violator exists (the input is not a valid h_1 output)."""


def g1_allows(first: frozenset[TritSeq], second: frozenset[TritSeq]) -> bool:
    """The edge constraint of ``Pi'_1``: some pair sums tritwise to ``22...2``."""
    return any(sums_to_twos(w, x) for w in first for x in second)


@dataclass(frozen=True)
class PointerSets:
    """The Lemma 2 output: demanding ports ``J*``, accepting ports ``N(J*)``."""

    j_star: frozenset[int]
    n_of_j_star: frozenset[int]
    p_infinity: frozenset[TritSeq]
    index_set: frozenset[int]


def _beta(
    q_list: list[frozenset[TritSeq]],
    alpha: list[Orientation],
    p_infinity: frozenset[TritSeq],
) -> list[str]:
    """``beta(i) = alpha(i)`` except ``none`` on ports carrying ``P_infinity``."""
    return [
        NONE_BETA if q == p_infinity else a for q, a in zip(q_list, alpha)
    ]


def canonical_port_order(
    q_list: list[frozenset[TritSeq]], alpha: list[Orientation]
) -> list[int]:
    """Ports sorted by the canonical key of ``(Q_i, alpha_i)``.

    Two nodes whose multisets ``{(Q_i, beta_i)}`` agree will see the same
    sorted key sequence, so running the deterministic matching over this
    order yields the same *multiset* of selected ``(Q_i, beta_i)`` pairs on
    both -- the consistency property Lemma 3 needs.
    """
    return sorted(
        range(len(q_list)), key=lambda i: (tuple(sorted(q_list[i])), alpha[i], i)
    )


def compute_pointer_sets(
    q_list: list[frozenset[TritSeq]],
    alpha: list[Orientation],
    k: int,
) -> PointerSets:
    """Run the Lemma 2 construction on one node's ``Pi'_1`` output.

    Raises :class:`Lemma2Error` when no Hall violator exists, which by the
    lemma means ``q_list`` does not satisfy Property A at this ``Delta``
    (e.g. the degree is too small for the dominant-element structure).
    """
    if len(q_list) != len(alpha):
        raise ValueError("one orientation per port is required")
    condensed = CondensedConfig.from_sequence(q_list)
    p_infinity = find_p_infinity(condensed, k).p_infinity
    ones = all_ones(k)

    index_set = frozenset(
        i
        for i, q in enumerate(q_list)
        if not g1_allows(q, p_infinity) and ones not in q
    )

    order = canonical_port_order(q_list, alpha)
    adjacency = {
        j: [
            i
            for i in order
            if alpha[i] != alpha[j] and g1_allows(q_list[i], q_list[j])
        ]
        for j in order
        if j in index_set
    }
    violator = hall_violator(adjacency)
    if violator is None:
        raise Lemma2Error(
            "no Hall violator: the configuration does not satisfy Property A "
            "with a dominant element at this degree"
        )

    def neighbors(of: frozenset[int]) -> frozenset[int]:
        return frozenset(
            i
            for i in range(len(q_list))
            if any(
                alpha[i] != alpha[j] and g1_allows(q_list[i], q_list[j])
                for j in of
            )
        )

    by_side = {
        side: frozenset(j for j in violator if alpha[j] == side)
        for side in ("in", "out")
    }
    for side in ("in", "out"):
        candidate = by_side[side]
        if candidate and len(candidate) > len(neighbors(candidate)):
            return PointerSets(
                j_star=candidate,
                n_of_j_star=neighbors(candidate),
                p_infinity=p_infinity,
                index_set=index_set,
            )
    raise Lemma2Error(
        "Hall violator found but neither orientation class satisfies the "
        "strict inequality -- inconsistent input"
    )
