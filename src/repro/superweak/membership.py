"""Membership in ``h_1(Delta)`` for superweak coloring, at astronomically large Delta.

Section 5.1 characterises the node constraint of the derived problem
``Pi'_1`` of superweak k-coloring: a multiset ``{W_1, ..., W_Delta}`` of
*sets of trit sequences* belongs to ``h_1(Delta)`` iff

* **Property A**: for every choice ``w_i in W_i`` there is a position ``j``
  where strictly more chosen sequences have a 2 than a 0, and at most ``k``
  have a 0; and
* **Property B**: the multiset is maximal with Property A (adding any trit
  sequence to any single ``W_i`` breaks A).

Lemma 1 needs these tested at ``Delta >= 2^(4^k) + 1`` -- far beyond explicit
enumeration.  The key observation making this tractable is that both
properties only depend on the *multiplicity* of each distinct set, so a
configuration is stored condensed as ``{set: multiplicity}``, and the
adversarial choice hidden in Property A is a small integer program over
per-set choice counts: for each of the ``2^k`` ways to assign every position
a failure mode (mode "zeros >= twos" or mode "zeros > k"), feasibility is
decided exactly with scipy's MILP solver (HiGHS).  A brute-force checker over
explicit choices cross-validates the oracle at small Delta.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.superweak.tritseq import TritSeq, all_tritseqs

TritSet = frozenset


def canonical_set(seqs: Iterable[TritSeq]) -> frozenset[TritSeq]:
    return frozenset(seqs)


@dataclass(frozen=True)
class CondensedConfig:
    """A node configuration stored as (set of trit sequences, multiplicity) pairs."""

    counts: tuple[tuple[tuple[TritSeq, ...], int], ...]

    @staticmethod
    def from_mapping(mapping: Mapping[frozenset[TritSeq], int]) -> "CondensedConfig":
        items = []
        for key, value in mapping.items():
            if value < 0:
                raise ValueError("multiplicities must be non-negative")
            if value > 0:
                items.append((tuple(sorted(key)), value))
        return CondensedConfig(counts=tuple(sorted(items)))

    @staticmethod
    def from_sequence(sets: Sequence[Iterable[TritSeq]]) -> "CondensedConfig":
        tally: dict[tuple[TritSeq, ...], int] = {}
        for entry in sets:
            key = tuple(sorted(entry))
            tally[key] = tally.get(key, 0) + 1
        return CondensedConfig(counts=tuple(sorted(tally.items())))

    @property
    def delta(self) -> int:
        return sum(multiplicity for _, multiplicity in self.counts)

    def as_mapping(self) -> dict[frozenset[TritSeq], int]:
        return {frozenset(key): value for key, value in self.counts}

    def types(self) -> list[frozenset[TritSeq]]:
        return [frozenset(key) for key, _ in self.counts]

    def replace_one(
        self, old: frozenset[TritSeq], new: frozenset[TritSeq]
    ) -> "CondensedConfig":
        """Replace a single copy of ``old`` by ``new``."""
        mapping = self.as_mapping()
        if mapping.get(old, 0) < 1:
            raise ValueError(f"{sorted(old)} does not occur in the configuration")
        mapping[old] -= 1
        mapping[new] = mapping.get(new, 0) + 1
        return CondensedConfig.from_mapping(mapping)


# -- Property A -----------------------------------------------------------


def _choice_variables(config: CondensedConfig) -> list[tuple[int, TritSeq]]:
    """One variable per (type index, member sequence) pair."""
    variables = []
    for type_index, (members, _multiplicity) in enumerate(config.counts):
        for seq in members:
            variables.append((type_index, seq))
    return variables


def _mode_feasible_milp(
    config: CondensedConfig, k: int, modes: tuple[str, ...]
) -> bool:
    """Is there an integral adversarial choice failing every position per ``modes``?

    ``modes[j]`` is ``'balance'`` (zeros >= twos at position j) or ``'many'``
    (zeros >= k + 1 at position j).
    """
    from scipy.optimize import LinearConstraint, milp

    variables = _choice_variables(config)
    if not variables:
        return False
    index_of = {var: i for i, var in enumerate(variables)}
    n = len(variables)

    constraints = []
    # Each type's choices sum to its multiplicity.
    for type_index, (members, multiplicity) in enumerate(config.counts):
        row = np.zeros(n)
        for seq in members:
            row[index_of[(type_index, seq)]] = 1.0
        constraints.append(
            LinearConstraint(row, lb=multiplicity, ub=multiplicity)
        )
    # Per-position failure constraints.
    for position, mode in enumerate(modes):
        zero_row = np.zeros(n)
        two_row = np.zeros(n)
        for var_index, (_type_index, seq) in enumerate(variables):
            if seq[position] == "0":
                zero_row[var_index] = 1.0
            elif seq[position] == "2":
                two_row[var_index] = 1.0
        if mode == "balance":
            constraints.append(
                LinearConstraint(zero_row - two_row, lb=0, ub=np.inf)
            )
        elif mode == "many":
            constraints.append(LinearConstraint(zero_row, lb=k + 1, ub=np.inf))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown mode {mode!r}")

    result = milp(
        c=np.zeros(n),
        constraints=constraints,
        integrality=np.ones(n),
        bounds=None,
    )
    return result.status == 0  # optimal <=> feasible for a zero objective


def find_violating_choice_milp(config: CondensedConfig, k: int) -> bool:
    """True iff an adversarial choice defeating *every* position exists."""
    positions = len(config.counts[0][0][0]) if config.counts else k
    for modes in product(("balance", "many"), repeat=positions):
        if _mode_feasible_milp(config, k, modes):
            return True
    return False


def property_a_holds(config: CondensedConfig, k: int) -> bool:
    """Property A of Section 5.1 (the universal half of h_1 membership)."""
    if not config.counts:
        return False
    return not find_violating_choice_milp(config, k)


def property_a_bruteforce(config: CondensedConfig, k: int) -> bool:
    """Explicit enumeration over all choices -- for cross-validating the oracle.

    Only usable when the total number of choice combinations is small; raises
    OverflowError otherwise so tests fail loudly instead of hanging.
    """
    from repro.superweak.tritseq import node_choice_is_good

    slots: list[tuple[TritSeq, ...]] = []
    for members, multiplicity in config.counts:
        slots.extend([members] * multiplicity)
    total = 1
    for slot in slots:
        total *= len(slot)
        if total > 2_000_000:
            raise OverflowError("too many choice combinations for brute force")
    return all(
        node_choice_is_good(list(choice), k) for choice in product(*slots)
    )


# -- Property B -----------------------------------------------------------


def is_maximal(config: CondensedConfig, k: int) -> bool:
    """Property B: adding any trit sequence to any single set breaks Property A."""
    if not property_a_holds(config, k):
        return False
    length = len(config.counts[0][0][0])
    alphabet = all_tritseqs(length)
    for members, _multiplicity in config.counts:
        member_set = frozenset(members)
        for seq in alphabet:
            if seq in member_set:
                continue
            grown = config.replace_one(member_set, member_set | {seq})
            if property_a_holds(grown, k):
                return False
    return True


def is_h1_member(config: CondensedConfig, k: int) -> bool:
    """Full membership in ``h_1(Delta)``: Property A and Property B."""
    return property_a_holds(config, k) and is_maximal(config, k)
