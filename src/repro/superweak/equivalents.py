"""The equivalent trit-sequence descriptions of ``Pi'_{1/2}`` (4.6 and 5.1).

The paper gives, for both weak 2-coloring and superweak k-coloring, a second
description of the derived-and-simplified half problem whose labels are trit
sequences.  These constructors build that second description as ordinary
:class:`~repro.core.problem.Problem` objects, so that its claimed equivalence
with the engine's output is a plain isomorphism test (experiments E3/E4).
"""

from __future__ import annotations

from repro.core.problem import Problem
from repro.superweak.tritseq import (
    all_tritseqs,
    node_choice_is_good,
    sums_to_twos,
    weak2_choice_is_good,
)
from repro.utils.multiset import multisets_of_size


def weak2_half_equivalent(delta: int) -> Problem:
    """Section 4.6's equivalent description of ``Pi'_{1/2}`` for weak 2-coloring.

    Labels: length-2 trit sequences excluding ``00`` and ``22``.  Edge
    configurations: pairs summing tritwise to ``22``.  Node configurations:
    multisets with an index ``j`` where some sequence has a 2 and none has
    a 0.
    """
    labels = [seq for seq in all_tritseqs(2) if seq not in ("00", "22")]
    edge_configs = [
        (a, b)
        for i, a in enumerate(labels)
        for b in labels[i:]
        if sums_to_twos(a, b)
    ]
    node_configs = [
        config
        for config in multisets_of_size(labels, delta)
        if weak2_choice_is_good(list(config))
    ]
    return Problem.make(
        name=f"weak2-half-tritseq[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=labels,
    )


def superweak_half_equivalent(k: int, delta: int) -> Problem:
    """Section 5.1's equivalent description of ``Pi'_{1/2}`` for superweak k.

    Labels: *all* trit sequences of length ``k``.  Edge configurations: pairs
    summing tritwise to ``22...2``.  Node configurations: multisets with a
    position ``j`` holding strictly more 2s than 0s and at most ``k`` 0s.
    """
    labels = all_tritseqs(k)
    edge_configs = [
        (a, b)
        for i, a in enumerate(labels)
        for b in labels[i:]
        if sums_to_twos(a, b)
    ]
    node_configs = [
        config
        for config in multisets_of_size(labels, delta)
        if node_choice_is_good(list(config), k)
    ]
    return Problem.make(
        name=f"superweak{k}-half-tritseq[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=labels,
    )
