"""Theorem 4's bound chain: exact tower arithmetic for the Omega(log* Delta) bound.

The proof of Theorem 4 assumes a weak 2-coloring algorithm with runtime
``T(Delta) <= (log* Delta - 7) / 5``, then applies the superweak speedup
lemma (Lemma 4) ``T + 1`` times along the color sequence

    k_0 = 2,   k_{i+1} = F(F(F(F(F(k_i))))),   F(x) = 2^x,

and derives a contradiction from a 0-round superweak ``k*``-coloring
algorithm with ``k* <= log Delta``.  The chain conditions are:

* every application needs ``Delta >= 2^(4^(k_i)) + 1`` (Lemma 1's hypothesis
  feeding Lemma 3);
* the final color count must satisfy ``k_{T+1} <= log Delta``.

``k_1`` is already ``2^2^2^2^4``; this module verifies the conditions
*exactly* using :class:`repro.utils.tower.Tower`, falling back to a
documented conservative sandwich only where ``4^k + 1`` is not
tower-representable (in which case the sufficient condition
``log2 Delta >= 2^(2^k)`` is used, valid since ``4^k + 1 <= 2^(2^k)`` for
``k >= 3``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.logstar import log_star
from repro.utils.tower import Tower, TowerLike, as_tower, iterate_exp2, tower_log_star

APPLICATIONS_PER_ROUND = 5  # F is applied five times per speedup round
LOG_STAR_SLACK = 7  # the "- 7" in Theorem 4's proof


def k_sequence(steps: int) -> list[TowerLike]:
    """``k_0 = 2`` and ``k_{i+1} = F^5(k_i)``, exactly (ints, then towers)."""
    values: list[TowerLike] = [2]
    for _ in range(steps):
        values.append(iterate_exp2(values[-1], APPLICATIONS_PER_ROUND))
    return values


def delta_supports_k(delta: TowerLike, k: TowerLike) -> bool:
    """Check Lemma 1's hypothesis ``Delta >= 2^(4^k) + 1``.

    Exact whenever ``4^k`` is materialisable; otherwise uses the sufficient
    condition ``log2(Delta) >= 2^(2^k)`` (valid for ``k >= 3``), which can
    only under-approximate the supported range -- never over-claim.
    """
    delta_tower = as_tower(delta)
    if isinstance(k, int) and k <= 64:
        exponent = 4**k
        # Delta >= 2^exponent + 1  <=>  Delta > 2^exponent.
        return delta_tower > Tower(1, exponent) if exponent > 1 else delta_tower > 2
    k_tower = as_tower(k)
    sufficient = k_tower.exp2().exp2()  # 2^(2^k) >= 4^k + 1 for k >= 3
    if delta_tower.height == 0:
        return False  # a materialisable Delta can never reach 2^(2^k) for tower k
    return delta_tower.log2() >= sufficient


def log2_floor_of(delta: TowerLike) -> TowerLike:
    """``floor(log2 Delta)`` -- exact for ints, exact peel for towers."""
    if isinstance(delta, int):
        return delta.bit_length() - 1
    return delta.log2()


@dataclass(frozen=True)
class ChainReport:
    """Verification record for one candidate round count ``T``."""

    rounds: int
    delta_log_star: int
    colors: list[TowerLike]
    supports_all_applications: bool
    final_colors_within_log_delta: bool

    @property
    def valid(self) -> bool:
        return self.supports_all_applications and self.final_colors_within_log_delta


def verify_chain(delta: TowerLike, rounds: int) -> ChainReport:
    """Check that ``rounds + 1`` applications of Lemma 4 go through at ``delta``.

    ``rounds`` plays the role of ``T(Delta) + 1`` applications: the chain
    uses colors ``k_0 .. k_rounds`` and requires every ``k_i`` with
    ``i <= rounds`` to satisfy the degree hypothesis, and ``k_{rounds+1}``
    (the final color count) to stay within ``log Delta``.
    """
    colors = k_sequence(rounds + 1)
    supports = all(delta_supports_k(delta, colors[i]) for i in range(rounds + 1))
    log_delta = log2_floor_of(delta)
    final_ok = _leq(colors[rounds + 1], log_delta)
    return ChainReport(
        rounds=rounds,
        delta_log_star=tower_log_star(delta),
        colors=colors,
        supports_all_applications=supports,
        final_colors_within_log_delta=final_ok,
    )


def _leq(a: TowerLike, b: TowerLike) -> bool:
    return as_tower(a) <= as_tower(b)


def max_certified_rounds(delta: TowerLike, cap: int = 64) -> int:
    """The largest ``T`` whose chain verifies at ``delta`` (0 if none)."""
    best = 0
    for rounds in range(1, cap + 1):
        if verify_chain(delta, rounds).valid:
            best = rounds
        else:
            break
    return best


def theorem4_lower_bound(delta: TowerLike) -> int:
    """The Theorem 4 lower bound on weak 2-coloring at degree ``delta``.

    Per the proof, any algorithm must have
    ``T(Delta) + 1 > (log* Delta - 3) / 5`` whenever the chain verifies, so
    the certified bound is the exact chain length (plus the pointer-version
    round).  The asymptotic shape is ``(log* Delta - 7) / 5``.
    """
    return max_certified_rounds(delta)


def theorem4_shape(log_star_delta: int) -> float:
    """The closed-form curve ``(log* Delta - 7) / 5`` used in Theorem 4's proof."""
    return (log_star_delta - LOG_STAR_SLACK) / 5


def naor_stockmeyer_upper_shape(log_star_delta: int) -> float:
    """The matching upper bound's shape: ``O(log* Delta)`` (unit constant)."""
    return float(log_star_delta)


@dataclass(frozen=True)
class BoundRow:
    """One row of the lower-vs-upper bound table (experiment E8)."""

    tower_height: int
    log_star_delta: int
    certified_lower_bound: int
    shape_lower_bound: float
    shape_upper_bound: float


def bound_table(tower_heights: list[int]) -> list[BoundRow]:
    """Tabulate bounds for ``Delta = 2^2^...^2`` (given tower heights).

    This regenerates the paper's headline comparison: the certified lower
    bound grows as Theta(log* Delta), matching the Naor-Stockmeyer upper
    bound's shape.
    """
    rows = []
    for height in tower_heights:
        delta = Tower(height, 2)
        lsd = delta.log_star()
        rows.append(
            BoundRow(
                tower_height=height,
                log_star_delta=lsd,
                certified_lower_bound=theorem4_lower_bound(delta),
                shape_lower_bound=theorem4_shape(lsd),
                shape_upper_bound=naor_stockmeyer_upper_shape(lsd),
            )
        )
    return rows
