"""The 0-round adversary from Theorem 4's endgame.

The last step of the lower bound shows no 0-round algorithm solves superweak
``k*``-coloring when ``k* <= (Delta - 3) / 2`` (with ``Delta > 16`` odd):
take the orientation pattern with ``(Delta-1)/2`` incoming and
``(Delta+1)/2`` outgoing ports; by pigeonhole two identifiers get the same
color; the first node must emit a demanding pointer somewhere, and the
second node -- having at most ``k*`` accepting pointers but strictly more
ports of each orientation -- has a compatible port with no accepting
pointer.  Wiring those two ports together (the adversary controls port
numbering) breaks the edge constraint.

This module is that adversary as an executable: it takes *any* candidate
0-round algorithm (a function of identifier and orientation pattern) and
either returns a concrete violation or reports that the pigeonhole
preconditions were not met (e.g. ``k*`` too large for the degree).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.problems.superweak import kind_counts_valid

Pattern = tuple[str, ...]  # "in"/"out" per port
# A 0-round algorithm: (identifier, orientation pattern) -> (color, kinds).
ZeroRoundAlgorithm = Callable[[int, Pattern], tuple[int, tuple[str, ...]]]

DEMANDING = "D"
ACCEPTING = "A"
PLAIN = "N"


def canonical_pattern(delta: int) -> Pattern:
    """The proof's pattern: (Delta-1)/2 incoming then (Delta+1)/2 outgoing ports."""
    if delta % 2 == 0:
        raise ValueError("the adversary argument needs odd degree")
    incoming = (delta - 1) // 2
    return ("in",) * incoming + ("out",) * (delta - incoming)


@dataclass(frozen=True)
class Violation:
    """A concrete refutation of a candidate 0-round algorithm."""

    kind: str  # "node" (invalid node output) or "edge" (broken edge)
    detail: str
    first_id: int
    second_id: int | None = None
    first_port: int | None = None
    second_port: int | None = None


def _node_violation(
    algorithm: ZeroRoundAlgorithm, identifier: int, pattern: Pattern, k_star: int
) -> Violation | None:
    color, kinds = algorithm(identifier, pattern)
    if len(kinds) != len(pattern):
        return Violation(
            kind="node",
            detail="algorithm emitted wrong number of port outputs",
            first_id=identifier,
        )
    demanding = sum(1 for kind in kinds if kind == DEMANDING)
    accepting = sum(1 for kind in kinds if kind == ACCEPTING)
    if not kind_counts_valid(k_star, demanding, accepting):
        return Violation(
            kind="node",
            detail=(
                f"node constraint broken: #D={demanding}, #A={accepting}, "
                f"k*={k_star}"
            ),
            first_id=identifier,
        )
    return None


def find_violation(
    algorithm: ZeroRoundAlgorithm,
    k_star: int,
    delta: int,
    id_pool: Sequence[int],
) -> Violation | None:
    """Run the Theorem 4 adversary against a candidate 0-round algorithm.

    Requires odd ``delta > 2 k_star + 2`` (so non-accepting ports of both
    orientations are guaranteed) and ``len(id_pool) > k_star`` (so the
    pigeonhole finds a monochromatic identifier pair).  Returns a
    :class:`Violation`, or None only when the preconditions fail.
    """
    if delta % 2 == 0 or delta <= 2 * k_star + 2:
        return None
    pattern = canonical_pattern(delta)

    # Step 0: per-node validity is itself a requirement of the problem.
    outputs: dict[int, tuple[int, tuple[str, ...]]] = {}
    for identifier in id_pool:
        node_issue = _node_violation(algorithm, identifier, pattern, k_star)
        if node_issue is not None:
            return node_issue
        outputs[identifier] = algorithm(identifier, pattern)

    # Step 1: pigeonhole two identifiers with equal colors.
    by_color: dict[int, int] = {}
    pair: tuple[int, int] | None = None
    for identifier in id_pool:
        color, _ = outputs[identifier]
        if color in by_color and by_color[color] != identifier:
            pair = (by_color[color], identifier)
            break
        by_color.setdefault(color, identifier)
    if pair is None:
        return None  # needs |id_pool| > number of colors used
    first_id, second_id = pair

    # Step 2: the first node emits a demanding pointer somewhere
    # (#D > #A >= 0 by node validity).
    _color, first_kinds = outputs[first_id]
    first_port = next(
        port for port, kind in enumerate(first_kinds) if kind == DEMANDING
    )
    needed_orientation = "out" if pattern[first_port] == "in" else "in"

    # Step 3: the second node has a non-accepting port of the orientation
    # that lets the adversary join the two ports into one consistent edge.
    _color2, second_kinds = outputs[second_id]
    second_port = next(
        (
            port
            for port, kind in enumerate(second_kinds)
            if kind != ACCEPTING and pattern[port] == needed_orientation
        ),
        None,
    )
    if second_port is None:
        # Impossible when k* <= (delta - 3) / 2: there are more ports of each
        # orientation than accepting pointers.  Defensive fallback only.
        return None
    return Violation(
        kind="edge",
        detail=(
            "same color, demanding pointer not answered by an accepting one: "
            f"color={outputs[first_id][0]}"
        ),
        first_id=first_id,
        second_id=second_id,
        first_port=first_port,
        second_port=second_port,
    )


# -- candidate algorithms for the adversary to defeat ----------------------


def constant_algorithm(delta: int) -> ZeroRoundAlgorithm:
    """Always color 1 and demand on the first port."""

    def algorithm(_identifier: int, pattern: Pattern) -> tuple[int, tuple[str, ...]]:
        kinds = [PLAIN] * len(pattern)
        kinds[0] = DEMANDING
        return 1, tuple(kinds)

    return algorithm


def id_parity_algorithm(delta: int) -> ZeroRoundAlgorithm:
    """Color by identifier parity, demand on every outgoing port."""

    def algorithm(identifier: int, pattern: Pattern) -> tuple[int, tuple[str, ...]]:
        kinds = tuple(
            DEMANDING if side == "out" else PLAIN for side in pattern
        )
        return 1 + identifier % 2, kinds

    return algorithm


def random_algorithm(delta: int, k_star: int, seed: int) -> ZeroRoundAlgorithm:
    """A random but node-valid 0-round algorithm (deterministic per identifier)."""

    def algorithm(identifier: int, pattern: Pattern) -> tuple[int, tuple[str, ...]]:
        rng = random.Random(hash((seed, identifier, pattern)))
        color = rng.randrange(1, k_star + 1)
        accepting = rng.randrange(0, min(k_star, (len(pattern) - 1) // 2) + 1)
        demanding = rng.randrange(accepting + 1, len(pattern) - accepting + 1)
        kinds = (
            [DEMANDING] * demanding
            + [ACCEPTING] * accepting
            + [PLAIN] * (len(pattern) - demanding - accepting)
        )
        rng.shuffle(kinds)
        return color, tuple(kinds)

    return algorithm
