"""Lemma 3: transform a ``Pi'_1`` solution into a superweak k'-coloring.

Lemma 3 is the algorithmic heart of the Theorem 4 speedup chain: any
algorithm solving ``Pi'_1`` (the derived problem of superweak k-coloring)
yields -- with *zero* extra rounds -- an algorithm for superweak k'-coloring
with ``k' = 2^(2^(5^k))``.  Each node locally:

1. collects its ``Pi'_1`` outputs ``Q_1..Q_Delta`` (sets of trit sequences,
   one per port) and the input edge orientations ``alpha``;
2. forms ``R = {(Q_i, beta_i)}`` where ``beta`` masks the dominant element
   ``P_infinity`` to ``none`` (Lemma 1);
3. outputs the color ``c(R)`` under a fixed injective table
   ``c : H_1(Delta) -> {1..k'}``;
4. outputs a *demanding* pointer on the ports of ``J*``, an *accepting*
   pointer on the ports of ``N(J*)`` (Lemma 2) and plain otherwise.

The correctness argument shows two same-colored neighbors joined by a
demanding pointer must see the accepting pointer come back.  This module
implements the node-local transformation; the simulation layer feeds it
graph-wide outputs and the verifier checks the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.superweak.lemma2 import NONE_BETA, PointerSets, _beta, compute_pointer_sets
from repro.superweak.membership import CondensedConfig
from repro.superweak.lemma1 import find_p_infinity, total_small_bound
from repro.superweak.tritseq import TritSeq

DEMANDING = "D"
ACCEPTING = "A"
PLAIN = "N"


def log2_k_prime(k: int) -> int:
    """``log2`` of the paper's ``k' = 2^(2^(5^k))`` -- i.e. ``2^(5^k)``."""
    return 2 ** (5**k)


def log2_distinct_r_bound(k: int) -> int:
    """An upper bound on ``log2`` of the proof's ``|H_1(Delta)|`` estimate.

    The proof bounds the number of distinct ``R`` multisets by
    ``(3 * 2^(3^k))^(2^(4^k) + 1)``; since ``3 * 2^(3^k) < 2^(3^k + 2)``, its
    ``log2`` is below ``(3^k + 2) * (2^(4^k) + 1)`` -- comfortably below
    ``log2(k') = 2^(5^k)``, which is the comparison Lemma 3 needs.  (The
    bound itself is returned rather than the full integer, which would have
    ~2^64 bits already at k = 3.)
    """
    return (3**k + 2) * (total_small_bound(k) + 1)


CanonicalR = tuple[tuple[tuple[TritSeq, ...], str], ...]


def canonical_r(
    q_list: list[frozenset[TritSeq]], alpha: list[str], k: int
) -> CanonicalR:
    """The canonical form of the multiset ``R_v = {(Q_i, beta_i)}``."""
    condensed = CondensedConfig.from_sequence(q_list)
    p_infinity = find_p_infinity(condensed, k).p_infinity
    betas = _beta(q_list, alpha, p_infinity)
    return tuple(
        sorted((tuple(sorted(q)), beta) for q, beta in zip(q_list, betas))
    )


@dataclass(frozen=True)
class SuperweakNodeOutput:
    """One node's superweak coloring output: a color plus a kind per port."""

    color: int
    kinds: tuple[str, ...]
    pointer_sets: PointerSets


@dataclass
class SuperweakColoringTransformer:
    """The Lemma 3 transformation with a shared injective color table.

    The color table plays the role of the fixed function
    ``c : H_1(Delta) -> {1..k'}``; in a distributed execution it is agreed
    upon in advance, here it is a registry filled on first use (injectivity
    is guaranteed by construction, and :meth:`within_color_budget` checks the
    ``k'`` bound).
    """

    k: int
    _table: dict[CanonicalR, int] = field(default_factory=dict)

    def color_of(self, r: CanonicalR) -> int:
        if r not in self._table:
            self._table[r] = len(self._table) + 1
        return self._table[r]

    @property
    def colors_used(self) -> int:
        return len(self._table)

    def within_color_budget(self) -> bool:
        """True iff the number of colors used respects ``k' = 2^(2^(5^k))``.

        Compared in the logarithm: ``log2(k') = 2^(5^k)`` always exceeds any
        practical table size, so this effectively asserts injectivity stayed
        affordable.
        """
        return self.colors_used.bit_length() <= log2_k_prime(self.k)

    def transform_node(
        self, q_list: list[frozenset[TritSeq]], alpha: list[str]
    ) -> SuperweakNodeOutput:
        """Apply Lemma 3 at one node.

        ``q_list[i]`` is the ``Pi'_1`` output at port ``i``; ``alpha[i]`` the
        input orientation ("in"/"out") of the incident edge.  Raises
        :class:`repro.superweak.lemma2.Lemma2Error` when the Lemma 2
        construction fails, i.e. the input was not a valid ``Pi'_1`` output
        for a degree in the lemma's range.
        """
        pointer_sets = compute_pointer_sets(q_list, alpha, self.k)
        color = self.color_of(canonical_r(q_list, alpha, self.k))
        kinds = []
        for port in range(len(q_list)):
            if port in pointer_sets.j_star:
                kinds.append(DEMANDING)
            elif port in pointer_sets.n_of_j_star:
                kinds.append(ACCEPTING)
            else:
                kinds.append(PLAIN)
        return SuperweakNodeOutput(
            color=color, kinds=tuple(kinds), pointer_sets=pointer_sets
        )
