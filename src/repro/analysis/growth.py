"""Description-complexity growth under iterated speedup (Section 2.1's motivation).

"In general, the description of an inferred problem Pi_i is much more complex
than the description of the original problem.  In fact, dealing with this
explosion in complexity is one of the main challenges in applying our
speedup."  This module measures that explosion: it iterates the speedup on a
problem, recording the alphabet and constraint sizes per step, stopping
cleanly when the engine's size guards trip (which is itself the documented
finding).  Fixed points (sinkless coloring) show the opposite regime --
constant-size descriptions forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import Problem
from repro.core.speedup import (
    MAX_CANDIDATE_CONFIGS,
    MAX_DERIVED_LABELS,
    MAX_LIVE_CONFIGS,
    EngineLimitError,
    compute_speedup,
)


@dataclass(frozen=True)
class GrowthRow:
    """Description metrics of one problem in an iterated-speedup sequence."""

    step: int
    labels: int
    edge_configs: int
    node_configs: int
    description_size: int
    blew_up: bool = False


def measure_growth(
    problem: Problem,
    steps: int,
    simplify: bool = True,
    *,
    max_derived_labels: int = MAX_DERIVED_LABELS,
    max_candidate_configs: int = MAX_CANDIDATE_CONFIGS,
    max_live_configs: int = MAX_LIVE_CONFIGS,
    kernel: str = "auto",
) -> list[GrowthRow]:
    """Iterate the speedup up to ``steps`` times, recording sizes per step.

    If a step exceeds the limits, a final row with ``blew_up=True`` is
    appended and the iteration stops -- the explosion the relaxation
    technique exists to tame.  The limits are explicit parameters because
    they *are* the measurement instrument here: since the streaming full
    step retired the a-priori grid refusal, detecting a blow-up under the
    default caps can mean minutes of real derivation work (the engine
    computes multi-thousand-label steps it used to refuse outright), so
    explosion studies should pick ceilings matched to the description sizes
    they consider "blown up".
    """
    rows = [
        GrowthRow(
            step=0,
            labels=len(problem.labels),
            edge_configs=len(problem.edge_constraint),
            node_configs=len(problem.node_constraint),
            description_size=problem.description_size,
        )
    ]
    current = problem
    for step in range(1, steps + 1):
        try:
            current = compute_speedup(
                current,
                simplify=simplify,
                max_derived_labels=max_derived_labels,
                max_candidate_configs=max_candidate_configs,
                max_live_configs=max_live_configs,
                kernel=kernel,
            ).full
        except EngineLimitError:
            rows.append(
                GrowthRow(
                    step=step,
                    labels=0,
                    edge_configs=0,
                    node_configs=0,
                    description_size=0,
                    blew_up=True,
                )
            )
            break
        rows.append(
            GrowthRow(
                step=step,
                labels=len(current.labels),
                edge_configs=len(current.edge_constraint),
                node_configs=len(current.node_constraint),
                description_size=current.description_size,
            )
        )
    return rows
