"""Small helpers for rendering experiment results as markdown tables."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_section(title: str, body: str) -> str:
    return f"## {title}\n\n{body}\n"
