"""A catalog-wide round-elimination survey.

Runs one speedup step (and the 0-round tests, and fixed-point detection)
across every problem in the catalog, producing the summary table a
practitioner would consult first: how the derived descriptions grow, which
problems are trivial, which hit fixed points.  This exercises the engine far
beyond the paper's own examples (the paper's Section 6 anticipates exactly
this use: "we expect many other problems to be solved by this technique").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.isomorphism import are_isomorphic
from repro.core.problem import Problem
from repro.core.speedup import EngineLimitError, speedup
from repro.core.zero_round import zero_round_no_input, zero_round_with_orientations


@dataclass(frozen=True)
class LandscapeRow:
    """One catalog problem's one-step round-elimination profile."""

    name: str
    delta: int
    labels: int
    zero_round_plain: bool
    zero_round_oriented: bool
    derived_labels: int | None
    derived_node_configs: int | None
    derived_zero_round_oriented: bool | None
    fixed_point: bool | None
    blew_up: bool

    def as_tuple(self) -> tuple:
        return (
            self.name,
            self.delta,
            self.labels,
            self.zero_round_plain,
            self.zero_round_oriented,
            self.derived_labels,
            self.derived_node_configs,
            self.derived_zero_round_oriented,
            self.fixed_point,
            self.blew_up,
        )


def survey_problem(problem: Problem) -> LandscapeRow:
    """One-step profile of a single problem."""
    zero_plain = zero_round_no_input(problem) is not None
    zero_oriented = zero_round_with_orientations(problem) is not None
    try:
        derived = speedup(problem).full
    except EngineLimitError:
        return LandscapeRow(
            name=problem.name,
            delta=problem.delta,
            labels=len(problem.labels),
            zero_round_plain=zero_plain,
            zero_round_oriented=zero_oriented,
            derived_labels=None,
            derived_node_configs=None,
            derived_zero_round_oriented=None,
            fixed_point=None,
            blew_up=True,
        )
    return LandscapeRow(
        name=problem.name,
        delta=problem.delta,
        labels=len(problem.labels),
        zero_round_plain=zero_plain,
        zero_round_oriented=zero_oriented,
        derived_labels=len(derived.labels),
        derived_node_configs=len(derived.node_constraint),
        derived_zero_round_oriented=zero_round_with_orientations(derived) is not None,
        fixed_point=are_isomorphic(derived.compressed(), problem.compressed()),
        blew_up=False,
    )


def survey_catalog(delta: int = 3, names: list[str] | None = None) -> list[LandscapeRow]:
    """Profile every cataloged family instantiable at ``delta``."""
    from repro.problems.catalog import catalog

    rows = []
    for name, family in sorted(catalog().items()):
        if names is not None and name not in names:
            continue
        if family.min_delta > delta:
            continue
        rows.append(survey_problem(family(delta)))
    return rows


def landscape_markdown(rows: list[LandscapeRow]) -> str:
    """Render the survey as a markdown table."""
    from repro.analysis.report import render_table

    headers = [
        "problem",
        "delta",
        "|labels|",
        "0-round",
        "0-round (orient)",
        "|labels| after speedup",
        "|h'_1|",
        "derived 0-round (orient)",
        "fixed point",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.name,
                row.delta,
                row.labels,
                "yes" if row.zero_round_plain else "no",
                "yes" if row.zero_round_oriented else "no",
                "blow-up" if row.blew_up else row.derived_labels,
                "-" if row.blew_up else row.derived_node_configs,
                "-" if row.blew_up else ("yes" if row.derived_zero_round_oriented else "no"),
                "-" if row.blew_up else ("yes" if row.fixed_point else "no"),
            ]
        )
    return render_table(headers, body)
