"""A catalog-wide round-elimination survey.

Runs one speedup step (and the 0-round tests, and fixed-point detection)
across every problem in the catalog, producing the summary table a
practitioner would consult first: how the derived descriptions grow, which
problems are trivial, which hit fixed points.  With ``search_steps > 0``
each row additionally runs the automated lower-bound search
(:mod:`repro.search`) and reports the bound it could certify -- a
discovered-bounds column for the landscape.  With ``classify_steps > 0``
each row instead runs the full two-sided classifier
(:meth:`repro.engine.Engine.classify`) and reports the resulting
complexity bracket and verdict.  This exercises the engine far
beyond the paper's own examples (the paper's Section 6 anticipates exactly
this use: "we expect many other problems to be solved by this technique").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.engine.engine import Engine

from repro.core.isomorphism import are_isomorphic
from repro.core.problem import Problem
from repro.core.speedup import EngineLimitError
from repro.core.zero_round import zero_round_no_input, zero_round_with_orientations


@dataclass(frozen=True)
class LandscapeRow:
    """One catalog problem's one-step round-elimination profile.

    ``search_bound`` / ``search_unbounded`` are filled only when the survey
    ran the lower-bound search (``search_steps > 0``): the number of rounds
    the discovered certificate proves unsolvable, and whether the search
    found a pumpable fixed point (the Omega(log n) outcome).

    ``classification`` / ``classify_verdict`` are filled only when the
    survey ran the two-sided classifier (``classify_steps > 0``): the
    rendered complexity bracket (e.g. ``[1, 1]`` or ``[Omega(log n)]``) and
    its ``tight`` / ``gap`` / ``open`` verdict.
    """

    name: str
    delta: int
    labels: int
    zero_round_plain: bool
    zero_round_oriented: bool
    derived_labels: int | None
    derived_node_configs: int | None
    derived_zero_round_oriented: bool | None
    fixed_point: bool | None
    blew_up: bool
    search_bound: int | None = None
    search_unbounded: bool | None = None
    classification: str | None = None
    classify_verdict: str | None = None

    def as_tuple(self) -> tuple:
        return (
            self.name,
            self.delta,
            self.labels,
            self.zero_round_plain,
            self.zero_round_oriented,
            self.derived_labels,
            self.derived_node_configs,
            self.derived_zero_round_oriented,
            self.fixed_point,
            self.blew_up,
            self.search_bound,
            self.search_unbounded,
            self.classification,
            self.classify_verdict,
        )


def _run_search(
    problem: Problem, engine: "Engine", search_steps: int
) -> tuple[int | None, bool]:
    result = engine.search_lower_bound(problem, max_steps=search_steps)
    if result.certificate is None:
        # Trivial (0-round solvable): no lower bound exists to discover.
        return None, False
    return result.certificate.claimed_bound, result.unbounded


def _run_classify(
    problem: Problem, engine: "Engine", classify_steps: int
) -> tuple[str, str]:
    bracket = engine.classify(problem, max_steps=classify_steps).bracket
    if bracket.unbounded:
        rendered = "[Omega(log n)]"
    else:
        high = "?" if bracket.max_rounds is None else bracket.max_rounds
        rendered = f"[{bracket.min_rounds}, {high}]"
    return rendered, bracket.verdict


def survey_problem(
    problem: Problem,
    *,
    engine: "Engine | None" = None,
    search_steps: int = 0,
    classify_steps: int = 0,
) -> LandscapeRow:
    """One-step profile of a single problem (plus an optional bound search)."""
    if engine is None:
        from repro.engine import get_default_engine

        engine = get_default_engine()
    zero_plain = zero_round_no_input(problem) is not None
    zero_oriented = zero_round_with_orientations(problem) is not None
    search_bound: int | None = None
    search_unbounded: bool | None = None
    if search_steps > 0:
        search_bound, search_unbounded = _run_search(problem, engine, search_steps)
    classification: str | None = None
    classify_verdict: str | None = None
    if classify_steps > 0:
        classification, classify_verdict = _run_classify(
            problem, engine, classify_steps
        )
    try:
        derived = engine.speedup(problem).full
    except EngineLimitError:
        return LandscapeRow(
            name=problem.name,
            delta=problem.delta,
            labels=len(problem.labels),
            zero_round_plain=zero_plain,
            zero_round_oriented=zero_oriented,
            derived_labels=None,
            derived_node_configs=None,
            derived_zero_round_oriented=None,
            fixed_point=None,
            blew_up=True,
            search_bound=search_bound,
            search_unbounded=search_unbounded,
            classification=classification,
            classify_verdict=classify_verdict,
        )
    return LandscapeRow(
        name=problem.name,
        delta=problem.delta,
        labels=len(problem.labels),
        zero_round_plain=zero_plain,
        zero_round_oriented=zero_oriented,
        derived_labels=len(derived.labels),
        derived_node_configs=len(derived.node_constraint),
        derived_zero_round_oriented=zero_round_with_orientations(derived) is not None,
        fixed_point=are_isomorphic(derived.compressed(), problem.compressed()),
        blew_up=False,
        search_bound=search_bound,
        search_unbounded=search_unbounded,
        classification=classification,
        classify_verdict=classify_verdict,
    )


def survey_catalog(
    delta: int = 3,
    names: list[str] | None = None,
    *,
    engine: "Engine | None" = None,
    search_steps: int = 0,
    classify_steps: int = 0,
) -> list[LandscapeRow]:
    """Profile every cataloged family instantiable at ``delta``."""
    from repro.problems.catalog import catalog

    rows = []
    for name, family in sorted(catalog().items()):
        if names is not None and name not in names:
            continue
        if family.min_delta > delta:
            continue
        rows.append(
            survey_problem(
                family(delta),
                engine=engine,
                search_steps=search_steps,
                classify_steps=classify_steps,
            )
        )
    return rows


def _render_search_cell(row: LandscapeRow) -> str:
    if row.search_unbounded:
        return "Omega(log n)"
    if row.search_bound is None:
        return "-"
    return f">{row.search_bound} rounds"


def _render_classify_cell(row: LandscapeRow) -> str:
    if row.classification is None:
        return "-"
    return f"{row.classification} {row.classify_verdict}"


def landscape_markdown(rows: list[LandscapeRow]) -> str:
    """Render the survey as a markdown table."""
    from repro.analysis.report import render_table

    headers = [
        "problem",
        "delta",
        "|labels|",
        "0-round",
        "0-round (orient)",
        "|labels| after speedup",
        "|h'_1|",
        "derived 0-round (orient)",
        "fixed point",
        "discovered bound",
        "classification",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.name,
                row.delta,
                row.labels,
                "yes" if row.zero_round_plain else "no",
                "yes" if row.zero_round_oriented else "no",
                "blow-up" if row.blew_up else row.derived_labels,
                "-" if row.blew_up else row.derived_node_configs,
                "-" if row.blew_up else ("yes" if row.derived_zero_round_oriented else "no"),
                "-" if row.blew_up else ("yes" if row.fixed_point else "no"),
                _render_search_cell(row),
                _render_classify_cell(row),
            ]
        )
    return render_table(headers, body)
