"""The paper's flagship certificate, built on :mod:`repro.core.certificate`.

The certificate *type* (an alternating chain of re-derivable speedup steps
and label-map-certified relaxations, with an independent ``verify()`` and a
JSON wire format) lives in :mod:`repro.core.certificate`; this module keeps
the analysis-facing conveniences:

* :func:`sinkless_certificate` constructs the Section 4.4 proof object --
  sinkless coloring speeds up to (an isomorphic copy of) itself, and the
  isomorphism, being in particular a relaxation map, closes the loop -- as
  an explicit ``rounds``-deep chain;
* :func:`check_certificate` is the re-verification entry point the
  experiment drivers and benchmarks call.
"""

from __future__ import annotations

from repro.core.certificate import (
    RELAXATION,
    SPEEDUP,
    TERMINAL_FIXED_POINT,
    TERMINAL_UNSOLVABLE,
    CertificateCheck,
    CertificateError,
    CertificateStep,
    LowerBoundCertificate,
)
from repro.core.isomorphism import find_isomorphism
from repro.core.relaxation import certify_relaxation
from repro.core.speedup import speedup


def check_certificate(certificate: LowerBoundCertificate) -> CertificateCheck:
    """Re-verify every link and the terminal claim from scratch."""
    return certificate.verify()


def sinkless_certificate(delta: int, rounds: int) -> LowerBoundCertificate:
    """Build the Section 4.4 certificate: sinkless coloring needs > ``rounds`` rounds.

    Each speedup step lands on a problem isomorphic to sinkless coloring
    (the fixed point), which is then *relaxed back* to the canonical
    sinkless coloring via the isomorphism, letting the chain repeat
    indefinitely.  Since the fixed point is never 0-round solvable, every
    ``rounds`` yields a valid certificate -- on girth-(2t+2) classes this is
    the Omega(log n) bound.
    """
    from repro.problems.sinkless import sinkless_coloring

    base = sinkless_coloring(delta)
    steps: list[CertificateStep] = []
    current = base
    for _ in range(rounds):
        result = speedup(current)
        derived = result.full
        steps.append(CertificateStep(kind=SPEEDUP, problem=derived, speedup=result))
        mapping = find_isomorphism(derived.compressed(), base.compressed())
        if mapping is None:
            raise AssertionError("sinkless fixed point failed -- engine regression")
        steps.append(
            CertificateStep(
                kind=RELAXATION,
                problem=base,
                relaxation=certify_relaxation(derived, base, mapping),
            )
        )
        current = base
    return LowerBoundCertificate(
        initial=base, steps=tuple(steps), terminal=TERMINAL_UNSOLVABLE
    )
