"""Machine-checkable lower-bound certificates.

A round-elimination lower bound is a *chain*: starting from ``Pi``, each link
is either a speedup step (justified by Theorem 1/2 -- re-derivable by the
engine) or a relaxation step (justified by an explicit label map -- checkable
by :mod:`repro.core.relaxation`).  If after ``t`` speedup links the final
problem is still not 0-round solvable (in the chain's input setting), then
``Pi`` is not solvable in ``t`` rounds on the matching girth-restricted,
t-independent class.

:func:`check_certificate` re-verifies every link from scratch, so a
certificate is a self-contained, independently auditable proof object --
the analogue of exporting a Round Eliminator derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.isomorphism import find_isomorphism
from repro.core.problem import Problem
from repro.core.relaxation import is_relaxation_map
from repro.core.speedup import speedup
from repro.core.zero_round import is_zero_round_solvable


class LinkKind(str, Enum):
    SPEEDUP = "speedup"
    RELAXATION = "relaxation"


@dataclass(frozen=True)
class ChainLink:
    """One certified step: the resulting problem plus its justification."""

    kind: LinkKind
    problem: Problem
    # For RELAXATION links: the label map from the previous problem.
    mapping: dict[str, str] | None = None


@dataclass(frozen=True)
class LowerBoundCertificate:
    """A full chain from the initial problem to a non-0-round-solvable end."""

    initial: Problem
    links: tuple[ChainLink, ...]
    orientations: bool = True

    @property
    def speedup_steps(self) -> int:
        return sum(1 for link in self.links if link.kind is LinkKind.SPEEDUP)

    @property
    def claimed_bound(self) -> int:
        return self.speedup_steps


@dataclass(frozen=True)
class CertificateCheck:
    """The verdict of re-verifying a certificate."""

    valid: bool
    failures: tuple[str, ...]
    bound: int


def check_certificate(certificate: LowerBoundCertificate) -> CertificateCheck:
    """Re-verify every link and the final 0-round test."""
    failures: list[str] = []
    current = certificate.initial
    for index, link in enumerate(certificate.links):
        if link.kind is LinkKind.SPEEDUP:
            derived = speedup(current).full
            # The certified problem must be the derived problem up to
            # renaming (certificates may store canonicalised copies).
            if find_isomorphism(
                derived.compressed(), link.problem.compressed()
            ) is None:
                failures.append(
                    f"link {index}: speedup result does not match certified problem"
                )
        else:
            if link.mapping is None:
                failures.append(f"link {index}: relaxation link without a map")
            elif not is_relaxation_map(current, link.problem, link.mapping):
                failures.append(
                    f"link {index}: label map does not certify the relaxation"
                )
        current = link.problem
    if is_zero_round_solvable(current, orientations=certificate.orientations):
        failures.append("final problem is 0-round solvable; chain proves nothing")
    return CertificateCheck(
        valid=not failures,
        failures=tuple(failures),
        bound=certificate.claimed_bound if not failures else 0,
    )


def sinkless_certificate(delta: int, rounds: int) -> LowerBoundCertificate:
    """Build the Section 4.4 certificate: sinkless coloring needs > ``rounds`` rounds.

    Each speedup link lands on a problem isomorphic to sinkless coloring (the
    fixed point), which is then *relaxed back* to the canonical sinkless
    coloring via the isomorphism (an isomorphism is in particular a
    relaxation map), letting the chain repeat indefinitely.  Since the fixed
    point is never 0-round solvable, every ``rounds`` yields a valid
    certificate -- on girth-(2t+2) classes this is the Omega(log n) bound.
    """
    from repro.problems.sinkless import sinkless_coloring

    base = sinkless_coloring(delta)
    links: list[ChainLink] = []
    current = base
    for _ in range(rounds):
        derived = speedup(current).full
        links.append(ChainLink(kind=LinkKind.SPEEDUP, problem=derived))
        mapping = find_isomorphism(derived.compressed(), base.compressed())
        if mapping is None:
            raise AssertionError("sinkless fixed point failed -- engine regression")
        links.append(
            ChainLink(kind=LinkKind.RELAXATION, problem=base, mapping=mapping)
        )
        current = base
    return LowerBoundCertificate(initial=base, links=tuple(links))
