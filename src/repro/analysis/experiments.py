"""Experiment drivers: one function per reproduced claim (E1..E13).

Each driver re-derives a checkable statement of the paper with the library's
machinery and returns a structured result object; the benchmark harnesses in
``benchmarks/`` time them, and EXPERIMENTS.md records their outputs.  See
DESIGN.md Section 5 for the experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from itertools import combinations, product
from math import comb

from repro.core.isomorphism import are_isomorphic, find_isomorphism
from repro.core.problem import Problem
from repro.core.speedup import half_step
from repro.core.zero_round import zero_round_no_input, zero_round_with_orientations
from repro.engine import get_default_engine
from repro.problems.coloring import coloring
from repro.problems.sinkless import sinkless_coloring, sinkless_orientation
from repro.problems.superweak import superweak, weak2_to_superweak2_map
from repro.problems.weak_coloring import weak_coloring_pointer


# -- E1: sinkless coloring / sinkless orientation (Section 4.4) -------------


@dataclass(frozen=True)
class SinklessResult:
    delta: int
    half_is_sinkless_orientation: bool
    full_is_sinkless_coloring: bool
    zero_round_with_orientations: bool
    zero_round_no_input: bool

    @property
    def reproduces_paper(self) -> bool:
        return (
            self.half_is_sinkless_orientation
            and self.full_is_sinkless_coloring
            and not self.zero_round_with_orientations
            and not self.zero_round_no_input
        )


def run_sinkless(delta: int) -> SinklessResult:
    """E1: the speedup of sinkless coloring is a fixed point through sinkless
    orientation, and never 0-round solvable -- the Omega(log n) bound."""
    sc = sinkless_coloring(delta)
    so = sinkless_orientation(delta)
    half = half_step(sc).problem.compressed()
    full = get_default_engine().speedup(sc).full.compressed()
    return SinklessResult(
        delta=delta,
        half_is_sinkless_orientation=are_isomorphic(half, so.compressed()),
        full_is_sinkless_coloring=are_isomorphic(full, sc.compressed()),
        zero_round_with_orientations=zero_round_with_orientations(sc) is not None,
        zero_round_no_input=zero_round_no_input(sc) is not None,
    )


# -- E2: color reduction on rings (Section 4.5) ------------------------------


def _complementary_pairs(k: int) -> list[tuple[frozenset[int], frozenset[int]]]:
    """The ``C(k, k/2)/2`` complementary pairs of ``k/2``-subsets of ``{1..k}``."""
    if k % 2 != 0 or k < 4:
        raise ValueError("the construction needs even k >= 4")
    ground = frozenset(range(1, k + 1))
    pairs = []
    seen: set[frozenset[int]] = set()
    for half in (frozenset(c) for c in combinations(sorted(ground), k // 2)):
        if half in seen:
            continue
        complement_set = ground - half
        pairs.append((half, complement_set))
        seen.add(half)
        seen.add(complement_set)
    return pairs


def paper_hardening_labels(k: int) -> list[frozenset[frozenset[int]]]:
    """The Section 4.5 construction of ``f*_1``: the labels of ``Pi*_1``.

    Each label is a set ``Y`` of ``k/2``-element subsets of ``{1..k}`` such
    that for every ``k/2``-subset ``Z``, exactly one of ``Z`` and its
    complement lies in ``Y``.  Their number is ``2^(C(k, k/2) / 2)`` --
    materialised only while that count is small (k <= 6); for larger ``k``
    use :func:`sample_hardening_labels`.
    """
    pairs = _complementary_pairs(k)
    if 2 ** len(pairs) > 4096:
        raise OverflowError(
            f"2^{len(pairs)} labels is too many to materialise; sample instead"
        )
    labels = []
    for selection in product((0, 1), repeat=len(pairs)):
        labels.append(
            frozenset(pair[choice] for pair, choice in zip(pairs, selection))
        )
    return labels


def sample_hardening_labels(k: int, count: int) -> list[frozenset[frozenset[int]]]:
    """A deterministic sample of ``f*_1`` labels for large ``k``.

    Selections are derived from a seeded generator, so experiments are
    reproducible without materialising the doubly exponential label set.
    """
    import random

    pairs = _complementary_pairs(k)
    rng = random.Random(20190226)  # the paper's arXiv date
    samples = []
    chosen: set[tuple[int, ...]] = set()
    while len(samples) < count:
        selection = tuple(rng.randint(0, 1) for _ in pairs)
        if selection in chosen:
            continue
        chosen.add(selection)
        samples.append(
            frozenset(pair[choice] for pair, choice in zip(pairs, selection))
        )
    return samples


@dataclass(frozen=True)
class ColorReductionResult:
    k: int
    k_prime: int
    expected_k_prime: int
    pairwise_edge_property: bool
    diagonal_node_property: bool
    doubly_exponential: bool
    exhaustive: bool

    @property
    def reproduces_paper(self) -> bool:
        return (
            self.k_prime == self.expected_k_prime
            and self.pairwise_edge_property
            and self.diagonal_node_property
        )


def run_color_reduction(k: int, sample_size: int = 64) -> ColorReductionResult:
    """E2: the ``Pi*_1`` hardening of Section 4.5 is k'-coloring.

    Verifies the label count ``2^(C(k, k/2)/2)``, the two structural
    properties the paper proves (any two distinct labels contain a
    complementary pair -- so ``{Y, Z}`` is in ``g_1``; the members of a single
    label pairwise intersect -- so ``{Y, Y}`` is in ``h_1``), and the
    doubly-exponential growth ``k' >= 2^(2^(k/2))`` for ``k >= 6``.

    For ``k <= 6`` the label set is materialised and checked exhaustively;
    beyond that it is doubly exponential (2^35 already at k = 8), so the
    count is computed arithmetically and the properties are verified on a
    deterministic sample of ``sample_size`` labels.
    """
    expected = 2 ** (comb(k, k // 2) // 2)
    try:
        labels = paper_hardening_labels(k)
        exhaustive = True
        k_prime = len(labels)
    except OverflowError:
        labels = sample_hardening_labels(k, sample_size)
        exhaustive = False
        k_prime = expected  # by construction: one free bit per pair
    ground = frozenset(range(1, k + 1))

    def complementary_pair_exists(
        first: frozenset[frozenset[int]], second: frozenset[frozenset[int]]
    ) -> bool:
        return any(ground - y in second for y in first)

    pairwise = all(
        complementary_pair_exists(a, b)
        for a, b in combinations(labels, 2)
    )
    diagonal = all(
        bool(y & z)
        for label in labels
        for y in label
        for z in label
    )
    return ColorReductionResult(
        k=k,
        k_prime=k_prime,
        expected_k_prime=expected,
        pairwise_edge_property=pairwise,
        diagonal_node_property=diagonal,
        doubly_exponential=(k < 6) or (k_prime >= 2 ** (2 ** (k // 2))),
        exhaustive=exhaustive,
    )


def embedded_coloring_size(derived: Problem) -> int:
    """Largest ``k'`` such that k'-coloring embeds in a derived ring problem.

    A k'-coloring sub-problem is a set of labels, each with its diagonal
    ``(l, l)`` in the node constraint, pairwise connected in the edge
    constraint.  This is a maximum clique over the diagonal labels -- the
    engine-side counterpart of the Section 4.5 hardening.
    """
    import networkx as nx

    diagonal = [
        label
        for label in derived.labels
        if (label, label) in derived.node_constraint
    ]
    graph = nx.Graph()
    graph.add_nodes_from(diagonal)
    for a, b in combinations(diagonal, 2):
        if derived.allows_edge(a, b):
            graph.add_edge(a, b)
    best = 0
    for clique in nx.find_cliques(graph):
        best = max(best, len(clique))
    return best


# -- E3: weak 2-coloring (Section 4.6) ---------------------------------------


@dataclass(frozen=True)
class Weak2Result:
    delta: int
    usable_half_labels: int
    usable_edge_rows: int
    trit_description_isomorphic: bool
    h1_size: int
    self_compatible_configs: int

    @property
    def reproduces_paper(self) -> bool:
        # "there are only 7 outputs that can be used", 4 usable rows (the
        # paper lists 5, one involving the unusable empty set), and "h_1(D)
        # actually contains only 9 elements (or fewer if D is very small)".
        return (
            self.usable_half_labels == 7
            and self.usable_edge_rows == 4
            and self.trit_description_isomorphic
            and self.h1_size == 9
        )


def run_weak2(delta: int) -> Weak2Result:
    """E3: the Section 4.6 analysis of weak 2-coloring's derived problems."""
    from repro.superweak.equivalents import weak2_half_equivalent

    problem = weak_coloring_pointer(2, delta)
    half = half_step(problem)
    half_problem = half.problem.compressed()
    result = get_default_engine().speedup(problem)
    full = result.full

    # A config can be shared by a node and ALL its neighbors iff every entry
    # has an edge partner within the config's support (each neighbor arranges
    # the same multiset freely).  The paper's special element Q is among
    # these -- the one that defeats the naive weak 9-coloring relaxation.
    from repro.superweak.weak9 import fully_self_compatible_configs

    self_compatible = len(fully_self_compatible_configs(full))

    return Weak2Result(
        delta=delta,
        usable_half_labels=len(half_problem.labels),
        usable_edge_rows=len(half_problem.edge_constraint),
        trit_description_isomorphic=are_isomorphic(
            half_problem, weak2_half_equivalent(delta).compressed()
        ),
        h1_size=len(full.node_constraint),
        self_compatible_configs=self_compatible,
    )


# -- E4: superweak half-step equivalence (Section 5.1) -----------------------


@dataclass(frozen=True)
class SuperweakHalfResult:
    k: int
    delta: int
    isomorphic: bool
    engine_labels: int
    expected_labels: int

    @property
    def reproduces_paper(self) -> bool:
        return self.isomorphic and self.engine_labels == self.expected_labels


def run_superweak_half(k: int, delta: int) -> SuperweakHalfResult:
    """E4: the engine's ``Pi'_{1/2}`` of superweak k is the trit-sequence problem."""
    from repro.superweak.equivalents import superweak_half_equivalent

    engine = half_step(superweak(k, delta)).problem.compressed()
    equivalent = superweak_half_equivalent(k, delta).compressed()
    return SuperweakHalfResult(
        k=k,
        delta=delta,
        isomorphic=are_isomorphic(engine, equivalent),
        engine_labels=len(engine.labels),
        expected_labels=len(equivalent.labels),
    )


# -- E5/E6/E7 helpers: engine-derived superweak Pi'_1 in trit form -----------


from functools import lru_cache


@lru_cache(maxsize=8)
def superweak_full_in_trit_form(
    k: int, delta: int
) -> tuple[Problem, dict[str, frozenset[str]]]:
    """The engine's ``Pi'_1`` of superweak k plus label -> set-of-tritseqs map.

    Cached twice over: the lru_cache memoises the trit mapping, and the
    engine's content-addressed cache memoises the derivation itself.
    """
    from repro.superweak.equivalents import superweak_half_equivalent

    result = get_default_engine().speedup(superweak(k, delta))
    mapping = find_isomorphism(
        result.half.compressed(),
        superweak_half_equivalent(k, delta).compressed(),
    )
    if mapping is None:
        raise AssertionError("half-step trit equivalence failed -- regression")
    to_trit = {
        label: frozenset(mapping[h] for h in result.full_meaning[label])
        for label in result.full.labels
    }
    return result.full, to_trit


@dataclass(frozen=True)
class MembershipCrossCheck:
    k: int
    delta: int
    configs: int
    all_property_a: bool
    all_maximal: bool
    oracle_matches_bruteforce: bool


def run_membership_crosscheck(k: int, delta: int) -> MembershipCrossCheck:
    """E5: the condensed MILP oracle agrees with the engine and brute force.

    Every engine-derived ``h'_1`` element must satisfy Property A and
    Property B according to the condensed-count oracle; on the same inputs
    the explicit brute-force checker must agree with the MILP decision.
    """
    from repro.superweak.membership import (
        CondensedConfig,
        is_maximal,
        property_a_bruteforce,
        property_a_holds,
    )

    full, to_trit = superweak_full_in_trit_form(k, delta)
    all_a = True
    all_b = True
    agree = True
    for config in sorted(full.node_constraint):
        condensed = CondensedConfig.from_sequence([to_trit[lbl] for lbl in config])
        a = property_a_holds(condensed, k)
        all_a = all_a and a
        all_b = all_b and is_maximal(condensed, k)
        agree = agree and (a == property_a_bruteforce(condensed, k))
    return MembershipCrossCheck(
        k=k,
        delta=delta,
        configs=len(full.node_constraint),
        all_property_a=all_a,
        all_maximal=all_b,
        oracle_matches_bruteforce=agree,
    )


@dataclass(frozen=True)
class Lemma3LocalCheck:
    k: int
    delta: int
    same_r_pairs_checked: int
    violations_under_hypothesis: int
    violations_total: int

    @property
    def reproduces_paper(self) -> bool:
        """No violation may occur where Lemma 1's conclusion holds."""
        return self.violations_under_hypothesis == 0


def run_lemma3_local_check(
    k: int, delta: int, max_configs: int | None = None
) -> Lemma3LocalCheck:
    """E7 (local half): the Lemma 3 demanding/accepting promise.

    For every pair of same-R adjacent node outputs with opposite orientations
    on the shared edge, a demanding pointer must be answered by an accepting
    one -- *whenever* the dominant element P_infinity is unique and contains
    ``11...1`` (Lemma 1's conclusion).  Violations outside that hypothesis
    are expected (the degree is far below ``2^(4^k) + 1``) and counted
    separately: their existence demonstrates the hypothesis is not vacuous.

    ``max_configs`` limits the number of node configurations scanned (for
    fast test variants); the benchmarks run the full scan.
    """
    from repro.superweak.lemma1 import find_p_infinity
    from repro.superweak.lemma2 import Lemma2Error, compute_pointer_sets, g1_allows
    from repro.superweak.lemma3 import canonical_r
    from repro.superweak.membership import CondensedConfig

    full, to_trit = superweak_full_in_trit_form(k, delta)
    checked = 0
    violations_good = 0
    violations_all = 0
    configs = sorted(full.node_constraint)
    if max_configs is not None:
        configs = configs[:max_configs]
    for config in configs:
        q = [to_trit[lbl] for lbl in config]
        p_inf = find_p_infinity(CondensedConfig.from_sequence(q), k)
        hypothesis = p_inf.contains_all_ones and p_inf.unique_dominant
        for i in range(delta):
            for j in range(delta):
                if not g1_allows(q[i], q[j]):
                    continue
                for rest_u in product(("in", "out"), repeat=delta - 1):
                    alpha_u = list(rest_u[:i]) + ["out"] + list(rest_u[i:])
                    for rest_v in product(("in", "out"), repeat=delta - 1):
                        alpha_v = list(rest_v[:j]) + ["in"] + list(rest_v[j:])
                        if canonical_r(q, alpha_u, k) != canonical_r(q, alpha_v, k):
                            continue
                        try:
                            pu = compute_pointer_sets(q, alpha_u, k)
                            pv = compute_pointer_sets(q, alpha_v, k)
                        except Lemma2Error:
                            continue
                        checked += 1
                        if i in pu.j_star and j not in pv.n_of_j_star:
                            violations_all += 1
                            if hypothesis:
                                violations_good += 1
    return Lemma3LocalCheck(
        k=k,
        delta=delta,
        same_r_pairs_checked=checked,
        violations_under_hypothesis=violations_good,
        violations_total=violations_all,
    )


@dataclass(frozen=True)
class Lemma3GraphDemo:
    k: int
    delta: int
    n: int
    solution_valid: bool
    superweak_valid: bool
    colors_used: int
    within_budget: bool

    @property
    def reproduces_paper(self) -> bool:
        return self.solution_valid and self.superweak_valid and self.within_budget


def run_lemma3_graph_demo(k: int = 2, delta: int = 4) -> Lemma3GraphDemo:
    """E7 (graph half): a full Lemma 3 run on the 4-dimensional hypercube.

    Builds a valid ``Pi'_1`` solution on ``Q_4`` (two node classes whose port
    labels pair up along each dimension), orients all edges from even to odd
    parity, transforms every node via Lemma 3, and verifies the result is a
    correct superweak coloring.
    """
    import networkx as nx

    from repro.sim.ports import InputLabeling, PortGraph
    from repro.sim.verifier import solves, verify_superweak_coloring
    from repro.superweak.lemma2 import Lemma2Error, compute_pointer_sets, g1_allows
    from repro.superweak.lemma3 import SuperweakColoringTransformer
    from repro.utils.matching import maximum_bipartite_matching

    if delta != 4:
        raise ValueError("the hypercube demo is built for delta = 4")
    full, to_trit = superweak_full_in_trit_form(k, delta)
    configs = sorted(full.node_constraint)

    chosen = None
    for even_cfg in configs:
        for odd_cfg in configs:
            adjacency = {
                i: [
                    j
                    for j in range(delta)
                    if g1_allows(to_trit[even_cfg[i]], to_trit[odd_cfg[j]])
                ]
                for i in range(delta)
            }
            matching = maximum_bipartite_matching(adjacency)
            if len(matching) < delta:
                continue
            try:
                compute_pointer_sets(
                    [to_trit[x] for x in even_cfg], ["out"] * delta, k
                )
                compute_pointer_sets(
                    [to_trit[x] for x in odd_cfg], ["in"] * delta, k
                )
            except Lemma2Error:
                continue
            chosen = (even_cfg, odd_cfg, matching)
            break
        if chosen:
            break
    if chosen is None:
        raise AssertionError("no bipartite configuration pair found -- regression")
    even_cfg, odd_cfg, matching = chosen

    graph = nx.hypercube_graph(4)
    graph = nx.relabel_nodes(
        graph, {node: sum(bit << i for i, bit in enumerate(node)) for node in graph.nodes}
    )
    order = {v: [v ^ (1 << d) for d in range(4)] for v in graph.nodes}
    pg = PortGraph(graph, order)

    def parity(v: int) -> int:
        return bin(v).count("1") % 2

    outputs = {}
    for v in graph.nodes:
        for d in range(4):
            outputs[(v, d)] = even_cfg[d] if parity(v) == 0 else odd_cfg[matching[d]]

    orientation = {}
    for u, v in graph.edges:
        tail, head = (u, v) if parity(u) == 0 else (v, u)
        key = (u, v) if u <= v else (v, u)
        orientation[key] = (tail, head)
    inputs = InputLabeling(orientation=orientation)

    transformer = SuperweakColoringTransformer(k=k)
    colors: dict[int, int] = {}
    kinds: dict[tuple[int, int], str] = {}
    for v in pg.nodes():
        q_list = [to_trit[outputs[(v, port)]] for port in range(4)]
        alpha = [inputs.orientation_at(pg, v, port) for port in range(4)]
        node_out = transformer.transform_node(q_list, alpha)
        colors[v] = node_out.color
        for port, kind in enumerate(node_out.kinds):
            kinds[(v, port)] = kind

    return Lemma3GraphDemo(
        k=k,
        delta=delta,
        n=graph.number_of_nodes(),
        solution_valid=solves(full, pg, outputs),
        superweak_valid=verify_superweak_coloring(
            graph, pg, max(2, transformer.colors_used), colors, kinds
        ),
        colors_used=transformer.colors_used,
        within_budget=transformer.within_color_budget(),
    )


# -- E10: maximality costs nothing (Theorem 2) --------------------------------


@dataclass(frozen=True)
class MaximalityResult:
    problem_name: str
    zero_round_match: bool
    simplified_relaxes_raw: bool

    @property
    def reproduces_paper(self) -> bool:
        return self.zero_round_match and self.simplified_relaxes_raw


def run_maximality(problem: Problem) -> MaximalityResult:
    """E10: simplified and unsimplified derivations agree on solvability.

    Checks (a) equal 0-round solvability (with orientations) of the derived
    problems and (b) that the simplified problem maps into the unsimplified
    one by a relaxation map (every Pi'_1 solution is a Pi_1 solution --
    Theorem 2's easy direction), so neither derivation can be strictly
    harder in 0 rounds.

    The relaxation map is *constructed*, not searched: both derivations
    carry meanings over the same original alphabet, and a simplified label
    (a set of Galois-closed sets) denotes the same set of sets as the raw
    label with equal meaning -- identity on meanings is the embedding.
    """
    from repro.core.relaxation import is_relaxation_map

    engine = get_default_engine()
    simplified_result = engine.speedup(problem, simplify=True)
    raw_result = engine.speedup(problem, simplify=False)
    simplified = simplified_result.full.compressed()
    raw = raw_result.full.compressed()
    zero_simplified = zero_round_with_orientations(simplified) is not None
    zero_raw = zero_round_with_orientations(raw) is not None

    raw_by_meaning = {
        frozenset(raw_result.full_label_as_original_sets(label)): label
        for label in raw.labels
    }
    mapping: dict[str, str] = {}
    for label in simplified.usable_labels:
        meaning = frozenset(simplified_result.full_label_as_original_sets(label))
        target = raw_by_meaning.get(meaning)
        if target is None:
            break
        mapping[label] = target
    relaxes = len(mapping) == len(simplified.usable_labels) and is_relaxation_map(
        simplified, raw, mapping
    )
    return MaximalityResult(
        problem_name=problem.name,
        zero_round_match=(zero_simplified == zero_raw),
        simplified_relaxes_raw=relaxes,
    )


# -- E11: t-independence of ring classes (Figure 1) ---------------------------


@dataclass(frozen=True)
class IndependenceResult:
    n: int
    t: int
    colored_class_independent: bool
    id_class_independent: bool

    @property
    def reproduces_paper(self) -> bool:
        """Colorings pass; unique IDs fail (the paper's Section 2.2 point)."""
        return self.colored_class_independent and not self.id_class_independent


def run_independence(n: int = 5, t: int = 1, num_colors: int = 3) -> IndependenceResult:
    """E11: ring classes with colorings are t-independent; with unique IDs not."""
    from itertools import permutations as iter_permutations

    from repro.sim.independence import check_t_independence
    from repro.sim.ports import InputLabeling, PortGraph
    from repro.sim.speedup_exec import ColoredRingClass

    colored = ColoredRingClass(n=n, num_colors=num_colors)
    colored_report = check_t_independence(colored.instances(), t)

    # The unique-ID class: all assignments of n distinct IDs from {1..n+1}.
    from repro.sim.graphs import ring as ring_graph

    graph = ring_graph(n)

    def id_instances() -> Iterator[tuple[PortGraph, InputLabeling]]:
        pool = range(1, n + 2)
        for chosen in iter_permutations(pool, n):
            ids = {v: chosen[v] for v in range(n)}
            yield PortGraph(graph), InputLabeling(ids=ids)

    id_report = check_t_independence(id_instances(), t)
    return IndependenceResult(
        n=n,
        t=t,
        colored_class_independent=colored_report.independent,
        id_class_independent=id_report.independent,
    )
