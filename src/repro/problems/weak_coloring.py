"""Weak k-coloring, pointer version (Section 4.6).

Plain weak coloring ("some neighbor has a different color") is not
edge-checkable, so the paper works with the *pointer version* Pi: each node
outputs a color and points to exactly one neighbor; a pointer must target a
node of a different color.  Any weak-coloring algorithm becomes a
pointer-version algorithm with one extra round (each node learns neighbors'
colors and aims its pointer), so lower bounds for Pi transfer.

Labels are ``<color>P`` ("this port carries my pointer") and ``<color>N``
("no pointer here").  Following the paper, the encoding targets
delta-regular graphs: a node configuration is delta outputs of one color
with exactly one ``P``.
"""

from __future__ import annotations

from repro.core.family import ProblemFamily
from repro.core.problem import Problem
from repro.problems.coloring import color_labels

POINTER = "P"
NO_POINTER = "N"


def weak_coloring_labels(k: int) -> list[str]:
    """All output labels of the pointer version of weak k-coloring."""
    return [color + kind for color in color_labels(k) for kind in (POINTER, NO_POINTER)]


def split_label(label: str) -> tuple[str, str]:
    """Split ``c07P`` into ``('c07', 'P')``."""
    return label[:-1], label[-1]


def weak_coloring_pointer(k: int, delta: int) -> Problem:
    """The pointer version of weak k-coloring, per Section 4.6.

    ``g`` allows a pair iff the colors differ or neither side points
    (``y != z  or  y' = N = z'``); ``h`` forces one color repeated on all
    ports with exactly one pointer.
    """
    if k < 2:
        raise ValueError("weak coloring needs at least 2 colors")
    labels = weak_coloring_labels(k)
    edge_configs = []
    for first in labels:
        for second in labels:
            color_a, kind_a = split_label(first)
            color_b, kind_b = split_label(second)
            if color_a != color_b or (kind_a == NO_POINTER and kind_b == NO_POINTER):
                edge_configs.append((first, second))
    node_configs = [
        (color + POINTER,) + (color + NO_POINTER,) * (delta - 1)
        for color in color_labels(k)
    ]
    return Problem.make(
        name=f"weak-{k}-coloring[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=labels,
    )


def weak_coloring_family(k: int) -> ProblemFamily:
    """Degree-indexed family for the pointer version of weak k-coloring."""
    return ProblemFamily(
        name=f"weak-{k}-coloring",
        builder=lambda delta: weak_coloring_pointer(k, delta),
        min_delta=2,
        description=(
            f"Pointer version of weak {k}-coloring (Section 4.6): point to a "
            "differently colored neighbor."
        ),
    )
