"""Registry of all problem families shipped with the library."""

from __future__ import annotations

from repro.core.family import ProblemFamily
from repro.core.problem import Problem
from repro.problems.coloring import coloring_family, edge_coloring_family
from repro.problems.handshake import INDEGREE_HANDSHAKE
from repro.problems.misc import MAXIMAL_MATCHING, MIS, PERFECT_MATCHING
from repro.problems.sinkless import SINKLESS_COLORING, SINKLESS_ORIENTATION
from repro.problems.superweak import superweak_family
from repro.problems.weak_coloring import weak_coloring_family

_STATIC_FAMILIES: dict[str, ProblemFamily] = {
    family.name: family
    for family in (
        SINKLESS_COLORING,
        SINKLESS_ORIENTATION,
        INDEGREE_HANDSHAKE,
        MIS,
        PERFECT_MATCHING,
        MAXIMAL_MATCHING,
    )
}


def catalog() -> dict[str, ProblemFamily]:
    """All statically named families plus small parameterised instances."""
    families = dict(_STATIC_FAMILIES)
    for k in (2, 3, 4, 5, 6):
        families[f"{k}-coloring"] = coloring_family(k)
    for k in (2, 3):
        families[f"weak-{k}-coloring"] = weak_coloring_family(k)
        families[f"superweak-{k}-coloring"] = superweak_family(k)
    for k in (3, 4):
        families[f"{k}-edge-coloring"] = edge_coloring_family(k)
    return families


def get_family(name: str) -> ProblemFamily:
    """Look up a family by name; raises KeyError with the available names."""
    families = catalog()
    if name not in families:
        available = ", ".join(sorted(families))
        raise KeyError(f"unknown problem family {name!r}; available: {available}")
    return families[name]


def get_problem(name: str, delta: int) -> Problem:
    """Instantiate a cataloged family at the given degree."""
    return get_family(name)(delta)


def resolve_problem_spec(spec: str, delta: int) -> Problem:
    """Resolve a CLI-style problem spec to a catalog instance.

    Family names use hyphens; shell users habitually type underscores
    (``sinkless_orientation``), so both spellings are accepted.  Raises
    KeyError (with the available names) for unknown families and ValueError
    when the family rejects the degree.
    """
    return get_problem(spec.replace("_", "-"), delta)
