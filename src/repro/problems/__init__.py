"""Concrete locally checkable problems in the paper's formal encoding."""

from repro.problems.catalog import catalog, get_family, get_problem
from repro.problems.coloring import (
    color_labels,
    coloring,
    coloring_family,
    edge_coloring,
    edge_coloring_family,
)
from repro.problems.handshake import INDEGREE_HANDSHAKE, indegree_handshake
from repro.problems.misc import (
    MAXIMAL_MATCHING,
    MIS,
    PERFECT_MATCHING,
    maximal_matching,
    mis,
    perfect_matching,
)
from repro.problems.sinkless import (
    SINKLESS_COLORING,
    SINKLESS_ORIENTATION,
    sinkless_coloring,
    sinkless_orientation,
)
from repro.problems.superweak import (
    superweak,
    superweak_family,
    superweak_labels,
    weak2_to_superweak2_map,
)
from repro.problems.weak_coloring import (
    weak_coloring_family,
    weak_coloring_labels,
    weak_coloring_pointer,
)

__all__ = [
    "INDEGREE_HANDSHAKE",
    "MAXIMAL_MATCHING",
    "MIS",
    "PERFECT_MATCHING",
    "SINKLESS_COLORING",
    "SINKLESS_ORIENTATION",
    "catalog",
    "color_labels",
    "coloring",
    "coloring_family",
    "edge_coloring",
    "edge_coloring_family",
    "get_family",
    "get_problem",
    "indegree_handshake",
    "maximal_matching",
    "mis",
    "perfect_matching",
    "sinkless_coloring",
    "sinkless_orientation",
    "superweak",
    "superweak_family",
    "superweak_labels",
    "weak2_to_superweak2_map",
    "weak_coloring_family",
    "weak_coloring_labels",
    "weak_coloring_pointer",
]
