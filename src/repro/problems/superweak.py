"""Superweak k-coloring (Section 5.1), the engine of the Theorem 4 bound.

Each node outputs one color from ``{1..k}`` plus, per port, one of three
pointer kinds: *demanding* (``D``, the paper's right arrow), *accepting*
(``A``, the paper's left tack) or *plain* (``N``, the paper's bullet).
Validity:

* per node (``h``): one color on all ports, and
  ``min(k + 1, #demanding) > #accepting`` -- strictly more demanding than
  accepting pointers, with the demanding count capped at ``k + 1`` (which
  also enforces ``#accepting <= k``);
* per edge (``g``): different colors, or neither side points, or at least
  one side accepts.

Superweak 2-coloring is a relaxation of the pointer version of weak
2-coloring (a single demanding pointer and no accepting ones), so lower
bounds for superweak coloring transfer to weak 2-coloring -- which is how
Theorem 4 concludes.
"""

from __future__ import annotations

from repro.core.family import ProblemFamily
from repro.core.problem import Problem
from repro.problems.coloring import color_labels
from repro.utils.multiset import multisets_of_size

DEMANDING = "D"
ACCEPTING = "A"
PLAIN = "N"
KINDS = (DEMANDING, ACCEPTING, PLAIN)


def superweak_labels(k: int) -> list[str]:
    """All output labels of superweak k-coloring: ``<color><kind>``."""
    return [color + kind for color in color_labels(k) for kind in KINDS]


def split_label(label: str) -> tuple[str, str]:
    """Split ``c1D`` into ``('c1', 'D')``."""
    return label[:-1], label[-1]


def kind_counts_valid(k: int, demanding: int, accepting: int) -> bool:
    """The node-side counting condition: ``min(k+1, #D) > #A``."""
    return min(k + 1, demanding) > accepting


def superweak(k: int, delta: int) -> Problem:
    """Superweak k-coloring at degree delta, exactly as defined in Section 5.1."""
    if k < 2:
        raise ValueError("superweak coloring needs k >= 2")
    labels = superweak_labels(k)

    edge_configs = []
    for first in labels:
        for second in labels:
            color_a, kind_a = split_label(first)
            color_b, kind_b = split_label(second)
            if (
                color_a != color_b
                or (kind_a == PLAIN and kind_b == PLAIN)
                or ACCEPTING in (kind_a, kind_b)
            ):
                edge_configs.append((first, second))

    node_configs = []
    for color in color_labels(k):
        for kinds in multisets_of_size(KINDS, delta):
            demanding = kinds.count(DEMANDING)
            accepting = kinds.count(ACCEPTING)
            if kind_counts_valid(k, demanding, accepting):
                node_configs.append(tuple(color + kind for kind in kinds))

    return Problem.make(
        name=f"superweak-{k}-coloring[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=labels,
    )


def superweak_family(k: int) -> ProblemFamily:
    """Degree-indexed family for superweak k-coloring."""
    return ProblemFamily(
        name=f"superweak-{k}-coloring",
        builder=lambda delta: superweak(k, delta),
        min_delta=2,
        description=(
            f"Superweak {k}-coloring (Section 5.1): demanding/accepting/plain "
            "pointers with min(k+1, #D) > #A per node."
        ),
    )


def weak2_to_superweak2_map(delta: int) -> dict[str, str]:
    """The label map certifying superweak 2-coloring relaxes weak 2-coloring.

    A single pointer becomes a demanding pointer, no-pointer stays plain:
    ``cP -> cD`` and ``cN -> cN`` for both colors.  Used with
    :func:`repro.core.relaxation.is_relaxation_map` in tests and experiments.
    """
    mapping = {}
    for color in color_labels(2):
        mapping[color + "P"] = color + DEMANDING
        mapping[color + "N"] = color + PLAIN
    return mapping
