"""The in-degree handshake problem: a finite-complexity classifier showcase.

Every catalog problem so far sits at one of the extremes the paper's
machinery detects immediately: 0-round solvable, or an Omega(log n)
fixed point.  The classifier (``python -m repro classify``) needs a problem
whose round complexity is finite and positive, so that a lower-bound chain
*and* an upper-bound chase both terminate with certificates and the bracket
closes.  This module provides one.

In the orientation-input setting (Theorem 2), every directed edge carries a
*handshake*: the tail announces the pair ``(x, y)`` -- its own in-degree
``x`` and the head's in-degree ``y`` -- with a tail label ``t{x}{y}``, and
the head must answer with the matching head label ``h{x}{y}``.  The edge
constraint allows exactly the matched pairs ``{t{x}{y}, h{x}{y}}``; the node
constraint forces a node of in-degree ``s`` to answer ``h{*}{s}`` on its
``s`` in-ports (its own in-degree is the second coordinate) and claim
``t{s}{*}`` on its ``delta - s`` out-ports (its own in-degree is the first).

Zero rounds are not enough: a node sees only its own orientation pattern,
so the tail of an edge cannot know the head's in-degree -- whatever ``y`` it
commits to, the adversary realises a head of a different in-degree (any
``delta >= 2`` gives at least two head in-degree values ``1..delta``).  One
round suffices trivially: each node learns its neighbours' in-degrees and
fills in the exact pairs.  The speedup formalises this: at ``delta == 2``
the derived problem ``Pi_1`` is 0-round solvable, so the automatic
classifier brackets the complexity to exactly one round, certified in both
directions.

At ``delta >= 3`` the family stays well-defined, but the derived ``Pi_1``
explodes past the default enumeration guards (the 18 half labels of
``d=3`` stream more than ``10^5`` filters), so the chase reports ``open``
under default caps -- a realistic outcome the landscape survey records.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, product

from repro.core.family import ProblemFamily
from repro.core.problem import Problem


def _tail(x: int, y: int) -> str:
    """Tail label: this endpoint has in-degree ``x``, the head in-degree ``y``."""
    return f"t{x}{y}"


def _head(x: int, y: int) -> str:
    """Head label matching :func:`_tail`'s claim on the same edge."""
    return f"h{x}{y}"


def indegree_handshake(delta: int) -> Problem:
    """The in-degree handshake problem at degree ``delta``.

    A tail's in-degree is at most ``delta - 1`` (the edge itself leaves it)
    and a head's is at least ``1`` (the edge itself enters it), so the claim
    alphabet is ``t{x}{y}`` / ``h{x}{y}`` with ``x in 0..delta-1`` and
    ``y in 1..delta``.  A node of in-degree ``s`` picks any multiset of
    ``s`` head answers ``h{*}{s}`` and ``delta - s`` tail claims ``t{s}{*}``.
    """
    if delta < 2:
        raise ValueError("indegree-handshake needs delta >= 2")
    tail_xs = range(delta)
    head_ys = range(1, delta + 1)
    edge_configs = [(_tail(x, y), _head(x, y)) for x in tail_xs for y in head_ys]
    node_configs = []
    for s in range(delta + 1):
        in_choices = (
            [()]
            if s == 0
            else list(
                combinations_with_replacement([_head(x, s) for x in tail_xs], s)
            )
        )
        out_choices = (
            [()]
            if s == delta
            else list(
                combinations_with_replacement(
                    [_tail(s, y) for y in head_ys], delta - s
                )
            )
        )
        for ins, outs in product(in_choices, out_choices):
            node_configs.append(ins + outs)
    return Problem.make(
        name=f"indegree-handshake[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=[_tail(x, y) for x in tail_xs for y in head_ys]
        + [_head(x, y) for x in tail_xs for y in head_ys],
    )


INDEGREE_HANDSHAKE = ProblemFamily(
    name="indegree-handshake",
    builder=indegree_handshake,
    min_delta=2,
    description=(
        "Matched in-degree claims on every directed edge; exactly one round "
        "at delta=2 (the classifier's tight-bracket showcase)."
    ),
)
