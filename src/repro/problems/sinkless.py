"""Sinkless orientation and sinkless coloring (Section 4.4).

*Sinkless coloring*: each node outputs 1 on exactly one port ("I choose the
color of this edge") and 0 elsewhere; an edge may not have both endpoints
output 1.  *Sinkless orientation*: an edge has exactly one endpoint output 1
("oriented away from me") and every node has at least one outgoing edge.

These are the paper's warm-up: applying the (simplified) speedup to sinkless
coloring yields sinkless orientation as ``Pi'_{1/2}`` and sinkless coloring
again as ``Pi'_1`` -- the fixed point behind the Omega(log n) lower bound of
Brandt et al. [STOC'16], reproduced automatically here.
"""

from __future__ import annotations

from repro.core.family import ProblemFamily
from repro.core.problem import Problem
from repro.utils.multiset import multisets_of_size


def sinkless_coloring(delta: int) -> Problem:
    """Sinkless coloring exactly as specified in Section 4.4.

    ``f = O = {0, 1}``, ``g = {{0,0}, {0,1}}``, ``h = {{0,...,0,1}}``.
    """
    config = ("0",) * (delta - 1) + ("1",)
    return Problem.make(
        name=f"sinkless-coloring[d={delta}]",
        delta=delta,
        edge_configs=[("0", "0"), ("0", "1")],
        node_configs=[config],
        labels=["0", "1"],
    )


def sinkless_orientation(delta: int) -> Problem:
    """Sinkless orientation in the split-output encoding of Section 4.4.

    An output 1 at ``(v, e)`` means ``v`` orients ``e`` away from itself.
    Consistency requires exactly one endpoint to output 1 per edge
    (``g = {{0,1}}``); sinklessness requires each node to output at least one
    1 (``h`` = all configurations containing a 1).
    """
    node_configs = [
        config
        for config in multisets_of_size(["0", "1"], delta)
        if "1" in config
    ]
    return Problem.make(
        name=f"sinkless-orientation[d={delta}]",
        delta=delta,
        edge_configs=[("0", "1")],
        node_configs=node_configs,
        labels=["0", "1"],
    )


SINKLESS_COLORING = ProblemFamily(
    name="sinkless-coloring",
    builder=sinkless_coloring,
    min_delta=2,
    description="Section 4.4: each node picks one incident edge; edges not picked twice.",
)

SINKLESS_ORIENTATION = ProblemFamily(
    name="sinkless-orientation",
    builder=sinkless_orientation,
    min_delta=2,
    description="Section 4.4: orient all edges so that no node is a sink.",
)
