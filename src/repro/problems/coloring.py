"""Proper node coloring and edge coloring in the split-output encoding.

``k``-coloring (Section 4.5): a node outputs the same color on every port;
adjacent nodes output different colors.  On rings (delta = 2) one speedup
step turns ``k``-coloring into ``k'``-coloring with
``k' = 2^(C(k, k/2) / 2)`` -- the doubly exponential color reduction that
reproduces the O(log* n) upper bound for 3-coloring.

``k``-edge-coloring: a node outputs pairwise distinct colors on its ports;
the two endpoints of an edge output the same color for it.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.family import ProblemFamily
from repro.core.problem import Problem


def color_labels(k: int) -> list[str]:
    """The color alphabet ``c1..ck`` (zero-padded for deterministic sorting)."""
    width = len(str(k))
    return [f"c{i:0{width}d}" for i in range(1, k + 1)]


def coloring(k: int, delta: int) -> Problem:
    """Proper ``k``-coloring of nodes, encoded on ports per Section 4.5.

    ``h`` forces a node to repeat one color on all ports; ``g`` forbids equal
    colors across an edge.
    """
    if k < 2:
        raise ValueError("coloring needs at least 2 colors")
    labels = color_labels(k)
    return Problem.make(
        name=f"{k}-coloring[d={delta}]",
        delta=delta,
        edge_configs=[(a, b) for a, b in combinations(labels, 2)],
        node_configs=[(c,) * delta for c in labels],
        labels=labels,
    )


def edge_coloring(k: int, delta: int) -> Problem:
    """Proper ``k``-edge-coloring: distinct colors per node, equal per edge."""
    if k < delta:
        raise ValueError("edge coloring needs at least delta colors")
    labels = color_labels(k)
    return Problem.make(
        name=f"{k}-edge-coloring[d={delta}]",
        delta=delta,
        edge_configs=[(c, c) for c in labels],
        node_configs=list(combinations(labels, delta)),
        labels=labels,
    )


def coloring_family(k: int) -> ProblemFamily:
    """Degree-indexed family for proper ``k``-coloring."""
    return ProblemFamily(
        name=f"{k}-coloring",
        builder=lambda delta: coloring(k, delta),
        min_delta=1,
        description=f"Proper {k}-coloring in the split-output encoding (Section 4.5).",
    )


def edge_coloring_family(k: int) -> ProblemFamily:
    """Degree-indexed family for proper ``k``-edge-coloring."""
    return ProblemFamily(
        name=f"{k}-edge-coloring",
        builder=lambda delta: edge_coloring(k, delta),
        min_delta=1,
        description=f"Proper {k}-edge-coloring in the split-output encoding.",
    )
