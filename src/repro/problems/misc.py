"""Further locally checkable problems: MIS, matchings.

These are not analysed in the paper itself, but the follow-up work it
highlights (Balliu et al. [2], the maximal matching / MIS lower bounds)
applies the same speedup; having the encodings in the catalog lets the
engine run on them and exercises it beyond the paper's own examples.
"""

from __future__ import annotations

from repro.core.family import ProblemFamily
from repro.core.problem import Problem

# Maximal independent set, pointer encoding:
#   I -- "I am in the set" (on every port of a set node);
#   P -- "I am not in the set; this port points to my dominator";
#   O -- "I am not in the set" (other ports).
IN_SET = "I"
DOMINATOR_POINTER = "P"
OUT_SET = "O"


def mis(delta: int) -> Problem:
    """Maximal independent set in a pointer encoding.

    Independence: no edge may connect two set nodes ({I, I} forbidden).
    Maximality: every non-set node points at a set neighbor ({P, x} allowed
    only for x = I).
    """
    node_configs = [
        (IN_SET,) * delta,
        tuple(sorted((DOMINATOR_POINTER,) + (OUT_SET,) * (delta - 1))),
    ]
    edge_configs = [
        (IN_SET, OUT_SET),
        (IN_SET, DOMINATOR_POINTER),
        (OUT_SET, OUT_SET),
    ]
    return Problem.make(
        name=f"mis[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=[IN_SET, DOMINATOR_POINTER, OUT_SET],
    )


# Matching encodings: M on both endpoints of a matched edge, O elsewhere,
# P on every port of an unmatched node (maximal matching only).
MATCHED = "M"
UNMATCHED_POINTER = "P"
FREE = "O"


def perfect_matching(delta: int) -> Problem:
    """Perfect matching: every node matched along exactly one edge.

    An edge belongs to the matching iff *both* endpoints output M on it, so
    the mixed pair {M, O} is forbidden (the endpoints would disagree).
    """
    return Problem.make(
        name=f"perfect-matching[d={delta}]",
        delta=delta,
        edge_configs=[(MATCHED, MATCHED), (FREE, FREE)],
        node_configs=[tuple(sorted((MATCHED,) + (FREE,) * (delta - 1)))],
        labels=[MATCHED, FREE],
    )


def maximal_matching(delta: int) -> Problem:
    """Maximal matching: matched nodes use one M; unmatched nodes emit all P.

    An edge is in the matching iff both endpoints say M on it; a P port
    (unmatched node) must face a matched node's port (M or O), so two
    unmatched nodes can never be adjacent -- maximality.
    """
    node_configs = [
        tuple(sorted((MATCHED,) + (FREE,) * (delta - 1))),
        (UNMATCHED_POINTER,) * delta,
    ]
    edge_configs = [
        (MATCHED, MATCHED),
        (FREE, FREE),
        (FREE, UNMATCHED_POINTER),
    ]
    return Problem.make(
        name=f"maximal-matching[d={delta}]",
        delta=delta,
        edge_configs=edge_configs,
        node_configs=node_configs,
        labels=[MATCHED, UNMATCHED_POINTER, FREE],
    )


MIS = ProblemFamily(
    name="mis",
    builder=mis,
    min_delta=2,
    description="Maximal independent set, pointer encoding.",
)

PERFECT_MATCHING = ProblemFamily(
    name="perfect-matching",
    builder=perfect_matching,
    min_delta=2,
    description="Perfect matching in the split-output encoding.",
)

MAXIMAL_MATCHING = ProblemFamily(
    name="maximal-matching",
    builder=maximal_matching,
    min_delta=2,
    description="Maximal matching, pointer encoding (cf. Balliu et al. [2]).",
)
