"""Root conftest: repository-wide pytest options.

Lives at the rootdir (not under tests/) so the option is registered no
matter which directory or file the run targets.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden files under tests/goldens/ instead of "
        "comparing against them (see tests/test_goldens.py)",
    )
