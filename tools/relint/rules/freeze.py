"""Certificates are immutable proof objects outside their defining modules.

A :class:`LowerBoundCertificate` that can be patched after construction is
not a proof; ``verify()`` would be checking whatever the patcher left
behind.  The dataclasses are ``frozen=True``, but ``object.__setattr__``
(and attribute writes on non-frozen wrappers holding certificates) walk
straight through that.  Outside ``core/certificate.py`` and
``core/relaxation.py`` any attribute write whose target expression smells
certificate-valued is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.astutil import (
    assigned_attribute_targets,
    dotted_name,
    identifier_tokens,
)
from tools.relint.engine import FileContext, Rule, Violation


def _certificate_valued(node: ast.expr) -> bool:
    return any(
        any(token in ident.lower() for token in config.CERTIFICATE_TOKENS)
        for ident in identifier_tokens(node)
    )


class FrozenCertificateRule(Rule):
    id = "frozen-certificate"
    description = (
        "certificate objects must not be mutated after construction outside "
        "core/certificate.py and core/relaxation.py"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if (
            ctx.in_packages(("core",))
            and ctx.module_file in config.CERTIFICATE_MODULES
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.stmt):
                for target in assigned_attribute_targets(node):
                    if _certificate_valued(target):
                        yield ctx.violation(
                            self.id,
                            node,
                            "attribute write into a certificate-valued object",
                        )
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) in {"object.__setattr__", "setattr"}
                and node.args
                and _certificate_valued(node.args[0])
            ):
                yield ctx.violation(
                    self.id,
                    node,
                    "setattr on a certificate bypasses its frozen dataclass",
                )
