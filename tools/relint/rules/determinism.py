"""Serialized output must never depend on hash iteration order.

Canonical hashes, certificate JSON, and golden files are byte-compared
across runs and machines (and, by the determinism test, across
``PYTHONHASHSEED`` values).  Any function that feeds those sinks --
``to_dict``-style methods and anything calling ``json.dump(s)`` or
``atomic_write_json`` -- must only iterate dict views and sets through
``sorted(...)``.  Dict *insertion* order is deterministic in isolation but
is exactly the thing refactors silently reorder, and set order is seeded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.astutil import call_name, functions
from tools.relint.engine import FileContext, Rule, Violation

_VIEW_METHODS = {"items", "keys", "values"}
_SET_BUILDERS = {"set", "frozenset"}


def _is_serialization_context(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if func.name in config.SERIALIZATION_FUNCTIONS:
        return True
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and call_name(node) in config.SERIALIZATION_SINKS:
            return True
    return False


def _unsorted_unordered_iter(node: ast.expr) -> str | None:
    """Describe the unordered iterable, or None when it is fine."""
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name == "sorted":
            return None
        if name in _VIEW_METHODS and isinstance(node.func, ast.Attribute):
            return f".{name}() view"
        if name in _SET_BUILDERS and isinstance(node.func, ast.Name):
            return f"{name}() result"
        # enumerate/zip/reversed wrap their first argument's order.
        if name in {"enumerate", "zip", "reversed", "tuple", "list"} and node.args:
            return _unsorted_unordered_iter(node.args[0])
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set display"
    return None


class UnorderedSerializationRule(Rule):
    id = "unordered-serialization"
    description = (
        "functions feeding serialized output (to_dict / json.dump(s) / "
        "atomic_write_json) must wrap dict-view and set iteration in sorted()"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.repro_parts is None:
            return
        for func in functions(ctx.tree):
            if not _is_serialization_context(func):
                continue
            for node in ast.walk(func):
                iters: list[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    reason = _unsorted_unordered_iter(it)
                    if reason is not None:
                        yield ctx.violation(
                            self.id,
                            it,
                            f"iteration over unordered {reason} inside "
                            f"serialization context '{func.name}'; wrap in sorted()",
                        )
