"""No silent broad exception swallows.

Cache and memo code has a documented contract: a failure either re-raises
or *degrades to a recorded miss* -- never vanishes.  A handler catching
``Exception``/``BaseException`` (or a bare ``except``) whose body is only
``pass``/``...``/``continue`` destroys that audit trail and, worse, eats
``EngineLimitError`` and assertion failures wholesale.  Narrow, typed
catches with trivial bodies remain legal under *this* rule: the type
names the failure being tolerated.  (Pass-only ``OSError`` handlers in
the repro package are separately policed by ``broad-fault-swallow``,
which demands ``contextlib.suppress`` or a counted failure.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint.engine import FileContext, Rule, Violation

_BROAD = {"Exception", "BaseException"}


def _broad_catch(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        name = node.id if isinstance(node, ast.Name) else (
            node.attr if isinstance(node, ast.Attribute) else None
        )
        if name in _BROAD:
            return True
    return False


def _trivial_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ``...``
        return False
    return True


class SilentSwallowRule(Rule):
    id = "silent-swallow"
    description = (
        "broad except (bare / Exception / BaseException) with a pass-only "
        "body silently swallows failures; record a miss, narrow the type, "
        "or re-raise"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ExceptHandler)
                and _broad_catch(node)
                and _trivial_body(node.body)
            ):
                yield ctx.violation(
                    self.id,
                    node,
                    "broad exception handler swallows the failure silently",
                )
