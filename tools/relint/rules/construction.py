"""No raw ``Problem(...)`` construction outside the core kernel.

``Problem.__post_init__`` validates shape, but only ``Problem.make`` (and
``from_dict``, which routes through it) canonicalises user input -- sorting
edge configs, deduplicating node configs, normalising names.  ``search``
and ``engine`` code calling the bare constructor must therefore hand it
*already canonical* tuples, an invariant one refactor away from silently
breaking canonical-hash dedup.  Route through the classmethods instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.engine import FileContext, Rule, Violation


class RawProblemRule(Rule):
    id = "raw-problem"
    description = (
        "search/ and engine/ must build problems via Problem.make or "
        "Problem.from_dict, never the raw constructor"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_packages(config.RAW_PROBLEM_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            raw = (isinstance(func, ast.Name) and func.id == "Problem") or (
                isinstance(func, ast.Attribute) and func.attr == "Problem"
            )
            if raw:
                yield ctx.violation(
                    self.id,
                    node,
                    "raw Problem(...) construction bypasses canonicalization; "
                    "use Problem.make(...)",
                )
