"""Batched-kernel hygiene: no per-candidate matching calls inside loops.

``repro.core.vectorkernel`` batch-evaluates the hot folds -- Galois
closure, Hall-condition feasibility (``mask_matching_exists``), and the
filter enumeration's membership oracle -- over whole candidate blocks at
once.  Inside the modules that have those batched equivalents
(:data:`tools.relint.config.VECTORIZED_MODULES`), calling the scalar
entry points per candidate *inside a loop* quietly reintroduces the
O(candidates) Python-level fold the kernel exists to remove.

The scalar paths that legitimately remain -- memoised fallbacks whose
cache makes the per-call cost amortised-constant, and the mask-tier
completion walk that *is* the non-numpy fallback -- carry explicit
``# relint: allow[unbatched-matching]`` markers, which doubles as an
inventory of exactly where the scalar tier survives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.astutil import call_name
from tools.relint.engine import FileContext, Rule, Violation


class UnbatchedMatchingRule(Rule):
    id = "unbatched-matching"
    description = (
        "in modules with a batched vector equivalent, per-candidate matching "
        "calls (mask_matching_exists/allows) must not run inside loops"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_packages(config.HOT_PACKAGES):
            return
        if ctx.module_file not in config.VECTORIZED_MODULES:
            return
        yield from self._scan(ctx, ctx.tree, depth=0)

    def _scan(self, ctx: FileContext, node: ast.AST, depth: int) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_depth += 1
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                child_depth += len(child.generators)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested function resets the loop context: it is *called*
                # somewhere, and the call site's depth is what matters.
                child_depth = 0
            if (
                isinstance(child, ast.Call)
                and call_name(child) in config.MATCHING_CALLS
                and child_depth >= 1
            ):
                yield ctx.violation(
                    self.id,
                    child,
                    f"per-candidate matching call '{call_name(child)}' at loop "
                    f"depth {child_depth}; batch it through the vector kernel "
                    "or mark the scalar fallback with allow[unbatched-matching]",
                )
            yield from self._scan(ctx, child, child_depth)
