"""Pool-breakage and OSError handling stay centralized and audited.

PR 10 concentrated every broad infrastructure-fault recovery decision --
rebuilding a broken process pool, quarantining poison tasks, degrading to
in-process execution -- in :mod:`repro.engine.resilience`.  A stray
``except BrokenProcessPool`` elsewhere would fork that policy: the handler
either duplicates the recovery loop (drift) or swallows the breakage and
returns partial results (corruption).  Likewise ``except OSError: pass``
hides disk faults the caches are contractually required to *count*
(``store_failures``); tolerated I/O failures must be visible as
``contextlib.suppress(OSError)``, a recorded counter, or a returned
sentinel -- never an invisible ``pass``.

Two checks, both scoped to the ``repro`` package and both exempting
``repro/engine/resilience.py`` (the one sanctioned home):

* any handler whose type mentions ``BrokenExecutor``/``BrokenProcessPool``/
  ``BrokenThreadPool``;
* an ``OSError`` (or alias) handler whose body is only ``pass``/``...``.

``continue``-bodied handlers inside loops stay legal: skipping one entry
of a sweep is per-item tolerance, not policy.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint.engine import FileContext, Rule, Violation

#: Executor-breakage types whose handling is resilience.py's monopoly.
_BROKEN = {"BrokenExecutor", "BrokenProcessPool", "BrokenThreadPool"}

#: OSError and its pre-3.3 aliases.
_OS_ERRORS = {"OSError", "IOError", "EnvironmentError"}

#: The one module allowed to catch pool breakage (virtual-path suffix).
_SANCTIONED = ("repro", "engine", "resilience.py")


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    if handler.type is None:
        return set()
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    names = set()
    for node in types:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _pass_only(body: list[ast.stmt]) -> bool:
    """Only ``pass``/``...``/docstrings -- NOT ``continue`` (per-item skip)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


class BroadFaultSwallowRule(Rule):
    id = "broad-fault-swallow"
    description = (
        "pool-breakage handlers belong in repro/engine/resilience.py, and "
        "an OSError handler with a pass-only body hides a disk fault the "
        "caches must count; use contextlib.suppress(OSError) or record it"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        parts = ctx.repro_parts
        if parts is None:
            return  # rule guards the package's own fault-handling policy
        if ctx.virtual_path.replace("\\", "/").endswith("/".join(_SANCTIONED)):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node)
            if names & _BROKEN:
                yield ctx.violation(
                    self.id,
                    node,
                    "executor-breakage recovery is centralized in "
                    "repro/engine/resilience.py; call into it instead of "
                    "catching " + "/".join(sorted(names & _BROKEN)),
                )
            elif names and names <= _OS_ERRORS and _pass_only(node.body):
                yield ctx.violation(
                    self.id,
                    node,
                    "pass-only OSError handler hides a disk fault; use "
                    "contextlib.suppress(OSError), count it, or return a "
                    "sentinel",
                )
