"""Hot-path hygiene: no legacy kernel, no string-label algebra in loops.

``core/_legacy.py`` is the frozen pre-bitmask derivation kept solely as the
differential-test anchor; production modules importing it would silently
reintroduce the O(labels x configs) string path.  Similarly, the whole
point of the interned kernel is that inner loops work on integer masks --
mask-to-name surface calls (``label_set``/``members``/``config``/
``set_label_name``) belong at presentation boundaries, not nested loops.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.astutil import call_name
from tools.relint.engine import FileContext, Rule, Violation


class LegacyImportRule(Rule):
    id = "legacy-import"
    description = (
        "hot-path modules (repro.core/engine/search) must not import or "
        "reference the frozen string kernel repro.core._legacy"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_packages(config.HOT_PACKAGES):
            return
        if ctx.module_file == "_legacy.py":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if "_legacy" in alias.name.split("."):
                        yield ctx.violation(
                            self.id, node, f"import of legacy kernel '{alias.name}'"
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                names = {alias.name for alias in node.names}
                if "_legacy" in module.split(".") or "_legacy" in names:
                    yield ctx.violation(
                        self.id,
                        node,
                        f"import from legacy kernel '{module or '.'}'",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "_legacy":
                yield ctx.violation(
                    self.id, node, "attribute access into the legacy kernel"
                )


class StringLabelRule(Rule):
    id = "string-label"
    description = (
        "inside hot kernel modules, mask-to-name surface calls (label_set/"
        "members/config/set_label_name) must not run inside nested loops"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_packages(config.HOT_PACKAGES):
            return
        if ctx.module_file not in config.STRING_LABEL_MODULES:
            return
        yield from self._scan(ctx, ctx.tree, depth=0)

    def _scan(self, ctx: FileContext, node: ast.AST, depth: int) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_depth += 1
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                child_depth += len(child.generators)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested function resets the loop context: it is *called*
                # somewhere, and the call site's depth is what matters.
                child_depth = 0
            if (
                isinstance(child, ast.Call)
                and call_name(child) in config.NAME_SURFACE_CALLS
                and child_depth >= 2
            ):
                yield ctx.violation(
                    self.id,
                    child,
                    f"string-label call '{call_name(child)}' at loop depth "
                    f"{child_depth}; keep inner loops on integer masks",
                )
            yield from self._scan(ctx, child, child_depth)
