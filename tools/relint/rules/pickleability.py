"""Process-pool readiness: designated classes stay cheaply picklable.

ROADMAP item (a) sends interned problems and search states across a
process-pool boundary; a lambda, generator, lock, file handle, or
``MappingProxyType`` smuggled into one of those classes turns the future
backend swap into a runtime crash.  For every class named in
``config.PICKLABLE_CLASSES`` this rule flags:

* ``self.<attr> = <lambda | generator expression | unpicklable factory>``
  in any method;
* dataclass field annotations typed as ``Generator``/``Iterator``/
  ``Callable``/lock types;
* class-level defaults that are lambdas.

A class that defines ``__reduce__``/``__getstate__`` opts out: custom
pickling takes over responsibility (and the runtime pickle round-trip
tests hold it to that).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.astutil import call_name, identifier_tokens, is_self_attribute
from tools.relint.engine import FileContext, Rule, Violation

_BAD_ANNOTATION_TOKENS = {
    "Generator",
    "Iterator",
    "AsyncGenerator",
    "Lock",
    "RLock",
    "Condition",
    "MappingProxyType",
}


def _custom_pickling(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(node, ast.FunctionDef)
        and node.name in {"__reduce__", "__reduce_ex__", "__getstate__"}
        for node in cls.body
    )


def _unpicklable_value(node: ast.expr) -> str | None:
    if isinstance(node, ast.Lambda):
        return "lambda"
    if isinstance(node, ast.GeneratorExp):
        return "generator expression"
    if isinstance(node, ast.Call) and call_name(node) in config.UNPICKLABLE_FACTORIES:
        return f"{call_name(node)}()"
    return None


class UnpicklableMemberRule(Rule):
    id = "unpicklable-member"
    description = (
        "classes designated picklable (InternedProblem, search states, "
        "results) must not hold lambdas, generators, locks, open files, or "
        "mapping proxies"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in config.PICKLABLE_CLASSES
                and not _custom_pickling(node)
            ):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Violation]:
        for stmt in cls.body:
            # Dataclass fields: annotation tokens and lambda defaults.
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                bad = sorted(
                    set(identifier_tokens(stmt.annotation)) & _BAD_ANNOTATION_TOKENS
                )
                if bad:
                    yield ctx.violation(
                        self.id,
                        stmt,
                        f"field '{stmt.target.id}' of picklable class "
                        f"'{cls.name}' annotated with unpicklable type "
                        f"{'/'.join(bad)}",
                    )
                if stmt.value is not None:
                    reason = _unpicklable_value(stmt.value)
                    if reason:
                        yield ctx.violation(
                            self.id,
                            stmt,
                            f"field '{stmt.target.id}' of picklable class "
                            f"'{cls.name}' defaults to {reason}",
                        )
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    reason = _unpicklable_value(node.value)
                    if reason is None:
                        continue
                    for target in node.targets:
                        if is_self_attribute(target):
                            yield ctx.violation(
                                self.id,
                                node,
                                f"picklable class '{cls.name}' stores {reason} "
                                f"in self.{target.attr}",  # type: ignore[attr-defined]
                            )
