"""Lock-owning classes mutate their shared state only under the lock.

The engine's caches and memos are shared across a worker pool; every
``self.<attr>`` write outside ``__init__`` in a class that creates a
``threading.Lock``/``RLock`` in its initialiser must sit inside a
``with self.<lock>:`` block.  Reads are not flagged (the caches tolerate
stale reads by design); writes are where lost updates and torn LRU state
come from.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.relint import config
from tools.relint.astutil import assigned_attribute_targets, call_name, is_self_attribute
from tools.relint.engine import FileContext, Rule, Violation

_EXEMPT_METHODS = {"__init__", "__post_init__", "__getstate__", "__setstate__", "__reduce__"}


def _lock_attributes(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned ``threading.Lock()``/``RLock()`` in __init__."""
    locks: set[str] = set()
    for func in cls.body:
        if not isinstance(func, ast.FunctionDef) or func.name != "__init__":
            continue
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Call)
                and call_name(node.value) in config.LOCK_FACTORIES
            ):
                continue
            for target in node.targets:
                if is_self_attribute(target):
                    locks.add(target.attr)  # type: ignore[attr-defined]
    return locks


class UnlockedMutationRule(Rule):
    id = "unlocked-mutation"
    description = (
        "classes owning a threading lock must write self attributes only "
        "inside 'with self.<lock>:' (outside __init__)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                locks = _lock_attributes(node)
                if locks:
                    yield from self._check_class(ctx, node, locks)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, locks: set[str]
    ) -> Iterator[Violation]:
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name in _EXEMPT_METHODS:
                continue
            yield from self._check_body(ctx, func.body, locks, locked=False, method=func.name)

    def _check_body(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        locks: set[str],
        locked: bool,
        method: str,
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    is_self_attribute(item.context_expr)
                    and item.context_expr.attr in locks  # type: ignore[union-attr]
                    for item in stmt.items
                )
                yield from self._check_body(ctx, stmt.body, locks, holds, method)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs run at call time; out of scope
            if not locked:
                for target in assigned_attribute_targets(stmt):
                    if is_self_attribute(target) and target.attr not in locks:
                        yield ctx.violation(
                            self.id,
                            stmt,
                            f"write to self.{target.attr} in '{method}' outside "
                            f"'with self.{sorted(locks)[0]}:'",
                        )
            # Recurse into compound statements, preserving lock state.
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if isinstance(nested, list) and nested and isinstance(nested[0], ast.stmt):
                    yield from self._check_body(ctx, nested, locks, locked, method)
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    yield from self._check_body(ctx, handler.body, locks, locked, method)
