"""Rule registry: import a rule module, list its rules here, done.

``ALL_RULES`` is the pluggable surface -- the CLI, the fixture suite, and
the CI job all enumerate it, so a new rule needs exactly two edits (its
module + this list) to be everywhere.
"""

from __future__ import annotations

from tools.relint.engine import Rule
from tools.relint.rules.concurrency import UnlockedMutationRule
from tools.relint.rules.construction import RawProblemRule
from tools.relint.rules.determinism import UnorderedSerializationRule
from tools.relint.rules.exceptions import SilentSwallowRule
from tools.relint.rules.freeze import FrozenCertificateRule
from tools.relint.rules.imports import LegacyImportRule, StringLabelRule
from tools.relint.rules.pickleability import UnpicklableMemberRule
from tools.relint.rules.resilience import BroadFaultSwallowRule
from tools.relint.rules.vectorize import UnbatchedMatchingRule

ALL_RULES: tuple[Rule, ...] = (
    LegacyImportRule(),
    StringLabelRule(),
    UnbatchedMatchingRule(),
    RawProblemRule(),
    FrozenCertificateRule(),
    SilentSwallowRule(),
    BroadFaultSwallowRule(),
    UnorderedSerializationRule(),
    UnlockedMutationRule(),
    UnpicklableMemberRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)


__all__ = ["ALL_RULES", "rule_by_id"]
