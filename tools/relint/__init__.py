"""relint: the repo's domain-specific static checker.

Off-the-shelf linters know Python; they do not know that this codebase's
soundness rests on a handful of *domain* invariants -- masks are not
indices, proofs must serialize byte-identically, certificates are immutable
once built, caches shared across a worker pool mutate only under their
lock.  ``relint`` encodes those invariants as pluggable AST rules and gates
them in CI next to the type checker and the differential suite.

Usage::

    python -m tools.relint src tests
    python -m tools.relint --list-rules
    python -m tools.relint --select silent-swallow,raw-problem src

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.

Suppression: append ``# relint: allow[rule-id]`` (or ``allow[*]``) to the
flagged line when a finding is a documented false positive; the comment is
itself grep-able, so suppressions stay auditable.  A file-level
``# relint: skip-file`` opt-out exists for generated code.  Fixture files
under ``tools/relint/fixtures`` may carry a ``# relint: path=...`` header
that makes path-scoped rules treat them as living at that virtual location.
"""

from tools.relint.engine import FileContext, Rule, Violation, lint_paths, lint_source
from tools.relint.rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "FileContext",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "rule_by_id",
]
