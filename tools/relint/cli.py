"""Command-line front end: argument parsing, rule filtering, exit codes."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from tools.relint.engine import Rule, lint_paths
from tools.relint.rules import ALL_RULES

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def _split_ids(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(token for token in value.split(",") if token)
    return out


def select_rules(
    select: Sequence[str] = (), ignore: Sequence[str] = ()
) -> tuple[Rule, ...]:
    known = {rule.id for rule in ALL_RULES}
    for token in [*select, *ignore]:
        if token not in known:
            raise ValueError(f"unknown rule id: {token!r}")
    rules = ALL_RULES
    if select:
        rules = tuple(rule for rule in rules if rule.id in set(select))
    if ignore:
        rules = tuple(rule for rule in rules if rule.id not in set(ignore))
    return rules


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.relint",
        description="domain-specific static checks for the repro kernel",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE[,RULE...]",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE[,RULE...]",
        help="skip these rule ids",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id:28s} {rule.description}")
        return EXIT_CLEAN

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return EXIT_ERROR

    try:
        rules = select_rules(_split_ids(args.select), _split_ids(args.ignore))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    try:
        violations = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: no such path: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}", file=sys.stderr)
        return EXIT_ERROR

    for violation in violations:
        print(violation.render())
    if violations:
        print(f"relint: {len(violations)} violation(s)", file=sys.stderr)
        return EXIT_VIOLATIONS
    return EXIT_CLEAN
