"""The rule-agnostic half of relint: parsing, scoping, suppression, running.

A :class:`Rule` sees one :class:`FileContext` (parsed AST + source lines +
the file's *virtual path*) and yields :class:`Violation`\\ s.  Everything a
rule needs to decide "does this invariant apply here" hangs off the
context, so rules stay pure functions of one file and the whole run is
trivially parallel/deterministic: files are linted in sorted order and
violations are reported in (path, line, col, rule) order.

Virtual paths exist so the fixture suite can exercise path-scoped rules:
a fixture under ``tools/relint/fixtures`` declares
``# relint: path=src/repro/engine/example.py`` in its first lines and is
then scoped exactly as if it lived there.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

_DIRECTIVE = re.compile(r"#\s*relint:\s*(.+?)\s*$")
_ALLOW = re.compile(r"allow\[([a-z*][a-z0-9*-]*)\]")
_PATH = re.compile(r"path=(\S+)")
_SKIP_FILE = "skip-file"

#: Directories never traversed when expanding a directory argument.  Explicit
#: file arguments bypass this (so fixtures can be linted on purpose).
SKIP_DIR_NAMES = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", "fixtures"}


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and a human-readable why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class FileContext:
    """Everything a rule may consult about one file."""

    path: str  # path as given on the command line (used in reports)
    virtual_path: str  # posix path used for rule scoping
    tree: ast.Module
    lines: Sequence[str]

    _repro_parts: tuple[str, ...] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        parts = PurePosixPath(self.virtual_path).parts
        if "repro" in parts:
            i = parts.index("repro")
            self._repro_parts = parts[i + 1 :]

    @property
    def repro_parts(self) -> tuple[str, ...] | None:
        """Path components below the ``repro`` package, or None outside it."""
        return self._repro_parts

    @property
    def module_file(self) -> str:
        return PurePosixPath(self.virtual_path).name

    def in_packages(self, packages: Iterable[str]) -> bool:
        """True when the file sits under ``repro/<pkg>/`` for any listed pkg."""
        parts = self.repro_parts
        return parts is not None and len(parts) >= 1 and parts[0] in set(packages)

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Rule:
    """Base class: subclasses set ``id``/``description`` and implement check.

    ``id`` is the stable kebab-case token used by ``--select``/``--ignore``
    and in ``allow[...]`` suppressions.
    """

    id: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.id}>"


def _directives(lines: Sequence[str]) -> Iterator[tuple[int, str]]:
    for lineno, line in enumerate(lines, start=1):
        match = _DIRECTIVE.search(line)
        if match:
            yield lineno, match.group(1)


def _virtual_path(path: str, lines: Sequence[str]) -> str:
    for lineno, text in _directives(lines[:10]):
        override = _PATH.search(text)
        if override:
            return PurePosixPath(override.group(1)).as_posix()
    return PurePosixPath(Path(path).as_posix()).as_posix()


def _allowed_rules(lines: Sequence[str], lineno: int) -> set[str]:
    """Rule ids suppressed on ``lineno`` via an ``allow[...]`` comment."""
    if not 1 <= lineno <= len(lines):
        return set()
    match = _DIRECTIVE.search(lines[lineno - 1])
    if not match:
        return set()
    return set(_ALLOW.findall(match.group(1)))


def _skip_file(lines: Sequence[str]) -> bool:
    return any(_SKIP_FILE in text for _, text in _directives(lines[:10]))


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    *,
    virtual_path: str | None = None,
) -> list[Violation]:
    """Lint one source string; raises SyntaxError on unparsable input."""
    lines = source.splitlines()
    if _skip_file(lines):
        return []
    tree = ast.parse(source, filename=path)
    ctx = FileContext(
        path=path,
        virtual_path=virtual_path or _virtual_path(path, lines),
        tree=tree,
        lines=lines,
    )
    found: list[Violation] = []
    for rule in rules:
        for violation in rule.check(ctx):
            allowed = _allowed_rules(lines, violation.line)
            if "*" in allowed or violation.rule in allowed:
                continue
            found.append(violation)
    return sorted(found)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand arguments into .py files; explicit files are never filtered."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in SKIP_DIR_NAMES for part in candidate.parts):
                    continue
                yield candidate
        else:
            raise FileNotFoundError(str(path))


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule],
) -> list[Violation]:
    found: list[Violation] = []
    for path in iter_python_files(paths):
        found.extend(lint_source(path.read_text(), str(path), rules))
    return sorted(found)
