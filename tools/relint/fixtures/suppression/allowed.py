# relint: path=src/repro/search/example.py
"""Inline suppressions: every would-be violation is explicitly allowed."""

from repro.core.problem import Problem


def build(name, delta, edges, nodes, labels, cert):
    p = Problem(name, delta, edges, nodes, labels)  # relint: allow[raw-problem]
    object.__setattr__(cert, "note", "audited")  # relint: allow[*]
    return p
