# relint: skip-file
# relint: path=src/repro/search/example.py
"""Whole-file opt-out: nothing below is checked."""

from repro.core.problem import Problem


def build(name, delta, edges, nodes, labels):
    return Problem(name, delta, edges, nodes, labels)
