# relint: path=src/repro/core/speedup.py
"""Per-candidate matching calls inside loops: 3 hits."""


def filter_feasible(candidates, position_masks):
    kept = []
    for candidate in candidates:
        if mask_matching_exists(position_masks[candidate]):  # violation: depth 1
            kept.append(candidate)
    # A single-generator comprehension is a loop too.
    kept += [c for c in candidates if membership.allows(c)]  # violation

    while kept:
        candidate = kept.pop()
        if not mask_matching_exists(candidate):  # violation: while is a loop
            break
    return kept
