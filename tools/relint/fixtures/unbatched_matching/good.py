# relint: path=src/repro/core/speedup.py
"""Matching at depth 0, batched calls, and a marked fallback: clean."""


def dominates(big, small, position_masks):
    # A single matching call outside any loop is the intended scalar use.
    return mask_matching_exists(position_masks)


def filter_feasible(kernel, packed_candidates):
    # The batched kernel entry point takes the whole block at once.
    keep = kernel.matching_exists_batch(packed_candidates)
    return [c for c, ok in zip(packed_candidates, keep) if ok]


def memoised_walk(candidates, membership):
    kept = []
    for candidate in candidates:
        # Memoised fallback, explicitly marked.
        if membership.allows(candidate):  # relint: allow[unbatched-matching]
            kept.append(candidate)
    return kept
