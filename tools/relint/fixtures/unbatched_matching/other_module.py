# relint: path=src/repro/core/alphabet.py
"""Same loops, but the module has no batched vector equivalent: clean."""


def filter_feasible(candidates, position_masks):
    kept = []
    for candidate in candidates:
        if mask_matching_exists(position_masks[candidate]):
            kept.append(candidate)
    return kept
