# relint: path=src/repro/search/example.py
"""Reading certificates and mutating non-certificate state: clean."""

from dataclasses import replace


def report(result, cache):
    bound = result.certificate.claimed_bound  # reads are fine
    cache.last_bound = bound  # not certificate-valued
    # The blessed way to "change" a frozen certificate is a new object.
    return replace(result, limit_hit=True), bound
