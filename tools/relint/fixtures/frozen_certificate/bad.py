# relint: path=src/repro/search/example.py
"""Patching certificates after construction: 3 hits."""


def doctor(result, cert, better_bound):
    result.certificate.claimed_bound = better_bound  # violation: direct write
    object.__setattr__(cert, "steps", ())  # violation: frozen bypass
    setattr(cert, "claimed_bound", better_bound)  # violation: setattr
    return cert
