# relint: path=src/repro/core/certificate.py
"""The defining module may use the frozen-dataclass escape hatch: clean."""


def _attach(cert, verified):
    object.__setattr__(cert, "verified", verified)
    return cert
