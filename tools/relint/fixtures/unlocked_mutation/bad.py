"""Lock-owning class writing shared state outside the lock: 3 hits."""

import threading


class Memo:
    def __init__(self):
        self._lock = threading.Lock()
        self._table = {}
        self.hits = 0

    def store(self, key, value):
        self._table[key] = value  # violation: subscript write, no lock
        self.hits += 1  # violation: augmented write, no lock

    def clear_if(self, flag):
        if flag:
            with self._lock:
                self._table = {}
        else:
            self._table = {}  # violation: else branch escapes the lock
