"""Lock discipline held (and classes without locks are unconstrained): clean."""

import threading


class Memo:
    def __init__(self):
        self._lock = threading.RLock()
        self._table = {}
        self.hits = 0

    def store(self, key, value):
        with self._lock:
            self._table[key] = value
            self.hits += 1

    def snapshot(self):
        with self._lock:
            return dict(self._table)

    def __getstate__(self):
        # Pickling hooks are exempt: they run single-threaded by contract.
        state = dict(self.__dict__)
        del state["_lock"]
        self.last_pickled = True
        return state


class PlainCounter:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1  # no lock in the class: rule does not apply
