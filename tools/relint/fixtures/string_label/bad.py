# relint: path=src/repro/core/speedup.py
"""Mask-to-name surface calls inside nested loops: 2 hits."""


def render_all(alphabet, masks, configs):
    out = []
    for mask in masks:
        for _ in range(2):
            out.append(alphabet.members(mask))  # violation: depth 2
    # Comprehension with two generators counts as depth 2 as well.
    return out + [alphabet.config(c) for m in masks for c in configs]  # violation
