# relint: path=src/repro/core/speedup.py
"""Name-surface calls at the presentation boundary: clean."""


def render_summary(alphabet, masks):
    # Depth 1 is the legitimate presentation loop.
    rows = [alphabet.members(mask) for mask in masks]

    def lookup(mask):
        # Nested function: called at the caller's depth, not ours.
        return alphabet.label_set(mask)

    total = 0
    for mask in masks:
        for _ in range(2):
            total += mask.bit_count()  # inner loops stay on integers
    return rows, lookup, total
