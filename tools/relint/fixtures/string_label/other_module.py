# relint: path=src/repro/core/isomorphism.py
"""Same nesting, but not a designated hot kernel module: clean."""


def search(alphabet, masks):
    out = []
    for mask in masks:
        for _ in range(2):
            out.append(alphabet.members(mask))
    return out
