"""Deliberate mask-for-index confusion -- this file MUST fail mypy.

The CI ``static-analysis`` job runs mypy over this fixture and asserts a
NONZERO exit: if the check ever passes, the ``LabelMask`` / ``LabelIndex``
NewTypes in :mod:`repro.core.alphabet` have stopped being load-bearing
(e.g. someone aliased them to ``int`` under TYPE_CHECKING too, or a blanket
``Any`` crept into the Alphabet API) and the typed-kernel contract is gone.

Every statement below is a real bug class the NewTypes exist to catch:
masks are *sets of labels* encoded as bit patterns, indices are *positions*,
and mixing them silently produces wrong problems, not crashes.

At runtime the NewTypes degrade to plain ``int``, so this module would
import and "work" -- which is exactly why the type checker has to be the
thing that rejects it.
"""

from repro.core.alphabet import Alphabet, LabelIndex, LabelMask, iter_bits

alphabet = Alphabet(["A", "B", "C"])

# A mask is not an index: "A"'s bit is 0b001 == 1, which *is* a valid
# position -- of label "B".  config() silently decodes the wrong label.
mask: LabelMask = alphabet.bit("A")
bad_members = alphabet.config([mask])  # E: LabelMask is not a LabelIndex

# An index is not a mask: label 2's index (2) is a different label set than
# its bit (0b100 == 4); `members` on a raw index decodes the wrong labels.
index: LabelIndex = alphabet.index["C"]
bad_labels = alphabet.members(index)  # E: LabelIndex is not a LabelMask

# Bit arithmetic on indices type-checks only through an explicit LabelMask
# construction -- a bare shift result is a plain int, not a mask.
bad_mask: LabelMask = 1 << index  # E: int is not a LabelMask

# iter_bits yields indices (positions), not masks.
for bit_index in iter_bits(mask):
    remask: LabelMask = bit_index  # E: LabelIndex is not a LabelMask
