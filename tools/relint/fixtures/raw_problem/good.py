# relint: path=src/repro/search/example.py
"""Classmethod construction in search code: clean."""

from repro.core.problem import Problem


def build(name, delta, edges, nodes, labels, payload):
    made = Problem.make(
        name=name,
        delta=delta,
        edge_configs=edges,
        node_configs=nodes,
        labels=labels,
    )
    return made, Problem.from_dict(payload)
