# relint: path=src/repro/core/speedup.py
"""core/ may call the raw constructor (it owns the invariant): clean."""

from repro.core.problem import Problem


def rebuild(name, delta, edges, nodes, labels):
    return Problem(
        name=name,
        delta=delta,
        edge_constraint=edges,
        node_constraint=nodes,
        labels=labels,
    )
