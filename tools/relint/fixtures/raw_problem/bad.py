# relint: path=src/repro/search/example.py
"""Raw constructor calls in search code: 2 hits."""

from repro.core import problem
from repro.core.problem import Problem


def build(name, delta, edges, nodes, labels):
    direct = Problem(  # violation: bypasses canonicalization
        name=name,
        delta=delta,
        edge_constraint=edges,
        node_constraint=nodes,
        labels=labels,
    )
    qualified = problem.Problem(name, delta, edges, nodes, labels)  # violation
    return direct, qualified
