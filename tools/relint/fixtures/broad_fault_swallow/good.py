# relint: path=src/repro/engine/cache.py
"""Audited I/O tolerance outside resilience.py: clean."""
import contextlib


def cleanup(path):
    # Sanctioned idiom: the suppression is explicit at the call site.
    with contextlib.suppress(OSError):
        path.unlink()


def store(self, path, payload, write):
    if not write(path, payload):
        self.store_failures += 1  # failure counted, old entry kept


def sweep(entries):
    removed = 0
    for entry in entries:
        try:
            entry.unlink()
        except OSError:
            continue  # per-item skip inside a loop stays legal
        removed += 1
    return removed


def load(path, parse):
    try:
        return parse(path)
    except OSError as exc:  # non-trivial body: the fault is recorded
        raise KeyError(path) from exc
