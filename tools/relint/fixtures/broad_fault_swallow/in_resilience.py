# relint: path=src/repro/engine/resilience.py
"""The sanctioned module may catch pool breakage and swallow OSError."""
from concurrent.futures import BrokenExecutor


def reap(pool, futures, counters):
    for future in futures:
        try:
            future.result()
        except BrokenExecutor:  # exempt: this IS the recovery module
            counters.pool_rebuilds += 1


def kill(proc):
    try:
        proc.terminate()
    except OSError:  # exempt here (and only here)
        pass
