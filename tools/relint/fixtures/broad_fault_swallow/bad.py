# relint: path=src/repro/engine/executor.py
"""Decentralized pool-breakage handling + silent OSError: 3 hits."""
import concurrent.futures
from concurrent.futures.process import BrokenProcessPool


def run_batch(pool, tasks, results):
    futures = [pool.submit(t) for t in tasks]
    for future in futures:
        try:
            results.append(future.result())
        except BrokenProcessPool:  # violation: recovery policy fork
            results.append(None)
    return results


def run_one(pool, task):
    try:
        return pool.submit(task).result()
    except concurrent.futures.BrokenExecutor as exc:  # violation: attribute form
        raise RuntimeError("pool died") from exc


def cleanup(path):
    try:
        path.unlink()
    except OSError:  # violation: invisible disk fault
        pass
