# relint: path=tests/test_differential_example.py
"""The differential tests legitimately import the legacy kernel: clean."""

from repro.core import _legacy  # noqa: F401  (allowed outside core/engine/search)
