# relint: path=src/repro/engine/example.py
"""Hot-path module on the supported kernel surface: clean."""

from repro.core.alphabet import intern, iter_bits
from repro.core.problem import Problem


def fast_path(p: Problem) -> list[int]:
    interned = intern(p)
    return [int(i) for i in iter_bits(interned.alphabet.full_mask)]
