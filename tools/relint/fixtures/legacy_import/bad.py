# relint: path=src/repro/engine/example.py
"""Hot-path module reaching back into the frozen string kernel: 3 hits."""

import repro.core._legacy  # noqa: F401  (violation: plain import)
from repro.core._legacy import derive_legacy  # noqa: F401  (violation)

from repro.core import problem


def slow_path(p: problem.Problem) -> object:
    import repro.core as core

    return core._legacy.derive_legacy(p)  # violation: attribute access
