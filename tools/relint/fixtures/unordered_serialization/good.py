# relint: path=src/repro/core/example.py
"""Sorted-wrapped serialization, and unordered iteration off the wire: clean."""

import json


class Record:
    def __init__(self, meta, labels):
        self.meta = meta
        self.labels = labels

    def to_dict(self):
        return {
            "meta": {k: v for k, v in sorted(self.meta.items())},
            "labels": sorted(set(self.labels)),
        }

    def cardinality(self):
        # Not a serialization context: unordered iteration is fine here.
        return sum(1 for _ in self.meta.items())


def dump_tags(path, tags):
    with open(path, "w") as fh:
        json.dump(sorted({"a", "b", *tags}), fh)
