# relint: path=benchmarks/report.py
"""Outside the repro package the rule does not apply: clean."""

import json


def to_dict(meta):
    return {k: v for k, v in meta.items()}


def dump(path, meta):
    with open(path, "w") as fh:
        json.dump(to_dict(meta), fh)
