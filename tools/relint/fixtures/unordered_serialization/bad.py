# relint: path=src/repro/core/example.py
"""Unordered iteration feeding serialized output: 3 hits."""

import json


class Record:
    def __init__(self, meta, labels):
        self.meta = meta
        self.labels = labels

    def to_dict(self):
        return {
            "meta": {k: v for k, v in self.meta.items()},  # violation: .items()
            "labels": [x for x in set(self.labels)],  # violation: set() result
        }


def dump_tags(path, tags):
    payload = [t for t in {"a", "b", *tags}]  # violation: set display
    with open(path, "w") as fh:
        json.dump(payload, fh)
