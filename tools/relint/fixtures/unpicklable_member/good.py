"""Picklable classes done right, and opt-outs honoured: clean."""

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class SearchResult:
    bound: int
    stream: tuple[int, ...]  # materialised, not an iterator


class SpeedupResult:
    """Custom pickling takes over responsibility: the rule stands down."""

    def __init__(self, payload):
        self._frozen = payload
        self._lock = threading.Lock()  # allowed: __reduce__ drops it

    def __reduce__(self):
        return (SpeedupResult, (dict(self._frozen),))


class ScratchState:
    """Not in the designated-picklable set: unconstrained."""

    def __init__(self):
        self.thunk = lambda: 0
