"""Designated-picklable classes holding unpicklable members: 4 hits."""

import threading
from collections.abc import Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class SearchResult:
    bound: int
    stream: Iterator[int]  # violation: iterator field annotation


class InternedProblem:
    def __init__(self, problem):
        self._lock = threading.Lock()  # violation: lock factory
        self._view = (x for x in problem.labels)  # violation: generator expr
        self.decode = lambda mask: mask  # violation: lambda member
