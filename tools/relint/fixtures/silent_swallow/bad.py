"""Broad handlers with pass-only bodies: 3 hits."""


def lookup(cache, key, candidates):
    try:
        return cache[key]
    except Exception:  # violation: swallows EngineLimitError and all
        pass
    try:
        return cache.fallback(key)
    except:  # noqa: E722  violation: bare except
        ...
    for candidate in candidates:
        try:
            return cache[candidate]
        except (KeyError, BaseException):  # violation: BaseException in tuple
            continue
    return None
