"""Narrow or non-silent handlers: clean."""


def lookup(cache, key, log):
    try:
        return cache[key]
    except KeyError:  # narrow type names the tolerated failure
        pass
    try:
        return cache.load(key)
    except OSError:  # best-effort IO, explicitly tolerated
        pass
    try:
        return cache.compute(key)
    except Exception as exc:  # broad but audited: recorded, then re-raised
        log.warning("compute failed: %s", exc)
        raise
