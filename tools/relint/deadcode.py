"""Non-gating dead-code report: defs in ``src/repro`` nobody references.

A deliberately simple reachability approximation: collect every top-level
function, class, and method defined under the scanned source tree, then
collect every identifier *used* anywhere in the reference trees (Name
loads, attribute accesses, ``__all__`` strings, and plain string constants
-- the CLI dispatches subcommands by string).  A definition whose name
never occurs as a use is reported.  ``core/_legacy.py`` is excluded by
design: it is the frozen differential anchor and stays even if production
code never imports it.

This is a *report*, not a gate: dynamic dispatch and re-exports make
false positives unavoidable, so CI runs it with ``continue-on-error``.

Usage::

    python -m tools.relint.deadcode src/repro [--refs src tests examples benchmarks]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Sequence

from tools.relint.engine import iter_python_files

_EXCLUDED_FILES = {"_legacy.py"}


def _definitions(paths: Iterable[str | Path]) -> list[tuple[str, str, int]]:
    """(name, path, line) for every def/class under ``paths``."""
    defs: list[tuple[str, str, int]] = []
    for path in iter_python_files(paths):
        if path.name in _EXCLUDED_FILES:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name.startswith("__") and node.name.endswith("__"):
                    continue
                defs.append((node.name, str(path), node.lineno))
    return defs


def _uses(paths: Iterable[str | Path]) -> set[str]:
    used: set[str] = set()
    for path in iter_python_files(paths):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                used.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # Covers __all__, getattr-by-name, and CLI dispatch tables.
                if node.value.isidentifier():
                    used.add(node.value)
            elif isinstance(node, ast.ImportFrom):
                used.update(alias.name for alias in node.names)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A method overriding/implementing a name used elsewhere
                # counts as a use of that name only via call sites, which the
                # Name/Attribute branches already cover.
                for decorator in node.decorator_list:
                    for sub in ast.walk(decorator):
                        if isinstance(sub, ast.Name):
                            used.add(sub.id)
    return used


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.relint.deadcode",
        description="report defs under the source tree that nothing references",
    )
    parser.add_argument("source", nargs="+", help="definition tree(s), e.g. src/repro")
    parser.add_argument(
        "--refs",
        nargs="+",
        default=["src", "tests", "examples", "benchmarks"],
        help="trees scanned for uses (default: src tests examples benchmarks)",
    )
    args = parser.parse_args(argv)

    refs = [path for path in args.refs if Path(path).exists()]
    used = _uses(refs)
    dead = [
        (name, path, line)
        for name, path, line in _definitions(args.source)
        if name not in used
    ]
    for name, path, line in sorted(dead, key=lambda item: (item[1], item[2])):
        print(f"{path}:{line}: '{name}' appears unused")
    print(
        f"deadcode: {len(dead)} unreferenced definition(s) "
        f"(report only, not a gate)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
