"""``python -m tools.relint`` entry point."""

import sys

from tools.relint.cli import main

sys.exit(main())
