"""Repo-specific scoping knobs shared by the rule packs.

Everything a rule needs to know about *this* codebase -- which packages are
the hot kernel, which modules own certificate types, which classes must
stay picklable -- lives here so the rule logic itself stays generic.
"""

from __future__ import annotations

#: Packages whose modules form the hot derivation path.  The legacy string
#: kernel and per-label string algebra are banned here.
HOT_PACKAGES: tuple[str, ...] = ("core", "engine", "search")

#: Modules inside the hot packages where label work must stay on the mask
#: side: converting masks back to name/string surfaces (``label_set``,
#: ``members``, ``config``, ``set_label_name``) is legitimate only at
#: presentation depth -- never inside nested loops.
STRING_LABEL_MODULES: frozenset[str] = frozenset(
    {
        "speedup.py",
        "zero_round.py",
        "galois.py",
        "diagram.py",
        "canonical.py",
        "moves.py",
        "driver.py",
    }
)

#: Mask-to-name surface calls covered by the string-label rule.
NAME_SURFACE_CALLS: frozenset[str] = frozenset(
    {"label_set", "members", "config", "set_label_name"}
)

#: Modules whose hot folds have a batched vector equivalent in
#: ``repro.core.vectorkernel``.  Per-candidate matching calls inside loops
#: here should go through the batched kernel instead; the scalar paths that
#: legitimately remain (memoised fallbacks, the mask-tier completion walk)
#: carry explicit ``allow[unbatched-matching]`` markers.
VECTORIZED_MODULES: frozenset[str] = frozenset({"speedup.py", "galois.py"})

#: Per-candidate matching entry points covered by the unbatched-matching
#: rule: the Hall-condition feasibility test and the full-membership oracle
#: built on it.  (``extendable`` prefix pruning is exempt: the backtracking
#: walk is prefix-shaped in both kernel tiers.)
MATCHING_CALLS: frozenset[str] = frozenset({"mask_matching_exists", "allows"})

#: Modules allowed to construct ``Problem(...)`` directly: the class's own
#: module plus ``repro.core`` at large (the kernel builds pre-canonicalised
#: tuples).  Everything in ``search``/``engine`` must go through
#: ``Problem.make`` / ``Problem.from_dict`` so validation + canonical
#: sorting cannot be bypassed.
RAW_PROBLEM_PACKAGES: tuple[str, ...] = ("search", "engine")

#: Modules that define (and may therefore initialise) certificate types.
CERTIFICATE_MODULES: frozenset[str] = frozenset({"certificate.py", "relaxation.py"})

#: Identifier fragments that mark an expression as certificate-valued.
CERTIFICATE_TOKENS: tuple[str, ...] = ("cert",)

#: Lock factory names recognised by the concurrency rule.
LOCK_FACTORIES: frozenset[str] = frozenset({"Lock", "RLock"})

#: Classes that must stay cheaply picklable (ROADMAP item (a): search
#: states and interned problems cross a process-pool boundary).  A class
#: defining ``__reduce__``/``__getstate__`` takes over responsibility and
#: is skipped.
PICKLABLE_CLASSES: frozenset[str] = frozenset(
    {
        "InternedProblem",
        "Problem",
        "SpeedupResult",
        "HalfStepResult",
        "RelaxationMove",
        "CertificateStep",
        "LowerBoundCertificate",
        "_State",
        "SearchResult",
        "SearchStats",
        # Executor task/payload shapes shipped through the process pool.
        "SpeedupTask",
        "RunTask",
        "ExpandTask",
        "ExpandOption",
        "ExpandPayload",
        "TaskResult",
    }
)

#: Calls whose results cannot cross a pickle boundary.
UNPICKLABLE_FACTORIES: frozenset[str] = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "local",
        "open",
        "MappingProxyType",
    }
)

#: Function names that are serialization contexts for the determinism rule,
#: in addition to any function that lexically calls ``json.dump(s)`` or
#: ``atomic_write_json``.
SERIALIZATION_FUNCTIONS: frozenset[str] = frozenset(
    {"to_dict", "to_json", "to_payload", "_digest"}
)

#: Callees that mark the enclosing function as a serialization context.
SERIALIZATION_SINKS: frozenset[str] = frozenset({"dump", "dumps", "atomic_write_json"})
