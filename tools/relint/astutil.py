"""Small AST helpers shared by the rule packs."""

from __future__ import annotations

import ast
from typing import Iterator


def call_name(node: ast.Call) -> str | None:
    """The bare callee name: ``foo(...)`` -> ``foo``, ``a.b.foo(...)`` -> ``foo``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` chains; None for anything fancier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def identifier_tokens(node: ast.expr) -> Iterator[str]:
    """Every Name id and Attribute attr reachable in the expression."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def is_self_attribute(node: ast.expr, attr: str | None = None) -> bool:
    """``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def assigned_attribute_targets(
    stmt: ast.stmt,
) -> Iterator[ast.Attribute]:
    """Attribute nodes written to by an Assign/AugAssign/AnnAssign/Delete."""
    if isinstance(stmt, ast.Assign):
        targets: list[ast.expr] = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    else:
        return
    for target in targets:
        for node in _flatten_targets(target):
            if isinstance(node, ast.Attribute):
                yield node
            elif isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Attribute
            ):
                # ``self._memory[key] = ...`` mutates the container held by
                # the attribute; report against the attribute node.
                yield node.value


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target
