"""Packaging for the round-elimination repro.

The execution environment is offline and has no ``wheel`` package, so PEP 660
editable installs (which must build a wheel) fail.  Keeping the metadata in
classic ``setup.py`` form lets ``pip install -e .`` fall back to the
``setup.py develop`` path, which works with the stock setuptools here.

``package_data`` ships the ``py.typed`` marker (PEP 561) so downstream type
checkers see the kernel's ``LabelMask`` / ``LabelIndex`` / ``CanonicalHash``
NewTypes instead of treating ``repro`` as untyped.
"""

from setuptools import find_packages, setup

setup(
    name="repro-round-elimination",
    version="0.6.0",
    description=(
        "Round elimination and the automatic speedup theorem for distributed "
        "problems (Brandt, PODC 2019): derivation engine, lower-bound search, "
        "and machine-checkable certificates"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    zip_safe=False,
    extras_require={
        # Static-analysis toolchain; see requirements-dev.txt for the
        # CI-pinned versions.
        "dev": ["mypy>=1.11", "pytest>=8"],
    },
)
