"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so PEP 660
editable installs (which must build a wheel) fail.  Providing ``setup.py``
lets ``pip install -e .`` fall back to the classic ``setup.py develop`` path,
which works with the stock setuptools available here.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
