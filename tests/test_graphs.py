"""Tests for the graph generators and girth computation."""

import networkx as nx
import pytest

from repro.sim.graphs import (
    cage,
    complete_regular_tree,
    girth,
    heawood,
    mcgee,
    odd_regular_graph,
    path,
    petersen,
    random_regular_with_girth,
    ring,
    torus_grid,
    tutte_coxeter,
)


@pytest.mark.parametrize(
    "builder,n,expected_girth",
    [(petersen, 10, 5), (heawood, 14, 6), (mcgee, 24, 7), (tutte_coxeter, 30, 8)],
)
def test_cages_are_cubic_with_right_girth(builder, n, expected_girth):
    graph = builder()
    assert graph.number_of_nodes() == n
    assert set(dict(graph.degree).values()) == {3}
    assert girth(graph) == expected_girth
    assert nx.is_connected(graph)


def test_cage_lookup():
    assert cage(3, 7).number_of_nodes() == 24
    with pytest.raises(KeyError):
        cage(4, 5)


def test_ring_girth_is_n():
    assert girth(ring(7)) == 7


def test_ring_too_small():
    with pytest.raises(ValueError):
        ring(2)


def test_path_has_no_cycle():
    assert girth(path(6)) == float("inf")


def test_complete_regular_tree_structure():
    tree = complete_regular_tree(3, 2)
    # Root: 3 children; each child: 2 children -> 1 + 3 + 6 = 10 nodes.
    assert tree.number_of_nodes() == 10
    assert tree.degree(0) == 3
    assert girth(tree) == float("inf")
    internal = [v for v in tree.nodes if tree.degree(v) > 1]
    assert all(tree.degree(v) == 3 for v in internal)


def test_torus_grid_regularity():
    torus = torus_grid(4, 5)
    assert torus.number_of_nodes() == 20
    assert set(dict(torus.degree).values()) == {4}
    assert girth(torus) == 4


def test_triangle_girth():
    assert girth(nx.complete_graph(3)) == 3


def test_random_regular_with_girth():
    graph = random_regular_with_girth(3, 20, 5, seed=1)
    assert set(dict(graph.degree).values()) == {3}
    assert girth(graph) >= 5
    assert nx.is_connected(graph)


def test_random_regular_with_girth_impossible():
    with pytest.raises(RuntimeError):
        # K4 is the only 3-regular graph on 4 nodes; girth 3.
        random_regular_with_girth(3, 4, 5, seed=1, max_tries=10)


def test_odd_regular_graph():
    graph = odd_regular_graph(5, 12, seed=3)
    assert set(dict(graph.degree).values()) == {5}
    assert nx.is_connected(graph)


def test_odd_regular_graph_validation():
    with pytest.raises(ValueError):
        odd_regular_graph(4, 10, seed=1)
    with pytest.raises(ValueError):
        odd_regular_graph(3, 7, seed=1)  # odd * odd is not even
