"""The typed-kernel contract, as far as it is testable at runtime.

mypy is a CI-installed tool (see requirements-dev.txt); when it is absent
locally the mypy-driving tests skip, but the runtime half of the contract
-- the NewTypes degrade to plain builtins with zero overhead, the PEP 561
marker ships, the swap fixture demonstrates a *silent* wrong answer --
always runs.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.alphabet import Alphabet, CanonicalHash, LabelIndex, LabelMask

REPO = Path(__file__).resolve().parent.parent
SWAP_FIXTURE = REPO / "tools" / "relint" / "fixtures" / "typing" / "mask_for_index_swap.py"

MYPY = shutil.which("mypy")
needs_mypy = pytest.mark.skipif(MYPY is None, reason="mypy not installed (CI-only tool)")


def _run_mypy(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(REPO / "mypy.ini"), *args],
        cwd=REPO,
        capture_output=True,
        text=True,
    )


@needs_mypy
def test_kernel_packages_pass_strict() -> None:
    result = _run_mypy()
    assert result.returncode == 0, result.stdout + result.stderr


@needs_mypy
def test_mask_for_index_swap_fails_type_check() -> None:
    """The gate is only meaningful if confusion is actually rejected."""
    result = _run_mypy(str(SWAP_FIXTURE))
    assert result.returncode != 0, (
        "the deliberate LabelMask/LabelIndex swap fixture type-checked "
        "cleanly -- the NewTypes are no longer load-bearing:\n" + result.stdout
    )
    assert "mask_for_index_swap.py" in result.stdout


# -------------------------------------------------------- runtime half --


def test_py_typed_marker_ships() -> None:
    assert (Path(repro.__file__).parent / "py.typed").is_file()


def test_newtypes_degrade_to_builtins_at_runtime() -> None:
    """Outside TYPE_CHECKING the aliases are the builtins themselves, so
    the hot mask loops pay nothing for the annotations."""
    assert LabelMask is int
    assert LabelIndex is int
    assert CanonicalHash is str


def test_swap_fixture_is_a_silent_runtime_bug() -> None:
    """The failure mode the NewTypes guard against: mixing up a label's
    bit pattern with its position decodes the WRONG label without raising,
    which is why only the type checker can catch it."""
    alphabet = Alphabet(["A", "B", "C"])
    mask_of_a = alphabet.bit("A")  # 0b001 == 1
    assert alphabet.config([mask_of_a]) == ("B",)  # silently wrong label
    index_of_c = alphabet.index["C"]  # position 2
    assert alphabet.members(index_of_c) == ("B",)  # 0b010 decodes to B
    # The fixture module itself must import and run without raising.
    result = subprocess.run(
        [sys.executable, str(SWAP_FIXTURE)],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
