"""Tests for the automated lower-bound search (repro.search)."""

import json

import pytest

from repro.core.certificate import LowerBoundCertificate
from repro.core.relaxation import is_relaxation_map
from repro.engine import Engine, EngineConfig
from repro.problems.catalog import get_problem
from repro.search import generate_moves, search_lower_bound
from repro.search.driver import KIND_CHAIN, KIND_FIXED_POINT, KIND_TRIVIAL


@pytest.fixture()
def engine():
    return Engine(
        EngineConfig(max_derived_labels=5_000, max_candidate_configs=100_000)
    )


# -- move generation -----------------------------------------------------------


def test_moves_are_certified_relaxations(engine, mis_d3):
    derived = engine.speedup(mis_d3).full
    moves = generate_moves(derived, max_moves=16)
    assert moves
    for move in moves:
        assert move.source == derived
        assert is_relaxation_map(derived, move.target, move.mapping)
        assert move.certificate().mapping == move.mapping


def test_moves_are_deduplicated_and_capped(engine, mis_d3):
    from repro.core.canonical import canonical_hash

    derived = engine.speedup(mis_d3).full
    moves = generate_moves(derived, max_moves=5)
    assert len(moves) <= 5
    keys = [canonical_hash(move.target) for move in moves]
    assert len(set(keys)) == len(keys)
    assert canonical_hash(derived) not in keys


def test_drop_move_keeps_only_dominated_free_configs():
    from repro.core.problem import Problem

    # b dominates a: anywhere a is allowed, swapping in b stays allowed.
    dominated = Problem.make(
        "dominated",
        2,
        edge_configs=[("a", "b"), ("b", "b")],
        node_configs=[("a", "b"), ("b", "b")],
    )
    drops = [m for m in generate_moves(dominated, max_moves=64) if m.kind == "drop"]
    assert drops
    for move in drops:
        assert len(move.target.labels) == len(dominated.labels) - 1
        assert move.target.edge_constraint <= dominated.edge_constraint
        assert move.target.node_constraint <= dominated.node_constraint
    # The least-relaxing drop comes before generic merges of the same pair.
    assert [m.kind for m in generate_moves(dominated, max_moves=2)][0] == "drop"


def test_generate_moves_zero_cap():
    assert generate_moves(get_problem("mis", 3), max_moves=0) == []


def test_addarrow_moves_are_identity_certified_supersets(engine, mis_d3):
    from repro.search.moves import ADDARROW

    derived = engine.speedup(mis_d3).full
    arrows = [
        m for m in generate_moves(derived, max_moves=64) if m.kind == ADDARROW
    ]
    assert arrows
    for move in arrows:
        assert move.mapping == {label: label for label in derived.labels}
        assert move.target.labels == derived.labels
        assert move.target.edge_constraint >= derived.edge_constraint
        assert move.target.node_constraint >= derived.node_constraint
        assert move.target.description_size > derived.description_size


def test_addarrow_then_drop_equals_merge():
    """The RE identity: addarrow(a,b) followed by drop(a) is the generic merge."""
    from repro.core.problem import Problem
    from repro.search.moves import ADDARROW, DROP, MERGE

    problem = Problem.make(
        "pair", 2, edge_configs=[("a", "b")], node_configs=[("a", "a"), ("b", "b")]
    )
    moves = generate_moves(problem, max_moves=64)
    arrow = next(m for m in moves if m.kind == ADDARROW and m.detail == "a~>b")
    merge = next(m for m in moves if m.kind == MERGE and m.mapping["a"] == "b")
    drops = [m for m in generate_moves(arrow.target, max_moves=64) if m.kind == DROP]
    composite = next(m for m in drops if "a" not in m.target.labels).target
    assert composite.labels == merge.target.labels
    assert composite.edge_constraint == merge.target.edge_constraint
    assert composite.node_constraint == merge.target.node_constraint


def test_hardenings_are_restrictions_and_never_relaxation_moves(engine, mis_d3):
    from repro.core.relaxation import HARDENS, is_harder_restriction
    from repro.search.moves import HARDEN, generate_hardenings

    derived = engine.speedup(mis_d3).full
    hardenings = generate_hardenings(derived, max_moves=8)
    relaxations = generate_moves(derived, max_moves=64)
    assert all(m.kind != HARDEN for m in relaxations)
    for move in hardenings:
        assert is_harder_restriction(derived, move.target)
        certificate = move.certificate()
        assert certificate.direction == HARDENS
        # A hardening certificate must never pass as a lower-bound step.
        from repro.core.certificate import RELAXATION, CertificateStep, LowerBoundCertificate

        chain = LowerBoundCertificate(
            initial=derived,
            steps=(
                CertificateStep(
                    kind=RELAXATION, problem=move.target, relaxation=certificate
                ),
            ),
        )
        check = chain.verify()
        assert not check.valid
        assert any("cannot justify" in failure for failure in check.failures)


# -- diagram sharing (regression: one replaceability grid per problem) ----------


def test_move_generation_builds_one_diagram():
    from repro.core.diagram import compute_diagram, diagram_build_count
    from repro.search.moves import generate_hardenings

    # A fresh instance: the grid cache lives on the interned problem, so a
    # shared fixture could arrive pre-warmed.
    problem = get_problem("mis", 3)
    before = diagram_build_count()
    moves = generate_moves(problem, max_moves=64)
    assert moves
    generate_hardenings(problem, max_moves=8)
    compute_diagram(problem)  # consumers beyond the generator share it too
    assert diagram_build_count() - before == 1


def test_search_builds_at_most_one_diagram_per_expansion(mis_d3):
    from repro.core.diagram import diagram_build_count

    engine = Engine(
        EngineConfig(max_derived_labels=5_000, max_candidate_configs=100_000)
    )
    before = diagram_build_count()
    result = engine.search_lower_bound(
        mis_d3, max_steps=2, beam_width=2, max_moves=6, budget=16
    )
    builds = diagram_build_count() - before
    successful_expansions = result.stats.speedup_calls - result.stats.limit_hits
    assert builds <= successful_expansions


# -- fixed-point discovery -----------------------------------------------------


def test_search_finds_sinkless_coloring_fixed_point(engine, sc3):
    result = engine.search_lower_bound(sc3, max_steps=4)
    assert result.kind == KIND_FIXED_POINT
    assert result.unbounded
    certificate = result.certificate
    assert certificate is not None
    assert certificate.fixed_point_of == 0
    assert certificate.speedup_steps == 1
    assert certificate.verify().valid


def test_search_finds_sinkless_orientation_fixed_point(engine, so3):
    """The acceptance criterion: `python -m repro search sinkless_orientation`.

    The chain runs through sinkless coloring (the Section 4.4 pair) and the
    certificate must re-verify from its JSON serialization alone.
    """
    result = engine.search_lower_bound(so3, max_steps=4)
    assert result.kind == KIND_FIXED_POINT
    certificate = result.certificate
    assert certificate is not None
    assert certificate.fixed_point_of == 1
    assert certificate.speedup_steps == 2

    payload = json.dumps(result.to_dict(), sort_keys=True)
    rebuilt = LowerBoundCertificate.from_dict(
        json.loads(payload)["certificate"]
    )
    verdict = rebuilt.verify()
    assert verdict.valid
    assert verdict.unbounded


def test_search_is_deterministic(engine, so3):
    first = engine.search_lower_bound(so3, max_steps=4)
    second = Engine(engine.config).search_lower_bound(so3, max_steps=4)
    assert first.kind == second.kind
    assert first.bound == second.bound
    assert first.certificate.to_dict() == second.certificate.to_dict()


# -- trivial and chain outcomes ------------------------------------------------


def test_search_trivial_problem_yields_no_certificate(engine):
    from repro.core.problem import Problem
    from repro.utils.multiset import multisets_of_size

    trivial = Problem.make(
        "trivial",
        3,
        [("a", "a")],
        list(multisets_of_size(["a"], 3)),
        labels=["a"],
    )
    result = engine.search_lower_bound(trivial, max_steps=3)
    assert result.kind == KIND_TRIVIAL
    assert result.certificate is None
    assert result.bound is None
    assert "no lower bound" in result.summary()


def test_search_chain_certificate_on_mis(engine, mis_d3):
    result = engine.search_lower_bound(
        mis_d3, max_steps=2, beam_width=2, max_moves=6, budget=16
    )
    assert result.kind == KIND_CHAIN
    certificate = result.certificate
    assert certificate is not None
    assert certificate.claimed_bound >= 1
    assert not certificate.unbounded
    assert certificate.verify().valid
    # The chain alternates correctly: it applies to mis and every problem in
    # it survived the 0-round pruning.
    assert certificate.initial == mis_d3


def test_search_respects_budget(engine, mis_d3):
    result = engine.search_lower_bound(
        mis_d3, max_steps=5, beam_width=4, max_moves=4, budget=1
    )
    assert result.stats.speedup_calls == 1
    assert result.certificate is not None
    assert result.certificate.claimed_bound <= 1


def test_search_survives_size_limits(mis_d3):
    # An engine whose guards trip immediately: the root expansion fails, the
    # search degrades to the depth-0 chain (still a valid "not 0-round
    # solvable" certificate) instead of crashing.
    tight = Engine(EngineConfig(max_candidate_configs=1))
    result = tight.search_lower_bound(mis_d3, max_steps=3)
    assert result.kind == KIND_CHAIN
    assert result.stats.limit_hits == 1
    assert result.certificate is not None
    assert result.certificate.claimed_bound == 0
    assert result.certificate.verify().valid


def test_search_validates_knobs(engine, mis_d3):
    with pytest.raises(ValueError):
        engine.search_lower_bound(mis_d3, max_steps=0)
    with pytest.raises(ValueError):
        engine.search_lower_bound(mis_d3, beam_width=0)
    with pytest.raises(ValueError):
        engine.search_lower_bound(mis_d3, budget=0)


def test_module_level_search_uses_default_engine(so3):
    result = search_lower_bound(so3, max_steps=4)
    assert result.kind == KIND_FIXED_POINT


def test_search_result_json_payload(engine, so3):
    payload = engine.search_lower_bound(so3, max_steps=4).to_dict()
    assert payload["kind"] == "fixed-point"
    assert payload["unbounded"] is True
    assert payload["bound"] == 2
    assert payload["stats"]["speedup_calls"] >= 2
    # Round-trips through plain JSON.
    assert json.loads(json.dumps(payload)) == payload


def test_fixed_point_after_relaxation_uses_chain_positions(monkeypatch, so3):
    """Regression: a relaxation earlier in the chain must not skew the
    fixed-point position (certificate chain positions count *every* problem,
    including the derived intermediate the relaxation was applied to)."""
    from itertools import product

    import repro.search.driver as driver_module
    from repro.core.canonical import canonical_hash
    from repro.core.problem import Problem
    from repro.core.speedup import EngineLimitError
    from repro.search.moves import RelaxationMove

    real = Engine()
    derived1 = real.speedup(so3).full  # isomorphic to sinkless coloring
    a, b = sorted(derived1.labels)
    # A redundant-label relaxation target: b gets an equivalent twin b2, so
    # the target is NOT isomorphic to derived1 but speeds up back to it.
    twin = "twin"
    target = Problem.make(
        "redundant",
        derived1.delta,
        edge_configs=[
            pair
            for x, y in derived1.edge_constraint
            for pair in {
                (x, y),
                (twin if x == b else x, y),
                (x, twin if y == b else y),
                (twin if x == b else x, twin if y == b else y),
            }
        ],
        node_configs={
            tuple(choice)
            for config in derived1.node_constraint
            for choice in product(
                *[[label, twin] if label == b else [label] for label in config]
            )
        },
        labels=sorted(derived1.labels) + [twin],
    )
    move = RelaxationMove(
        kind="merge",
        source=derived1,
        target=target,
        mapping={label: label for label in derived1.labels},
    )
    assert canonical_hash(target) != canonical_hash(derived1)

    derived1_key = canonical_hash(derived1)

    def scripted_moves(problem, max_moves=24):
        if canonical_hash(problem) == derived1_key:
            return [move]
        return []

    class ScriptedEngine(Engine):
        def speedup(self, problem, simplify=None):
            # Kill the un-relaxed branch so the search must go through the
            # relaxation before it can close the cycle.
            if (
                canonical_hash(problem) == derived1_key
                and len(problem.labels) == len(derived1.labels)
            ):
                raise EngineLimitError("scripted dead end")
            return super().speedup(problem, simplify=simplify)

    monkeypatch.setattr(driver_module, "generate_moves", scripted_moves)
    # Serial executor: the scripted monkeypatch and the ScriptedEngine
    # override live in this process only, so beam expansion must not be
    # shipped to pool workers (which would run the real generate_moves).
    scripted = ScriptedEngine(EngineConfig(executor="serial"))
    result = scripted.search_lower_bound(so3, max_steps=4, beam_width=4)

    assert result.kind == KIND_FIXED_POINT
    certificate = result.certificate
    assert certificate is not None
    # Chain: so3 -> derived1 -> target -> speedup(target) ~ derived1.
    kinds = [step.kind for step in certificate.steps]
    assert kinds == ["speedup", "relaxation", "speedup"]
    assert certificate.fixed_point_of == 1
    assert certificate.verify().valid


# -- search stress (separate CI job) ------------------------------------------


@pytest.mark.slow
def test_weak3_search_expands_two_levels_within_budget():
    """The ISSUE-5 acceptance case: weak-3[d=2] (976-label Pi_1).

    Before the mask-native move generator, the closed-set enumeration abort,
    and the delta-2 0-round fast path, this search died in string-surface
    move generation (no result within 600s).  Now it must expand two search
    levels (the root at depth 1, its surviving relaxations at depth 2) and
    return an independently verified certificate within the 5-minute CI
    budget.
    """
    import time

    engine = Engine(
        EngineConfig(max_derived_labels=20_000, max_candidate_configs=500_000)
    )
    problem = get_problem("weak-3-coloring", 2)
    start = time.monotonic()
    result = engine.search_lower_bound(problem, max_steps=2)
    elapsed = time.monotonic() - start
    assert elapsed < 300
    # Depth 1 expands exactly the root, so any further expansion proves the
    # search entered level 2 with surviving candidates.
    assert result.stats.states_expanded >= 2
    assert result.kind == KIND_CHAIN
    certificate = result.certificate
    assert certificate is not None
    assert certificate.claimed_bound >= 1
    assert certificate.verify().valid


@pytest.mark.slow
@pytest.mark.parametrize(
    "name",
    ["sinkless-coloring", "sinkless-orientation", "mis", "maximal-matching",
     "perfect-matching", "3-edge-coloring", "weak-2-coloring"],
)
def test_search_catalog_stress(name):
    """Every discovered certificate must re-verify, across the cheap catalog."""
    engine = Engine(
        EngineConfig(max_derived_labels=2_000, max_candidate_configs=50_000)
    )
    problem = get_problem(name, 3)
    result = engine.search_lower_bound(
        problem, max_steps=3, beam_width=3, max_moves=8, budget=32
    )
    if result.certificate is not None:
        assert result.certificate.verify().valid
