"""Tests for trit sequences (the Section 4.6 / 5.1 label algebra)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.superweak.tritseq import (
    all_ones,
    all_tritseqs,
    complement,
    count_at_position,
    node_choice_is_good,
    sums_to_twos,
    tritwise_sum,
    weak2_choice_is_good,
)


def test_all_tritseqs_count():
    assert len(all_tritseqs(2)) == 9
    assert len(all_tritseqs(3)) == 27
    assert all(len(seq) == 2 for seq in all_tritseqs(2))


def test_tritwise_sum():
    assert tritwise_sum("01", "21") == "22"
    assert tritwise_sum("11", "11") == "22"
    assert tritwise_sum("21", "21") is None  # 2+2 overflows


def test_tritwise_sum_length_mismatch():
    with pytest.raises(ValueError):
        tritwise_sum("0", "00")


def test_complement():
    assert complement("01") == "21"
    assert complement("11") == "11"
    assert complement("220") == "002"


def test_sums_to_twos():
    assert sums_to_twos("01", "21")
    assert not sums_to_twos("01", "01")


def test_all_ones_is_self_complementary():
    for k in (1, 2, 3):
        assert complement(all_ones(k)) == all_ones(k)


def test_count_at_position():
    assert count_at_position(["01", "21", "11"], 0, "0") == 1
    assert count_at_position(["01", "21", "11"], 1, "1") == 3


def test_node_choice_examples_from_paper():
    """Section 4.6's examples: {02,11,...,11,12,21} good; needs position 2."""
    choice = ["02", "11", "11", "12", "21"]
    assert node_choice_is_good(choice, 2)


def test_node_choice_rejects_balance():
    # One 0 and one 2 at each position: no strict majority anywhere.
    assert not node_choice_is_good(["02", "20"], 2)


def test_node_choice_zero_cap():
    # Position has more 2s than 0s but too many 0s (> k).
    k = 2
    choice = ["20"] * 4 + ["00"] * 3  # position 0: seven 2s? no -- build carefully
    # position 0: '2' x4 and '0' x3 -> 4 > 3 but zeros=3 > k=2 -> must check pos 1
    # position 1: all '0' -> fails.
    assert not node_choice_is_good(choice, k)


def test_weak2_choice():
    assert weak2_choice_is_good(["21", "11"])  # position 0: a 2, no 0
    assert not weak2_choice_is_good(["01", "10"])  # both positions have a 0


@given(st.integers(1, 4))
def test_complement_is_involution(k):
    for seq in all_tritseqs(k):
        assert complement(complement(seq)) == seq
        assert sums_to_twos(seq, complement(seq))


@given(st.integers(1, 3))
def test_unique_partner(k):
    for seq in all_tritseqs(k):
        partners = [other for other in all_tritseqs(k) if sums_to_twos(seq, other)]
        assert partners == [complement(seq)]


@given(st.lists(st.sampled_from(all_tritseqs(2)), min_size=1, max_size=6))
def test_adding_all_ones_never_breaks_goodness(choice):
    """11...1 is neutral: it adds no 0s and no 2s anywhere."""
    if node_choice_is_good(choice, 2):
        assert node_choice_is_good(choice + ["11"], 2)
