"""Tests for markdown rendering helpers."""

from repro.analysis.report import render_section, render_table


def test_render_table_shape():
    table = render_table(["a", "b"], [[1, 2], [3, 4]])
    lines = table.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2 |"
    assert len(lines) == 4


def test_render_table_stringifies():
    table = render_table(["x"], [[None], [True]])
    assert "None" in table
    assert "True" in table


def test_render_section():
    section = render_section("Title", "body text")
    assert section.startswith("## Title")
    assert "body text" in section
