"""Pickle round-trips for everything a process-pool backend would ship.

ROADMAP item (a) swaps the engine's thread pool for processes; that dies at
runtime if any object crossing the boundary -- problems, interned views,
speedup results (including the *cache-frozen* variant whose meaning dicts
are ``MappingProxyType``), search results, certificates -- drags along an
unpicklable member.  The ``unpicklable-member`` lint rule guards the class
definitions statically; these tests hold the custom ``__reduce__`` /
``__getstate__`` implementations to their side of the bargain.

Two of these are regression tests for real bugs the static audit found:

* ``SpeedupResult`` returned by a cache *hit* holds mapping proxies and
  could not be pickled at all before ``__reduce__`` was added;
* ``Problem.__getstate__`` now drops the memoised interned view and
  cached properties, which used to bloat every pickle (and silently
  shipped derived state that should be recomputed on the other side).
"""

from __future__ import annotations

import pickle
from copy import deepcopy
from dataclasses import fields

import pytest

from repro.core.alphabet import InternedProblem, intern
from repro.core.problem import Problem
from repro.core.speedup import speedup
from repro.engine import Engine
from repro.problems.sinkless import sinkless_coloring, sinkless_orientation


@pytest.fixture()
def engine() -> Engine:
    return Engine()


def _roundtrip(obj: object) -> object:
    return pickle.loads(pickle.dumps(obj))


def test_problem_roundtrip_is_equal_and_lean() -> None:
    problem = sinkless_orientation(3)
    intern(problem)  # populate the memoised view
    _ = problem.usable_labels  # populate a cached_property
    blob = pickle.dumps(problem)
    clone = pickle.loads(blob)
    assert clone == problem
    # __getstate__ ships only the declared dataclass fields: no interned
    # view, no cached presentation strings.
    state = problem.__getstate__()
    assert set(state) == {f.name for f in fields(Problem)}


def test_problem_pickle_excludes_interned_cache() -> None:
    problem = sinkless_coloring(3)
    cold = len(pickle.dumps(problem))
    intern(problem)
    _ = problem.description_size
    warm = len(pickle.dumps(problem))
    assert warm == cold, "interned view leaked into the pickle"


def test_interned_problem_roundtrip() -> None:
    interned = intern(sinkless_orientation(3))
    clone = _roundtrip(interned)
    assert isinstance(clone, InternedProblem)
    assert clone.alphabet.names == interned.alphabet.names
    assert clone.edge_pairs == interned.edge_pairs
    assert clone.node_configs == interned.node_configs


def test_fresh_speedup_result_roundtrip() -> None:
    result = speedup(sinkless_orientation(3))
    clone = _roundtrip(result)
    assert clone.to_dict() == result.to_dict()


def test_cache_frozen_speedup_result_roundtrip(engine: Engine) -> None:
    """The mappingproxy regression: a cache hit hands out a frozen result,
    which must still pickle (via __reduce__) to plain dicts."""
    problem = sinkless_orientation(3)
    engine.run(problem, max_steps=1)
    second = engine.run(problem, max_steps=1)  # served from the cache
    step = second.steps[1]
    clone = _roundtrip(step.problem)
    assert clone == step.problem
    clone_run = _roundtrip(second)
    assert clone_run.to_dict() == second.to_dict()


def test_search_result_and_certificate_roundtrip(engine: Engine) -> None:
    result = engine.search_lower_bound(sinkless_orientation(3), max_steps=2)
    assert result.certificate is not None
    clone = _roundtrip(result)
    assert clone.certificate.to_dict() == result.certificate.to_dict()
    assert clone.certificate.verify()
    assert clone.stats == result.stats


def test_deepcopy_uses_the_same_machinery(engine: Engine) -> None:
    problem = sinkless_orientation(3)
    engine.run(problem, max_steps=1)
    frozen = engine.run(problem, max_steps=1)
    assert deepcopy(frozen).to_dict() == frozen.to_dict()
