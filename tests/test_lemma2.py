"""Tests for Lemma 2: the Hall-violator pointer construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.superweak.lemma2 import (
    Lemma2Error,
    compute_pointer_sets,
    g1_allows,
)
from repro.superweak.tritseq import all_ones, all_tritseqs

ALL2 = all_tritseqs(2)


def test_g1_allows_complement_pairs():
    assert g1_allows(frozenset({"01"}), frozenset({"21"}))
    assert g1_allows(frozenset({"11"}), frozenset({"11"}))
    assert not g1_allows(frozenset({"01"}), frozenset({"01"}))
    assert g1_allows(frozenset({"01", "02"}), frozenset({"20", "00"}))


def make_dominated_q(delta: int):
    """A Q-list with a dominant element and a genuine Hall violator.

    P_infinity = {11}; two ports hold {00} (not g1-compatible with {11},
    no 11 inside: both in the index set I) but only one port holds their
    unique partner {22} -- so the two {00} ports cannot be matched and form
    the violator J* with |J*| = 2 > 1 = |N(J*)|.
    """
    p_inf = frozenset({all_ones(2)})
    q = [p_inf] * (delta - 3) + [
        frozenset({"00"}),
        frozenset({"00"}),
        frozenset({"22"}),
    ]
    return q


def test_pointer_sets_on_dominated_structure():
    delta = 6
    q = make_dominated_q(delta)
    alpha = ["in"] * (delta - 3) + ["out", "out", "in"]
    result = compute_pointer_sets(q, alpha, 2)
    assert len(result.j_star) > len(result.n_of_j_star)
    # J* must be inside the index set I.
    assert result.j_star <= result.index_set
    # alpha-homogeneity of J*, opposite on N(J*).
    sides = {alpha[i] for i in result.j_star}
    assert len(sides) == 1
    for i in result.n_of_j_star:
        assert alpha[i] not in sides


def test_pointer_sets_exclude_p_infinity_ports():
    delta = 6
    q = make_dominated_q(delta)
    alpha = ["out"] * (delta - 3) + ["out", "out", "in"]
    result = compute_pointer_sets(q, alpha, 2)
    for index in result.j_star | result.n_of_j_star:
        assert q[index] != result.p_infinity


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError):
        compute_pointer_sets([frozenset({"11"})], ["in", "out"], 2)


def test_lemma2_error_when_no_violator():
    """A Q where every index is g1-compatible with P_infinity: I is empty."""
    q = [frozenset({"11"})] * 4
    with pytest.raises(Lemma2Error):
        compute_pointer_sets(q, ["in", "out", "in", "out"], 2)


def test_determinism_under_port_permutation():
    """Two nodes with the same (Q, alpha) multisets select the same pointer
    multiset -- the consistency Lemma 3 requires."""
    delta = 6
    q = make_dominated_q(delta)
    alpha = ["in"] * (delta - 3) + ["out", "out", "in"]
    result = compute_pointer_sets(q, alpha, 2)
    reference = sorted(
        (tuple(sorted(q[i])), alpha[i]) for i in result.j_star
    )
    # Permute ports; the selected (Q, alpha) multiset must not change.
    permutation = [delta - 1 - i for i in range(delta)]
    permuted_q = [q[p] for p in permutation]
    permuted_alpha = [alpha[p] for p in permutation]
    permuted = compute_pointer_sets(permuted_q, permuted_alpha, 2)
    assert reference == sorted(
        (tuple(sorted(permuted_q[i])), permuted_alpha[i]) for i in permuted.j_star
    )


def brute_force_violator_exists(q, alpha, index_set) -> bool:
    """Reference implementation: scan all homogeneous subsets of I."""
    from itertools import combinations

    def neighbors(of):
        return {
            i
            for i in range(len(q))
            if any(alpha[i] != alpha[j] and g1_allows(q[i], q[j]) for j in of)
        }

    for side in ("in", "out"):
        candidates = [i for i in index_set if alpha[i] == side]
        for size in range(1, len(candidates) + 1):
            for subset in combinations(candidates, size):
                if len(subset) > len(neighbors(set(subset))):
                    return True
    return False


@st.composite
def random_q_instances(draw):
    delta = draw(st.integers(3, 5))
    sets = st.frozensets(st.sampled_from(ALL2), min_size=1, max_size=4)
    q = [draw(sets) for _ in range(delta)]
    alpha = [draw(st.sampled_from(["in", "out"])) for _ in range(delta)]
    return q, alpha


@settings(max_examples=60, deadline=None)
@given(random_q_instances())
def test_algorithm_agrees_with_bruteforce(instance):
    """The Hall-based search finds a valid J* exactly when one exists."""
    q, alpha = instance
    try:
        result = compute_pointer_sets(q, alpha, 2)
        found = True
    except Lemma2Error:
        found = False
        result = None
    if found:
        assert len(result.j_star) > len(result.n_of_j_star)
        # N(J*) must really be the neighborhood of J*.
        expected_n = {
            i
            for i in range(len(q))
            if any(
                alpha[i] != alpha[j] and g1_allows(q[i], q[j])
                for j in result.j_star
            )
        }
        assert result.n_of_j_star == frozenset(expected_n)
    else:
        # brute force over the same index set must also fail
        from repro.superweak.lemma1 import find_p_infinity
        from repro.superweak.membership import CondensedConfig

        p_inf = find_p_infinity(CondensedConfig.from_sequence(q), 2).p_infinity
        index_set = {
            i
            for i, qi in enumerate(q)
            if not g1_allows(qi, p_inf) and all_ones(2) not in qi
        }
        assert not brute_force_violator_exists(q, alpha, index_set)
